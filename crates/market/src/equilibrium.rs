//! Queue equilibrium and the induced spot-price distribution (§4.2–4.3).
//!
//! Proposition 2: the bid queue is in equilibrium (`L(t+1) = L(t)`) exactly
//! when the spot price is
//!
//! ```text
//! π*(t) = h(Λ(t)) = (π̄ − β/(1 + Λ(t)/θ)) / 2,
//! ```
//!
//! so at equilibrium the spot price is an i.i.d. monotone transform of the
//! arrival process. Proposition 3 then derives the spot-price PDF from the
//! arrival PDF through the inverse `h⁻¹(π) = θ·(β/(π̄ − 2π) − 1)`.
//!
//! The paper's Eq. 7 writes `f_π(π) ≜ f_Λ(h⁻¹(π))` and normalizes when
//! fitting; the exact change-of-variables density carries the Jacobian
//! `|dh⁻¹/dπ| = 2θβ/(π̄ − 2π)²`. Both forms are provided —
//! [`price_pdf_paper`] is what Figure 3's fit uses, [`price_pdf_exact`] is
//! what sampling from the model actually follows.

use crate::params::MarketParams;
use crate::units::Price;
use spotbid_numerics::dist::ContinuousDist;
use spotbid_numerics::rng::Rng;

/// The equilibrium price map `h(Λ)` of Proposition 2, clamped into
/// `[π_min, π̄]` (the provider never prices outside its bounds).
pub fn equilibrium_price(params: &MarketParams, lambda: f64) -> Price {
    Price::new(equilibrium_price_unclamped(params, lambda)).clamp(params.pi_min, params.pi_bar)
}

/// The raw `h(Λ) = (π̄ − β/(1 + Λ/θ))/2`, without clamping. Strictly
/// increasing in `Λ`, with range `((π̄ − β)/2, π̄/2)` over `Λ ∈ (0, ∞)`.
pub fn equilibrium_price_unclamped(params: &MarketParams, lambda: f64) -> f64 {
    let lambda = lambda.max(0.0);
    0.5 * (params.pi_bar.as_f64() - params.beta / (1.0 + lambda / params.theta))
}

/// The inverse map `h⁻¹(π) = θ·(β/(π̄ − 2π) − 1)` (Proposition 3).
///
/// Returns `None` when `π ≥ π̄/2` (outside `h`'s range: no finite arrival
/// count produces such a price) and `f64::NEG_INFINITY`-free negative
/// values for `π < (π̄ − β)/2` (prices below `h(0)`, reachable only through
/// clamping; callers treat the corresponding arrival mass as zero).
pub fn h_inverse(params: &MarketParams, price: Price) -> Option<f64> {
    let pi_bar = params.pi_bar.as_f64();
    let gap = pi_bar - 2.0 * price.as_f64();
    if gap <= 0.0 {
        return None;
    }
    Some(params.theta * (params.beta / gap - 1.0))
}

/// Derivative `dh⁻¹/dπ = 2θβ/(π̄ − 2π)²`, the Jacobian of the price→arrival
/// change of variables. `None` when `π ≥ π̄/2`.
pub fn h_inverse_derivative(params: &MarketParams, price: Price) -> Option<f64> {
    let gap = params.pi_bar.as_f64() - 2.0 * price.as_f64();
    if gap <= 0.0 {
        return None;
    }
    Some(2.0 * params.theta * params.beta / (gap * gap))
}

/// The paper's Eq. 7 spot-price density: `f_Λ(h⁻¹(π))`, **without** the
/// Jacobian. This is the form the paper fits to the empirical histograms in
/// Figure 3 (normalization over the observed price range is applied by the
/// fitting code). Zero outside `h`'s range.
pub fn price_pdf_paper<D: ContinuousDist>(
    params: &MarketParams,
    arrivals: &D,
    price: Price,
) -> f64 {
    match h_inverse(params, price) {
        Some(lam) if lam >= 0.0 => arrivals.pdf(lam),
        _ => 0.0,
    }
}

/// The exact spot-price density under the equilibrium model:
/// `f_π(π) = f_Λ(h⁻¹(π)) · |dh⁻¹/dπ|`. Integrates to 1 over `h`'s range
/// when no arrival mass is clamped at `π_min`.
pub fn price_pdf_exact<D: ContinuousDist>(
    params: &MarketParams,
    arrivals: &D,
    price: Price,
) -> f64 {
    match (
        h_inverse(params, price),
        h_inverse_derivative(params, price),
    ) {
        (Some(lam), Some(jac)) if lam >= 0.0 => arrivals.pdf(lam) * jac,
        _ => 0.0,
    }
}

/// The equilibrium spot-price distribution induced by an arrival process:
/// `π = clamp(h(Λ), π_min, π̄)` with `Λ ~ arrivals`.
///
/// This is a *mixed* distribution: prices in `(max(π_min, h(0)), π̄/2)`
/// are continuous with density [`price_pdf_exact`], and there may be an
/// atom at `π_min` carrying the mass of arrivals with `h(Λ) < π_min`
/// (small demand clamped at the provider's floor). Because of the atom this
/// type exposes `cdf`/`sample` directly rather than implementing
/// [`ContinuousDist`].
#[derive(Debug, Clone)]
pub struct EquilibriumPrices<D> {
    params: MarketParams,
    arrivals: D,
}

impl<D: ContinuousDist> EquilibriumPrices<D> {
    /// Couples market parameters with an arrival distribution.
    pub fn new(params: MarketParams, arrivals: D) -> Self {
        EquilibriumPrices { params, arrivals }
    }

    /// The market parameters.
    pub fn params(&self) -> &MarketParams {
        &self.params
    }

    /// The arrival distribution.
    pub fn arrivals(&self) -> &D {
        &self.arrivals
    }

    /// `P(π ≤ p)`. Right-continuous; the atom at `π_min` appears as
    /// `cdf(π_min) > 0`.
    pub fn cdf(&self, price: Price) -> f64 {
        if price < self.params.pi_min {
            return 0.0;
        }
        match h_inverse(&self.params, price) {
            None => 1.0,
            Some(lam) => {
                if lam < 0.0 {
                    0.0
                } else {
                    self.arrivals.cdf(lam)
                }
            }
        }
    }

    /// Mass of the atom at `π_min`: `P(h(Λ) ≤ π_min)`.
    pub fn floor_atom(&self) -> f64 {
        self.cdf(self.params.pi_min)
    }

    /// Draws one equilibrium spot price.
    pub fn sample(&self, rng: &mut Rng) -> Price {
        equilibrium_price(&self.params, self.arrivals.sample(rng))
    }

    /// Draws `n` equilibrium spot prices.
    pub fn sample_n(&self, rng: &mut Rng, n: usize) -> Vec<Price> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_numerics::dist::{Exponential, Pareto};
    use spotbid_numerics::integrate::adaptive_simpson;

    fn params() -> MarketParams {
        // Calibrated so h has a visible spread: β comparable to π̄, θ small.
        MarketParams::new(Price::new(0.35), Price::new(0.02), 0.30, 0.02).unwrap()
    }

    #[test]
    fn h_is_increasing_and_bounded() {
        let m = params();
        let mut last = f64::NEG_INFINITY;
        for i in 0..100 {
            let lam = i as f64 * 0.01;
            let h = equilibrium_price_unclamped(&m, lam);
            assert!(h > last);
            assert!(h < m.pi_bar.as_f64() / 2.0);
            last = h;
        }
        // h(0) = (π̄ − β)/2.
        let h0 = equilibrium_price_unclamped(&m, 0.0);
        assert!((h0 - 0.5 * (0.35 - 0.30)).abs() < 1e-12);
    }

    #[test]
    fn h_inverse_roundtrip() {
        let m = params();
        for &lam in &[0.001, 0.01, 0.1, 1.0, 10.0] {
            let p = equilibrium_price_unclamped(&m, lam);
            let back = h_inverse(&m, Price::new(p)).unwrap();
            assert!(
                (back - lam).abs() < 1e-9 * (1.0 + lam),
                "λ={lam}, back={back}"
            );
        }
    }

    #[test]
    fn h_inverse_domain() {
        let m = params();
        // At or above π̄/2 no arrival count reproduces the price.
        assert!(h_inverse(&m, Price::new(0.175)).is_none());
        assert!(h_inverse(&m, Price::new(0.3)).is_none());
        // Below h(0) the inverse is negative.
        assert!(h_inverse(&m, Price::new(0.01)).unwrap() < 0.0);
    }

    #[test]
    fn equilibrium_price_clamps() {
        let m = params();
        // Tiny demand → h(Λ) ≈ (π̄−β)/2 = 0.025 > π_min = 0.02: no clamp.
        assert!(equilibrium_price(&m, 0.0).as_f64() >= m.pi_min.as_f64());
        // Negative arrival counts are treated as zero.
        assert_eq!(equilibrium_price(&m, -5.0), equilibrium_price(&m, 0.0));
    }

    #[test]
    fn exact_pdf_integrates_to_one_minus_atom() {
        let m = params();
        let arr = Exponential::new(0.05).unwrap();
        let eq = EquilibriumPrices::new(m, arr);
        let atom = eq.floor_atom();
        let lo = m.pi_min.as_f64();
        let hi = m.pi_bar.as_f64() / 2.0 - 1e-9;
        let mass = adaptive_simpson(
            |p| price_pdf_exact(&m, &arr, Price::new(p)),
            lo,
            hi,
            1e-10,
            30,
        );
        assert!(
            (mass + atom - 1.0).abs() < 1e-3,
            "continuous mass {mass} + atom {atom} != 1"
        );
    }

    #[test]
    fn cdf_matches_sampling() {
        let m = params();
        let arr = Pareto::new(0.005, 2.5).unwrap();
        let eq = EquilibriumPrices::new(m, arr);
        let mut rng = Rng::seed_from_u64(3);
        let samples = eq.sample_n(&mut rng, 20_000);
        for &q in &[0.03, 0.05, 0.08, 0.12, 0.16] {
            let p = Price::new(q);
            let emp = samples.iter().filter(|&&s| s <= p).count() as f64 / samples.len() as f64;
            let ana = eq.cdf(p);
            assert!(
                (emp - ana).abs() < 0.015,
                "at {q}: empirical {emp} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn cdf_boundaries() {
        let m = params();
        let eq = EquilibriumPrices::new(m, Exponential::new(0.05).unwrap());
        assert_eq!(eq.cdf(Price::new(0.0)), 0.0);
        assert_eq!(eq.cdf(m.pi_bar), 1.0);
        assert_eq!(eq.cdf(Price::new(0.1751)), 1.0); // just above π̄/2
    }

    #[test]
    fn paper_pdf_vs_exact_pdf_shapes() {
        // Both decay in price for exponential arrivals, but only the exact
        // form carries the Jacobian blow-up toward π̄/2; verify the two
        // differ by exactly the Jacobian factor.
        let m = params();
        let arr = Exponential::new(0.05).unwrap();
        for &p in &[0.03, 0.06, 0.1, 0.15] {
            let price = Price::new(p);
            let paper = price_pdf_paper(&m, &arr, price);
            let exact = price_pdf_exact(&m, &arr, price);
            let jac = h_inverse_derivative(&m, price).unwrap();
            assert!((exact - paper * jac).abs() < 1e-12);
        }
        // Outside the range both vanish.
        assert_eq!(price_pdf_paper(&m, &arr, Price::new(0.2)), 0.0);
        assert_eq!(price_pdf_exact(&m, &arr, Price::new(0.2)), 0.0);
    }

    #[test]
    fn floor_atom_grows_with_beta() {
        // A larger utilization weight pushes h(Λ) down, clamping more mass
        // at the floor.
        let arr = Exponential::new(0.02).unwrap();
        let mk = |beta| MarketParams::new(Price::new(0.35), Price::new(0.03), beta, 0.02).unwrap();
        let small = EquilibriumPrices::new(mk(0.10), arr).floor_atom();
        let large = EquilibriumPrices::new(mk(0.60), arr).floor_atom();
        assert!(large > small, "{large} vs {small}");
    }
}
