//! Lyapunov stability of the bid queue (Proposition 1).
//!
//! With the Lyapunov function `V(L) = L²/2` and drift
//! `Δ(t) = V(L(t+1)) − V(L(t))`, Proposition 1 bounds the conditional
//! expected drift by
//!
//! ```text
//! E[Δ(t) | L(t)] ≤ (π̄ − π_min)·λ²/(2θπ̄) + σ/2 − ε·L(t),
//! ε = θλπ̄ / (4(π̄ − π_min)),
//! ```
//!
//! for arrivals with mean `λ` and variance `σ`. A drift that is negative
//! for large `L` implies the time-averaged queue is uniformly bounded
//! (Foster–Lyapunov), i.e. persistent bid resubmission cannot pile up
//! unboundedly. This module provides the analytic bound and estimators of
//! the empirical conditional drift from simulated queue paths; the
//! stability experiment checks the former dominates the latter.

use crate::params::MarketParams;
use crate::queue::QueueStep;

/// The drift coefficient `ε = θλπ̄ / (4(π̄ − π_min))` from Proposition 1.
pub fn epsilon(params: &MarketParams, lambda_mean: f64) -> f64 {
    params.theta * lambda_mean * params.pi_bar.as_f64() / (4.0 * params.spread().as_f64())
}

/// Proposition 1's upper bound on `E[Δ(t) | L(t) = l]`.
pub fn drift_bound(params: &MarketParams, lambda_mean: f64, lambda_var: f64, l: f64) -> f64 {
    let spread = params.spread().as_f64();
    spread * lambda_mean * lambda_mean / (2.0 * params.theta * params.pi_bar.as_f64())
        + lambda_var / 2.0
        - epsilon(params, lambda_mean) * l
}

/// The queue size above which Proposition 1 guarantees strictly negative
/// expected drift (the bound's zero crossing). Infinite when `ε = 0`.
pub fn negative_drift_threshold(params: &MarketParams, lambda_mean: f64, lambda_var: f64) -> f64 {
    let e = epsilon(params, lambda_mean);
    if e <= 0.0 {
        return f64::INFINITY;
    }
    let spread = params.spread().as_f64();
    (spread * lambda_mean * lambda_mean / (2.0 * params.theta * params.pi_bar.as_f64())
        + lambda_var / 2.0)
        / e
}

/// One-step realized drift `Δ = (L(t+1)² − L(t)²)/2`.
pub fn realized_drift(step: &QueueStep) -> f64 {
    0.5 * (step.l_next * step.l_next - step.l * step.l)
}

/// Empirical estimate of the conditional drift `E[Δ | L ∈ bucket]` from a
/// simulated queue path, bucketing `L` into `n_buckets` equal-width bins
/// over the observed range.
///
/// Returns `(bucket_center, mean_drift, count)` for each non-empty bucket.
pub fn conditional_drift(steps: &[QueueStep], n_buckets: usize) -> Vec<(f64, f64, usize)> {
    if steps.is_empty() || n_buckets == 0 {
        return Vec::new();
    }
    let lo = steps.iter().map(|s| s.l).fold(f64::INFINITY, f64::min);
    let hi = steps.iter().map(|s| s.l).fold(f64::NEG_INFINITY, f64::max);
    let width = if hi > lo {
        (hi - lo) / n_buckets as f64
    } else {
        1.0
    };
    let mut sums = vec![0.0; n_buckets];
    let mut counts = vec![0usize; n_buckets];
    for s in steps {
        let i = (((s.l - lo) / width) as usize).min(n_buckets - 1);
        sums[i] += realized_drift(s);
        counts[i] += 1;
    }
    (0..n_buckets)
        .filter(|&i| counts[i] > 0)
        .map(|i| {
            (
                lo + (i as f64 + 0.5) * width,
                sums[i] / counts[i] as f64,
                counts[i],
            )
        })
        .collect()
}

/// Time-averaged queue length over a path — the quantity Proposition 1
/// proves uniformly bounded.
pub fn time_averaged_queue(steps: &[QueueStep]) -> f64 {
    if steps.is_empty() {
        return 0.0;
    }
    steps.iter().map(|s| s.l).sum::<f64>() / steps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueSim;
    use crate::units::Price;
    use spotbid_numerics::dist::{ContinuousDist, Exponential, Pareto};
    use spotbid_numerics::rng::Rng;

    fn params() -> MarketParams {
        MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap()
    }

    #[test]
    fn bound_is_linear_decreasing_in_l() {
        let m = params();
        let b0 = drift_bound(&m, 1.0, 0.5, 0.0);
        let b1 = drift_bound(&m, 1.0, 0.5, 100.0);
        let b2 = drift_bound(&m, 1.0, 0.5, 200.0);
        assert!(b1 < b0);
        assert!((b2 - b1) - (b1 - b0) < 1e-9, "must be affine in L");
        assert!(epsilon(&m, 1.0) > 0.0);
    }

    #[test]
    fn threshold_is_bound_zero_crossing() {
        let m = params();
        let l0 = negative_drift_threshold(&m, 1.0, 0.5);
        assert!(drift_bound(&m, 1.0, 0.5, l0).abs() < 1e-9);
        assert!(drift_bound(&m, 1.0, 0.5, l0 * 1.01) < 0.0);
        assert_eq!(negative_drift_threshold(&m, 0.0, 0.5), f64::INFINITY);
    }

    #[test]
    fn drift_negative_for_large_queues_empirically() {
        // Simulate with exponential arrivals; the conditional drift in the
        // top L-buckets must be negative (the queue pulls back).
        let m = params();
        let sim = QueueSim::new(m);
        let arr = Exponential::new(1.0).unwrap();
        let mut rng = Rng::seed_from_u64(11);
        let lambdas: Vec<f64> = (0..200_000).map(|_| arr.sample(&mut rng)).collect();
        // Start far above equilibrium to populate large-L buckets.
        let steps = sim.run(5.0 * sim.equilibrium_demand(1.0), lambdas);
        let buckets = conditional_drift(&steps, 20);
        assert!(!buckets.is_empty());
        let top = buckets.last().unwrap();
        assert!(
            top.1 < 0.0,
            "drift in top bucket (L≈{}) is {} — queue not mean-reverting",
            top.0,
            top.1
        );
    }

    #[test]
    fn time_averaged_queue_bounded_for_stable_arrivals() {
        // Pareto arrivals with finite mean and variance (α > 2): the paper's
        // stability condition holds and the time-averaged queue approaches a
        // finite value independent of horizon.
        let m = params();
        let sim = QueueSim::new(m);
        let arr = Pareto::new(0.5, 3.0).unwrap();
        let mut rng = Rng::seed_from_u64(13);
        let run = |n: usize, rng: &mut Rng| {
            let lambdas: Vec<f64> = (0..n).map(|_| arr.sample(rng)).collect();
            time_averaged_queue(&sim.run(0.0, lambdas))
        };
        let short = run(50_000, &mut rng);
        let long = run(200_000, &mut rng);
        assert!(
            (long - short).abs() / short < 0.1,
            "time-average not settling: {short} vs {long}"
        );
    }

    #[test]
    fn realized_drift_identity() {
        let m = params();
        let sim = QueueSim::new(m);
        let s = sim.step(0, 50.0, 2.0);
        assert!((realized_drift(&s) - 0.5 * (s.l_next.powi(2) - 2500.0)).abs() < 1e-9);
    }

    #[test]
    fn conditional_drift_handles_degenerate_input() {
        assert!(conditional_drift(&[], 10).is_empty());
        let m = params();
        let sim = QueueSim::new(m);
        let steps = sim.run(10.0, vec![1.0]);
        assert!(conditional_drift(&steps, 0).is_empty());
        let one = conditional_drift(&steps, 5);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].2, 1);
        assert_eq!(time_averaged_queue(&[]), 0.0);
    }
}
