//! Micro-level spot-market simulator (Figure 2's state machine per bid).
//!
//! Where [`crate::queue`] iterates the *aggregate* demand recursion, this
//! module tracks each bid individually through the states of Figure 2 —
//! pending, running, finished, terminated — under the exact EC2 spot rules
//! the paper describes in §3.2:
//!
//! - in each slot the provider posts the optimal price for the current
//!   demand (Eq. 3) and every bid at or above it runs;
//! - a *running* instance whose bid falls below the new spot price is
//!   interrupted: one-time requests exit the system unfinished, persistent
//!   requests return to pending and re-compete automatically;
//! - new one-time bids below the spot price are rejected outright;
//! - running instances are charged the *spot price* (not their bid) per
//!   slot.
//!
//! The simulator is the substrate for the provider-model validation and
//! for the §8 "collective user behavior" ablation (many strategic bidders
//! sharing one market). Individual price-taking users — the paper's main
//! setting — are simulated against a price *trace* by `spotbid-client`.

use crate::params::MarketParams;
use crate::provider::optimal_price;
use crate::units::{Cost, Hours, Price};
use spotbid_numerics::rng::Rng;

/// How a bid requests to be treated on interruption (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidKind {
    /// Exits the system when outbid, even mid-job.
    OneTime,
    /// Re-submitted automatically every slot until the job finishes.
    Persistent,
}

/// How much work a bid's job needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkModel {
    /// Finishes after exactly this many slots of running time.
    FixedSlots(u32),
    /// Finishes each running slot with probability `θ` (the aggregate
    /// model's departure process, Figure 2).
    Geometric,
}

/// A bid submitted to the market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidRequest {
    /// The bid price.
    pub price: Price,
    /// One-time or persistent handling.
    pub kind: BidKind,
    /// Work requirement.
    pub work: WorkModel,
}

/// Identifier of a bid within one [`SpotMarket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BidId(pub u64);

/// Lifecycle phase of a bid (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidPhase {
    /// Waiting for the spot price to fall to its bid.
    Pending,
    /// Currently running on an instance.
    Running,
    /// Completed all its work.
    Finished,
    /// Exited without completing (one-time bid outbid or rejected).
    Terminated,
}

/// Full accounting for one bid.
#[derive(Debug, Clone, PartialEq)]
pub struct BidRecord {
    /// The bid's identifier.
    pub id: BidId,
    /// The original request.
    pub request: BidRequest,
    /// Current phase.
    pub phase: BidPhase,
    /// Slot in which the bid was submitted.
    pub submitted_at: u64,
    /// Slots spent running so far.
    pub slots_run: u32,
    /// Total charged so far (spot price × slot length per running slot).
    pub charged: Cost,
    /// Number of interruptions suffered (running → not running).
    pub interruptions: u32,
    /// Slot in which the bid left the system, if it has.
    pub closed_at: Option<u64>,
}

/// Per-slot outcome summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotReport {
    /// Slot index.
    pub t: u64,
    /// Demand `L(t)` seen by the provider (pending + running + new bids).
    pub demand: usize,
    /// The posted spot price.
    pub price: Price,
    /// Bids that began (or resumed) running this slot.
    pub started: Vec<BidId>,
    /// Running bids that were interrupted this slot.
    pub interrupted: Vec<BidId>,
    /// Bids that finished their work this slot.
    pub finished: Vec<BidId>,
    /// One-time bids that exited unfinished this slot.
    pub terminated: Vec<BidId>,
}

/// A discrete-time spot market with endogenous prices.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    params: MarketParams,
    slot_len: Hours,
    t: u64,
    records: Vec<BidRecord>,
    /// Indices into `records` of bids still in the system.
    open: Vec<usize>,
    /// Allocation cache for `step`'s survivor list: holds last slot's `open`
    /// vector so stepping a long-lived market does not allocate per slot.
    scratch: Vec<usize>,
}

impl SpotMarket {
    /// Creates an empty market.
    pub fn new(params: MarketParams, slot_len: Hours) -> Self {
        SpotMarket {
            params,
            slot_len,
            t: 0,
            records: Vec::new(),
            open: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The market parameters.
    pub fn params(&self) -> &MarketParams {
        &self.params
    }

    /// Current slot index (number of completed steps).
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Submits a bid; it competes from the next [`step`](Self::step) on.
    pub fn submit(&mut self, request: BidRequest) -> BidId {
        let id = BidId(self.records.len() as u64);
        self.records.push(BidRecord {
            id,
            request,
            phase: BidPhase::Pending,
            submitted_at: self.t,
            slots_run: 0,
            charged: Cost::ZERO,
            interruptions: 0,
            closed_at: None,
        });
        let idx = self.records.len() - 1;
        self.open.push(idx);
        id
    }

    /// Read access to a bid's record.
    pub fn record(&self, id: BidId) -> Option<&BidRecord> {
        self.records.get(id.0 as usize)
    }

    /// All bid records (submitted order).
    pub fn records(&self) -> &[BidRecord] {
        &self.records
    }

    /// Number of bids still pending or running.
    pub fn open_bids(&self) -> usize {
        self.open.len()
    }

    /// Advances one slot: runs the auction, interrupts/launches instances,
    /// progresses work, and charges running bids.
    pub fn step(&mut self, rng: &mut Rng) -> SlotReport {
        let t = self.t;

        // Demand: every open bid competes (carried-over pending persistent
        // bids, running instances re-asserting their bids, and new
        // arrivals) — the L(t) of Eq. 4.
        let demand = self.open.len();
        let price = optimal_price(&self.params, demand as f64);

        let mut report = SlotReport {
            t,
            demand,
            price,
            started: Vec::new(),
            interrupted: Vec::new(),
            finished: Vec::new(),
            terminated: Vec::new(),
        };

        let mut still_open = std::mem::take(&mut self.scratch);
        still_open.clear();
        still_open.reserve(self.open.len());
        for &idx in &self.open {
            let accepted = self.records[idx].request.price >= price;
            let was_running = self.records[idx].phase == BidPhase::Running;
            let rec = &mut self.records[idx];
            if accepted {
                if !was_running {
                    rec.phase = BidPhase::Running;
                    report.started.push(rec.id);
                }
                // Run for this slot: charge at the spot price.
                rec.slots_run += 1;
                rec.charged += price * self.slot_len;
                let done = match rec.request.work {
                    WorkModel::FixedSlots(n) => rec.slots_run >= n,
                    WorkModel::Geometric => rng.chance(self.params.theta),
                };
                if done {
                    rec.phase = BidPhase::Finished;
                    rec.closed_at = Some(t);
                    report.finished.push(rec.id);
                } else {
                    still_open.push(idx);
                }
            } else {
                // Outbid.
                match rec.request.kind {
                    BidKind::OneTime => {
                        // Running one-time: terminated mid-job. New one-time
                        // below the spot price: rejected. Either way it
                        // leaves the system (§3.2).
                        rec.phase = BidPhase::Terminated;
                        rec.closed_at = Some(t);
                        if was_running {
                            rec.interruptions += 1;
                            report.interrupted.push(rec.id);
                        }
                        report.terminated.push(rec.id);
                    }
                    BidKind::Persistent => {
                        if was_running {
                            rec.interruptions += 1;
                            report.interrupted.push(rec.id);
                        }
                        rec.phase = BidPhase::Pending;
                        still_open.push(idx);
                    }
                }
            }
        }
        // Swap the survivor list in and keep the old vector as next slot's
        // scratch, so steady-state stepping reuses both allocations.
        self.scratch = std::mem::replace(&mut self.open, still_open);
        self.t += 1;
        report
    }

    /// Runs `n` slots, returning every report.
    pub fn run(&mut self, n: usize, rng: &mut Rng) -> Vec<SlotReport> {
        (0..n).map(|_| self.step(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> SpotMarket {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        SpotMarket::new(params, Hours::from_minutes(5.0))
    }

    fn bid(price: f64, kind: BidKind, slots: u32) -> BidRequest {
        BidRequest {
            price: Price::new(price),
            kind,
            work: WorkModel::FixedSlots(slots),
        }
    }

    #[test]
    fn lone_high_bid_runs_to_completion() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(1);
        let id = m.submit(bid(0.35, BidKind::OneTime, 3));
        let reports = m.run(5, &mut rng);
        let rec = m.record(id).unwrap();
        assert_eq!(rec.phase, BidPhase::Finished);
        assert_eq!(rec.slots_run, 3);
        assert_eq!(rec.interruptions, 0);
        assert!(rec.charged.as_f64() > 0.0);
        assert_eq!(reports[2].finished, vec![id]);
        assert_eq!(m.open_bids(), 0);
    }

    #[test]
    fn low_one_time_bid_is_rejected() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(2);
        // Even at minimal demand the price is (π̄ − β)/2 = 0.15, well above
        // a bid at the floor; the one-time request loses and exits.
        let id = m.submit(bid(0.02, BidKind::OneTime, 1));
        let rep = m.step(&mut rng);
        assert_eq!(rep.terminated, vec![id]);
        let rec = m.record(id).unwrap();
        assert_eq!(rec.phase, BidPhase::Terminated);
        assert_eq!(rec.slots_run, 0);
        assert_eq!(rec.charged, Cost::ZERO);
    }

    #[test]
    fn persistent_bid_interrupted_by_demand_surge_then_resumes() {
        // Price rises with demand in this market (toward π̄/2 = 0.175), so a
        // moderate persistent bid runs while the market is quiet, is
        // interrupted by a demand surge, and resumes once the surge clears.
        let mut m = market();
        let mut rng = Rng::seed_from_u64(3);
        let victim = m.submit(bid(0.16, BidKind::Persistent, 10));
        let r1 = m.step(&mut rng);
        assert!(
            r1.price < Price::new(0.16),
            "quiet-market price {}",
            r1.price
        );
        assert_eq!(m.record(victim).unwrap().phase, BidPhase::Running);

        // Demand surge: 400 high bids push the price above 0.16.
        for _ in 0..400 {
            m.submit(bid(0.34, BidKind::Persistent, 2));
        }
        let r2 = m.step(&mut rng);
        assert!(r2.price > Price::new(0.16), "surge price {}", r2.price);
        assert!(r2.interrupted.contains(&victim));
        assert_eq!(m.record(victim).unwrap().phase, BidPhase::Pending);
        assert_eq!(m.record(victim).unwrap().interruptions, 1);

        // The surge jobs need one more slot; after that the market quiets
        // down and the victim resumes and eventually finishes.
        let mut finished = false;
        for _ in 0..20 {
            let rep = m.step(&mut rng);
            if rep.finished.contains(&victim) {
                finished = true;
                break;
            }
        }
        assert!(finished, "victim never finished after the surge cleared");
        let rec = m.record(victim).unwrap();
        assert_eq!(rec.phase, BidPhase::Finished);
        assert_eq!(rec.slots_run, 10);
        assert_eq!(rec.interruptions, 1);
    }

    #[test]
    fn charges_spot_price_not_bid_price() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(5);
        let id = m.submit(bid(0.35, BidKind::OneTime, 1));
        let rep = m.step(&mut rng);
        let rec = m.record(id).unwrap();
        let expected = rep.price * Hours::from_minutes(5.0);
        assert!((rec.charged.as_f64() - expected.as_f64()).abs() < 1e-12);
        assert!(rep.price < Price::new(0.35), "spot price below the bid");
    }

    #[test]
    fn geometric_work_finishes_at_theta_rate() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(6);
        let n = 2000;
        for _ in 0..n {
            m.submit(BidRequest {
                price: Price::new(0.35),
                kind: BidKind::Persistent,
                work: WorkModel::Geometric,
            });
        }
        let rep = m.step(&mut rng);
        // All run; each finishes w.p. θ = 0.02.
        let finished = rep.finished.len() as f64;
        assert!(
            (finished - 0.02 * n as f64).abs() < 15.0,
            "finished {finished} of {n}"
        );
    }

    #[test]
    fn demand_counts_pending_running_and_new() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(7);
        m.submit(bid(0.03, BidKind::Persistent, 10)); // will pend
        m.submit(bid(0.35, BidKind::Persistent, 10)); // will run
        m.step(&mut rng);
        m.submit(bid(0.20, BidKind::Persistent, 10)); // new
        let rep = m.step(&mut rng);
        assert_eq!(rep.demand, 3);
    }

    #[test]
    fn records_are_stable_and_ordered() {
        let mut m = market();
        let a = m.submit(bid(0.1, BidKind::OneTime, 1));
        let b = m.submit(bid(0.2, BidKind::OneTime, 1));
        assert_eq!(m.records().len(), 2);
        assert_eq!(m.records()[0].id, a);
        assert_eq!(m.records()[1].id, b);
        assert!(m.record(BidId(99)).is_none());
        assert_eq!(m.now(), 0);
    }
}
