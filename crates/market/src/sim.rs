//! Micro-level spot-market simulator (Figure 2's state machine per bid).
//!
//! Where [`crate::queue`] iterates the *aggregate* demand recursion, this
//! module tracks each bid individually through the states of Figure 2 —
//! pending, running, finished, terminated — under the exact EC2 spot rules
//! the paper describes in §3.2:
//!
//! - in each slot the provider posts the optimal price for the current
//!   demand (Eq. 3) and every bid at or above it runs;
//! - a *running* instance whose bid falls below the new spot price is
//!   interrupted: one-time requests exit the system unfinished, persistent
//!   requests return to pending and re-compete automatically;
//! - new one-time bids below the spot price are rejected outright;
//! - running instances are charged the *spot price* (not their bid) per
//!   slot.
//!
//! Two implementations share this contract. [`naive::SpotMarket`] is the
//! original O(n)-per-slot scan, retained as the behavioral oracle. The
//! default [`SpotMarket`] is a **price-indexed bid-book**: bids live in a
//! struct-of-arrays store bucketed by bid price, the accept/reject
//! partition for a posted price is a bucket-boundary lookup plus per-bucket
//! range work, demand `L(t)` is tracked incrementally, and charges accrue
//! lazily against a per-slot price table — so a slot over 10⁵–10⁶ bids
//! costs time proportional to the *state changes* it causes, not to the
//! book size. The book reproduces the naive path bit-identically (same
//! reports, same RNG draw order, same float accumulation order); see
//! DESIGN.md §5e for the layout and the determinism contract, and
//! `tests/bidbook_equiv.rs` for the randomized equivalence suite.
//!
//! The simulator is the substrate for the provider-model validation and
//! for the §8 "collective user behavior" ablation (many strategic bidders
//! sharing one market). Individual price-taking users — the paper's main
//! setting — are simulated against a price *trace* by `spotbid-client`.

use crate::params::MarketParams;
use crate::provider::{clearing_price, optimal_price, ProviderPolicy};
use crate::units::{Cost, Hours, Price};
use spotbid_numerics::rng::Rng;
use std::collections::BTreeMap;

pub mod naive;

/// The server pool behind a market (DESIGN.md §5i).
///
/// [`Supply::Unbounded`] is the paper's Eq. 3 setting — every accepted bid
/// gets an instance — and runs bit-identically to the historical path.
/// [`Supply::Finite`] models a provider with `capacity` servers shared
/// between the spot book and an on-demand pool: on-demand admissions
/// ([`SpotMarket::request_on_demand`]) reserve servers first, the spot
/// auction clears the remainder (the posted price is the *maximum* of the
/// Eq. 3 revenue price and [`clearing_price`] at the spot share, so slack
/// capacity reproduces Eq. 3 exactly), and when the winners outnumber the
/// spot share the provider reclaims the lowest-bid instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Supply {
    /// Every accepted bid runs (the historical Eq. 3 path).
    Unbounded,
    /// `capacity` servers split between spot and on-demand by `policy`.
    Finite {
        /// Total servers in the pool.
        capacity: u32,
        /// How the pool is split between spot and on-demand.
        policy: ProviderPolicy,
    },
}

/// Per-slot provider accounting under [`Supply::Finite`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderSlot {
    /// Slot index.
    pub t: u64,
    /// The posted spot price.
    pub price: Price,
    /// Servers the spot book cleared against this slot.
    pub spot_capacity: u32,
    /// Spot instances that ran (and were charged) this slot.
    pub spot_running: u32,
    /// On-demand instances active through this slot.
    pub od_active: u32,
    /// Running spot instances evicted for capacity this slot.
    pub reclaims: u32,
    /// Would-be starters the capacity pass returned unlaunched this slot
    /// (fresh-accept evictions: they appear in [`SlotReport::evicted`] but
    /// never started, so they are not reclaims).
    pub fresh_evictions: u32,
    /// Previously-parked bids that relaunched this slot (their individual
    /// re-auction won and survived the capacity pass).
    pub parked_restarts: u32,
    /// On-demand requests admitted since the previous slot.
    pub od_admitted: u32,
    /// On-demand requests refused since the previous slot.
    pub od_rejected: u32,
    /// Spot revenue this slot: posted price × slot length × instances.
    pub spot_revenue: Cost,
    /// On-demand revenue this slot: `π̄` × slot length × active instances.
    pub od_revenue: Cost,
}

/// Cumulative provider accounting over a [`Supply::Finite`] session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderReport {
    /// Total servers in the pool.
    pub capacity: u32,
    /// Slots accounted.
    pub slots: u64,
    /// Total spot revenue.
    pub spot_revenue: Cost,
    /// Total on-demand revenue.
    pub od_revenue: Cost,
    /// Total capacity reclamations of running spot instances.
    pub reclaims: u64,
    /// Total would-be starters returned unlaunched by the capacity pass.
    pub fresh_evictions: u64,
    /// Total parked bids that relaunched after a capacity eviction or
    /// reclamation outage.
    pub parked_restarts: u64,
    /// Total on-demand admissions.
    pub od_admissions: u64,
    /// Total on-demand rejections.
    pub od_rejections: u64,
    /// Mean `(spot_running + od_active) / capacity` across slots.
    pub mean_utilization: f64,
    /// Highest posted spot price.
    pub peak_price: Price,
}

/// Folds a per-slot provider log into its cumulative report.
pub(crate) fn aggregate_provider(capacity: u32, log: &[ProviderSlot]) -> ProviderReport {
    let mut report = ProviderReport {
        capacity,
        slots: log.len() as u64,
        spot_revenue: Cost::ZERO,
        od_revenue: Cost::ZERO,
        reclaims: 0,
        fresh_evictions: 0,
        parked_restarts: 0,
        od_admissions: 0,
        od_rejections: 0,
        mean_utilization: 0.0,
        peak_price: Price::ZERO,
    };
    let mut busy = 0.0f64;
    for slot in log {
        report.spot_revenue += slot.spot_revenue;
        report.od_revenue += slot.od_revenue;
        report.reclaims += u64::from(slot.reclaims);
        report.fresh_evictions += u64::from(slot.fresh_evictions);
        report.parked_restarts += u64::from(slot.parked_restarts);
        report.od_admissions += u64::from(slot.od_admitted);
        report.od_rejections += u64::from(slot.od_rejected);
        busy += f64::from(slot.spot_running + slot.od_active);
        if slot.price > report.peak_price {
            report.peak_price = slot.price;
        }
    }
    if capacity > 0 && !log.is_empty() {
        report.mean_utilization = busy / (f64::from(capacity) * log.len() as f64);
    }
    report
}

/// The reclaim ordering contract (DESIGN.md §5i): when capacity binds, the
/// lowest bid is evicted first, and among equal bids the newest (highest
/// id) goes first. A strict total order, so both market implementations
/// select the identical victim set however their candidates are laid out.
pub(crate) fn victim_order(pa: f64, ia: u64, pb: f64, ib: u64) -> std::cmp::Ordering {
    pa.total_cmp(&pb).then(ib.cmp(&ia))
}

/// How a bid requests to be treated on interruption (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidKind {
    /// Exits the system when outbid, even mid-job.
    OneTime,
    /// Re-submitted automatically every slot until the job finishes.
    Persistent,
}

/// How much work a bid's job needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkModel {
    /// Finishes after exactly this many slots of running time.
    FixedSlots(u32),
    /// Finishes each running slot with probability `θ` (the aggregate
    /// model's departure process, Figure 2).
    Geometric,
}

/// A bid submitted to the market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidRequest {
    /// The bid price.
    pub price: Price,
    /// One-time or persistent handling.
    pub kind: BidKind,
    /// Work requirement.
    pub work: WorkModel,
}

/// Identifier of a bid within one [`SpotMarket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BidId(pub u64);

/// Lifecycle phase of a bid (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidPhase {
    /// Waiting for the spot price to fall to its bid.
    Pending,
    /// Currently running on an instance.
    Running,
    /// Completed all its work.
    Finished,
    /// Exited without completing (one-time bid outbid or rejected).
    Terminated,
}

/// Full accounting for one bid.
#[derive(Debug, Clone, PartialEq)]
pub struct BidRecord {
    /// The bid's identifier.
    pub id: BidId,
    /// The original request.
    pub request: BidRequest,
    /// Current phase.
    pub phase: BidPhase,
    /// Slot in which the bid was submitted.
    pub submitted_at: u64,
    /// Slots spent running so far.
    pub slots_run: u32,
    /// Total charged so far (spot price × slot length per running slot).
    pub charged: Cost,
    /// Number of interruptions suffered (running → not running).
    pub interruptions: u32,
    /// Slot in which the bid left the system, if it has.
    pub closed_at: Option<u64>,
}

/// Per-slot outcome summary.
///
/// Every event vector is sorted ascending by [`BidId`] — i.e. by
/// submission order. This is part of the determinism contract (DESIGN.md
/// §5e): consumers may binary-search the vectors, and the bid-book and
/// naive implementations agree on the order bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotReport {
    /// Slot index.
    pub t: u64,
    /// Demand `L(t)` seen by the provider (pending + running + new bids).
    pub demand: usize,
    /// The posted spot price.
    pub price: Price,
    /// Bids that began (or resumed) running this slot.
    pub started: Vec<BidId>,
    /// Running bids that were interrupted this slot.
    pub interrupted: Vec<BidId>,
    /// Bids that finished their work this slot.
    pub finished: Vec<BidId>,
    /// One-time bids that exited unfinished this slot.
    pub terminated: Vec<BidId>,
    /// Bids the capacity pass evicted this slot (running victims *and*
    /// would-be starters returned unlaunched) — the deterministic per-slot
    /// capacity delta. Always empty under [`Supply::Unbounded`] and on
    /// reclamation-outage slots; a consumer that wakes only the owners of
    /// these bids (plus genuine price crossings) sees every
    /// capacity-induced state change.
    pub evicted: Vec<BidId>,
}

impl SlotReport {
    /// An empty report (no events, zero price/demand), ready to be filled
    /// by [`SpotMarket::step_into`].
    pub fn empty() -> Self {
        SlotReport {
            t: 0,
            demand: 0,
            price: Price::ZERO,
            started: Vec::new(),
            interrupted: Vec::new(),
            finished: Vec::new(),
            terminated: Vec::new(),
            evicted: Vec::new(),
        }
    }
}

/// Price buckets over `[π_min, π̄]`. 512 keeps the boundary bucket at
/// ~0.2 % of the book while the per-slot bucket walk stays trivially
/// cheap.
const BUCKETS: usize = 512;

// Per-bid state flags (the `flags` struct-of-arrays column).
/// Still in the system (pending or running).
const F_OPEN: u8 = 1 << 0;
/// Currently running (member of its bucket's `running` list).
const F_RUNNING: u8 = 1 << 1;
/// Persistent kind (re-pends on interruption instead of exiting).
const F_PERSISTENT: u8 = 1 << 2;
/// Geometric work (draws `chance(θ)` every running slot).
const F_GEOMETRIC: u8 = 1 << 3;
/// Has been through at least one auction, so it lives in a bucket list
/// and obeys the resident invariants (pending ⇒ bid < posted price,
/// running ⇒ bid ≥ posted price).
const F_RESIDENT: u8 = 1 << 4;
/// Transient mark on a would-be starter evicted by the capacity pass
/// (cleared while filtering the start set the same slot).
const F_EVICT: u8 = 1 << 5;

/// One price bucket: the open bids whose price falls in its range, split
/// by run state so each crossing scan touches only the side it moves.
#[derive(Debug, Clone, Default)]
struct Bucket {
    pending: Vec<u32>,
    running: Vec<u32>,
}

/// A discrete-time spot market with endogenous prices, stored as a
/// price-indexed bid-book.
///
/// Drop-in successor of [`naive::SpotMarket`] with the same per-slot
/// semantics and bit-identical output. The differences are operational:
///
/// - [`step`](Self::step) costs O(events + boundary-bucket + running
///   geometric bids) instead of O(open bids);
/// - charges accrue lazily, so [`record`](Self::record) and
///   [`records`](Self::records) take `&mut self` (they settle the accrual
///   before returning);
/// - [`step_into`](Self::step_into)/[`recycle`](Self::recycle) let a
///   driving loop reuse `SlotReport` buffers arena-style.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    params: MarketParams,
    slot_len: Hours,
    t: u64,
    records: Vec<BidRecord>,

    // ---- struct-of-arrays hot columns, parallel to `records` ----
    /// Bid price as a raw f64 (the per-bid accept/reject operand).
    price_of: Vec<f64>,
    /// `F_*` state bits.
    flags: Vec<u8>,
    /// First slot of the current running streak (valid while running);
    /// charges for `[run_since, now)` are accrued but not yet settled.
    run_since: Vec<u64>,
    /// Scheduled finish slot (valid while a fixed-work bid is running).
    due: Vec<u64>,
    /// The bid's price bucket.
    bucket_of: Vec<u32>,
    /// Position within its current bucket list (pending or running).
    pos_of: Vec<u32>,

    // ---- the book ----
    buckets: Vec<Bucket>,
    bucket_lo: f64,
    bucket_w: f64,
    /// Bids submitted since the last step, in id order; they face their
    /// first auction individually before joining the bucket lists.
    incoming: Vec<u32>,
    /// Incrementally-maintained demand `L(t)` (open bids).
    open_count: usize,
    /// Last posted price (`+∞` before the first step, when no residents
    /// exist); crossings `[min(prev,new), max(prev,new))` bound the
    /// buckets a slot must visit.
    prev_price: f64,
    /// `price_t × slot_len` for every completed slot: the replay table
    /// that settles lazy charges in the same order, with the same
    /// floating-point operands, as the naive per-slot accrual.
    slot_charge: Vec<Cost>,
    /// Running geometric bids, ascending by id — the per-slot RNG draw
    /// order (one `chance(θ)` each, matching the naive submission-order
    /// scan).
    geo_run: Vec<u32>,
    /// Fixed-work finish calendar: slot → bids scheduled to finish then.
    /// Entries go stale when a bid is interrupted first; the pop
    /// re-validates against `due`.
    calendar: BTreeMap<u64, Vec<u32>>,
    /// Open bids displaced by a capacity reclamation (plus arrivals during
    /// one): they are exempt from the resident price invariants, so they
    /// sit outside the bucket lists and face an individual first-auction
    /// pass on the next normal slot.
    parked: Vec<u32>,
    /// Bids currently running — the summed length of the bucket running
    /// lists between steps. Lets the finite-supply capacity pass skip its
    /// all-buckets candidate gather when the carried runners plus this
    /// slot's winners already fit under the spot share.
    running_count: u32,
    /// The next step is a capacity reclamation (set by
    /// [`reclaim_next_slot`](Self::reclaim_next_slot)).
    reclaim_next: bool,

    // ---- finite-supply provider state (inert under `Unbounded`) ----
    /// The server pool behind the market.
    supply: Supply,
    /// Currently admitted on-demand instances.
    od_active: u32,
    /// On-demand admissions since the last step (folded into the next
    /// [`ProviderSlot`]).
    od_admit_pending: u32,
    /// On-demand rejections since the last step.
    od_reject_pending: u32,
    /// Per-slot provider accounting (finite supply only).
    provider_log: Vec<ProviderSlot>,

    // ---- arenas ----
    sc_started: Vec<u32>,
    sc_cand: Vec<u32>,
    sc_rejected: Vec<u32>,
    sc_geo_in: Vec<u32>,
    sc_geo_next: Vec<u32>,
    sc_fin_geo: Vec<u32>,
    sc_fin_fixed: Vec<u32>,
    sc_sync: Vec<u32>,
    /// Parked bids that won their individual re-auction this slot (phase
    /// 1b), pending the capacity pass: survivors count as
    /// [`ProviderSlot::parked_restarts`].
    sc_parked_started: Vec<u32>,
    cal_pool: Vec<Vec<u32>>,
    report_pool: Vec<Vec<BidId>>,
}

impl SpotMarket {
    /// Creates an empty market with unbounded supply (the historical
    /// default).
    pub fn new(params: MarketParams, slot_len: Hours) -> Self {
        Self::with_supply(params, slot_len, Supply::Unbounded)
    }

    /// Creates an empty market backed by the given [`Supply`].
    pub fn with_supply(params: MarketParams, slot_len: Hours, supply: Supply) -> Self {
        let spread = params.spread().as_f64();
        SpotMarket {
            params,
            slot_len,
            t: 0,
            records: Vec::new(),
            price_of: Vec::new(),
            flags: Vec::new(),
            run_since: Vec::new(),
            due: Vec::new(),
            bucket_of: Vec::new(),
            pos_of: Vec::new(),
            buckets: vec![Bucket::default(); BUCKETS],
            bucket_lo: params.pi_min.as_f64(),
            bucket_w: spread / BUCKETS as f64,
            incoming: Vec::new(),
            open_count: 0,
            prev_price: f64::INFINITY,
            slot_charge: Vec::new(),
            geo_run: Vec::new(),
            calendar: BTreeMap::new(),
            parked: Vec::new(),
            running_count: 0,
            reclaim_next: false,
            supply,
            od_active: 0,
            od_admit_pending: 0,
            od_reject_pending: 0,
            provider_log: Vec::new(),
            sc_started: Vec::new(),
            sc_cand: Vec::new(),
            sc_rejected: Vec::new(),
            sc_geo_in: Vec::new(),
            sc_geo_next: Vec::new(),
            sc_fin_geo: Vec::new(),
            sc_fin_fixed: Vec::new(),
            sc_sync: Vec::new(),
            sc_parked_started: Vec::new(),
            cal_pool: Vec::new(),
            report_pool: Vec::new(),
        }
    }

    /// The market parameters.
    pub fn params(&self) -> &MarketParams {
        &self.params
    }

    /// Current slot index (number of completed steps).
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Submits a bid; it competes from the next [`step`](Self::step) on.
    pub fn submit(&mut self, request: BidRequest) -> BidId {
        assert!(
            self.records.len() < u32::MAX as usize,
            "bid-book index space exhausted"
        );
        let id = BidId(self.records.len() as u64);
        self.records.push(BidRecord {
            id,
            request,
            phase: BidPhase::Pending,
            submitted_at: self.t,
            slots_run: 0,
            charged: Cost::ZERO,
            interruptions: 0,
            closed_at: None,
        });
        let idx = (self.records.len() - 1) as u32;
        let mut flags = F_OPEN;
        if request.kind == BidKind::Persistent {
            flags |= F_PERSISTENT;
        }
        if request.work == WorkModel::Geometric {
            flags |= F_GEOMETRIC;
        }
        self.price_of.push(request.price.as_f64());
        self.flags.push(flags);
        self.run_since.push(0);
        self.due.push(0);
        self.bucket_of
            .push(self.bucket_index(request.price.as_f64()) as u32);
        self.pos_of.push(0);
        self.incoming.push(idx);
        self.open_count += 1;
        id
    }

    /// Read access to a bid's record.
    ///
    /// Settles the bid's lazily-accrued charges first (hence `&mut`); the
    /// returned record is exactly what the naive implementation would
    /// show.
    pub fn record(&mut self, id: BidId) -> Option<&BidRecord> {
        let i = id.0 as usize;
        if i >= self.records.len() {
            return None;
        }
        self.sync_one(i);
        Some(&self.records[i])
    }

    /// All bid records (submitted order), with every running bid's lazy
    /// charge accrual settled.
    pub fn records(&mut self) -> &[BidRecord] {
        let mut pending = std::mem::take(&mut self.sc_sync);
        pending.clear();
        for b in &self.buckets {
            pending.extend_from_slice(&b.running);
        }
        for &i in &pending {
            self.sync_one(i as usize);
        }
        self.sc_sync = pending;
        &self.records
    }

    /// Number of bids still pending or running.
    pub fn open_bids(&self) -> usize {
        self.open_count
    }

    /// Marks the next [`step`](Self::step) as a bid-independent capacity
    /// reclamation (the fault-injection hook): the provider still posts the
    /// slot's price, but takes every instance back instead of auctioning.
    /// All running bids are interrupted — persistent ones return to pending
    /// and re-compete from the following slot, one-time ones exit
    /// unfinished — while pending bids and fresh arrivals simply wait the
    /// outage out. Nothing runs, so nothing is charged and no departure
    /// randomness is drawn. Bit-identical to
    /// [`naive::SpotMarket::reclaim_next_slot`].
    pub fn reclaim_next_slot(&mut self) {
        self.reclaim_next = true;
    }

    /// The server pool behind this market.
    pub fn supply(&self) -> Supply {
        self.supply
    }

    /// Currently admitted on-demand instances (0 under unbounded supply).
    pub fn od_active(&self) -> u32 {
        self.od_active
    }

    /// Servers the spot book will clear against next slot, or `None` under
    /// unbounded supply.
    pub fn spot_capacity(&self) -> Option<u32> {
        match self.supply {
            Supply::Unbounded => None,
            Supply::Finite { capacity, policy } => {
                Some(policy.spot_capacity(capacity, self.od_active))
            }
        }
    }

    /// Requests `n` on-demand instances from the pool, returning how many
    /// were admitted. Admissions take effect immediately: the next slot's
    /// spot share shrinks by what the policy charges against it, and a
    /// [`Supply::Finite`] market bills each active instance `π̄ × slot_len`
    /// per slot in its [`ProviderSlot`] log. Unbounded supply admits
    /// everything and records nothing.
    pub fn request_on_demand(&mut self, n: u32) -> u32 {
        match self.supply {
            Supply::Unbounded => n,
            Supply::Finite { capacity, policy } => {
                let limit = policy.od_limit(capacity);
                let admitted = n.min(limit.saturating_sub(self.od_active));
                self.od_active += admitted;
                self.od_admit_pending += admitted;
                self.od_reject_pending += n - admitted;
                admitted
            }
        }
    }

    /// Releases `n` active on-demand instances back to the pool
    /// (saturating; a no-op under unbounded supply).
    pub fn release_on_demand(&mut self, n: u32) {
        self.od_active = self.od_active.saturating_sub(n);
    }

    /// The per-slot provider accounting log (empty under unbounded
    /// supply).
    pub fn provider_slots(&self) -> &[ProviderSlot] {
        &self.provider_log
    }

    /// Cumulative provider accounting, or `None` under unbounded supply.
    pub fn provider_report(&self) -> Option<ProviderReport> {
        match self.supply {
            Supply::Unbounded => None,
            Supply::Finite { capacity, .. } => {
                Some(aggregate_provider(capacity, &self.provider_log))
            }
        }
    }

    /// Advances one slot: runs the auction, interrupts/launches instances,
    /// progresses work, and charges running bids.
    pub fn step(&mut self, rng: &mut Rng) -> SlotReport {
        let mut report = self.fresh_report();
        self.step_into(rng, &mut report);
        report
    }

    /// As [`step`](Self::step), but filling a caller-provided report whose
    /// event buffers are reused (arena-style). Pair with
    /// [`recycle`](Self::recycle) to step a long-lived market without
    /// per-slot allocation.
    pub fn step_into(&mut self, rng: &mut Rng, report: &mut SlotReport) {
        let t = self.t;
        report.t = t;
        report.demand = self.open_count;
        report.started.clear();
        report.interrupted.clear();
        report.finished.clear();
        report.terminated.clear();
        report.evicted.clear();

        let price = match self.supply {
            Supply::Unbounded => optimal_price(&self.params, self.open_count as f64),
            Supply::Finite { capacity, policy } => {
                // The spot share clears via the capacity price when it
                // binds; slack capacity reproduces Eq. 3 exactly (`max`
                // returns the revenue price's own float).
                let cap = policy.spot_capacity(capacity, self.od_active);
                let revenue = optimal_price(&self.params, self.open_count as f64);
                let clearing = clearing_price(&self.params, self.open_count as f64, f64::from(cap));
                if clearing > revenue {
                    clearing
                } else {
                    revenue
                }
            }
        };
        report.price = price;
        let pf = price.as_f64();
        debug_assert_eq!(self.slot_charge.len() as u64, t);
        self.slot_charge.push(price * self.slot_len);

        let mut started = std::mem::take(&mut self.sc_started);
        let mut rejected = std::mem::take(&mut self.sc_rejected);
        let mut geo_in = std::mem::take(&mut self.sc_geo_in);
        started.clear();
        rejected.clear();
        geo_in.clear();

        // 1. Crossing scan over the resident book. Residents obey the
        // price invariants w.r.t. the previous posted price `pp`, so the
        // only state changes live in buckets overlapping
        // [min(pp, pf), max(pp, pf)); buckets strictly inside the interval
        // flip wholesale, the boundary bucket is compared per bid.
        //
        // A reclamation slot replaces the scan: every running bid is
        // rejected regardless of price, and the pending residents a price
        // fall would have started are parked instead (they must wait the
        // outage out, but price < pf breaks the pending invariant, so they
        // leave the bucket lists until their individual auction next slot).
        let pp = self.prev_price;
        let reclaiming = std::mem::take(&mut self.reclaim_next);
        if reclaiming {
            for bucket in &mut self.buckets {
                rejected.extend_from_slice(&bucket.running);
                bucket.running.clear();
            }
            if pf < pp {
                let k_lo = self.bucket_index(pf);
                let k_hi = self.bucket_index(pp);
                for b in k_lo..=k_hi {
                    let mut list = std::mem::take(&mut self.buckets[b].pending);
                    if b > k_lo {
                        self.parked.extend_from_slice(&list);
                        list.clear();
                    } else {
                        let mut w = 0usize;
                        for r in 0..list.len() {
                            let i = list[r];
                            if self.price_of[i as usize] >= pf {
                                self.parked.push(i);
                            } else {
                                self.pos_of[i as usize] = w as u32;
                                list[w] = i;
                                w += 1;
                            }
                        }
                        list.truncate(w);
                    }
                    self.buckets[b].pending = list;
                }
            }
        } else if pf > pp {
            // Price rose: running bids in [pp, pf) are outbid.
            let k_lo = self.bucket_index(pp);
            let k_hi = self.bucket_index(pf);
            for b in k_lo..=k_hi {
                let mut list = std::mem::take(&mut self.buckets[b].running);
                if b < k_hi {
                    rejected.extend_from_slice(&list);
                    list.clear();
                } else {
                    let mut w = 0usize;
                    for r in 0..list.len() {
                        let i = list[r];
                        if self.price_of[i as usize] >= pf {
                            self.pos_of[i as usize] = w as u32;
                            list[w] = i;
                            w += 1;
                        } else {
                            rejected.push(i);
                        }
                    }
                    list.truncate(w);
                }
                self.buckets[b].running = list;
            }
        } else if pf < pp {
            // Price fell: pending bids in [pf, pp) win their auction.
            // (`pp` is +∞ only before the first step, when every bucket is
            // empty — the scan is then a no-op walk.)
            let k_lo = self.bucket_index(pf);
            let k_hi = self.bucket_index(pp);
            for b in k_lo..=k_hi {
                let mut list = std::mem::take(&mut self.buckets[b].pending);
                if b > k_lo {
                    started.extend_from_slice(&list);
                    list.clear();
                } else {
                    let mut w = 0usize;
                    for r in 0..list.len() {
                        let i = list[r];
                        if self.price_of[i as usize] >= pf {
                            started.push(i);
                        } else {
                            self.pos_of[i as usize] = w as u32;
                            list[w] = i;
                            w += 1;
                        }
                    }
                    list.truncate(w);
                }
                self.buckets[b].pending = list;
            }
        }

        // 1b. Individual auctions for parked bids — non-empty only on the
        // first normal slot after a reclamation (or, under finite supply,
        // after a capacity eviction). After a reclamation the running book
        // is empty, so `rejected` is empty here and the report's terminated
        // order stays globally id-sorted: parked ids (pushed now,
        // ascending) all precede this slot's incoming ids. Under finite
        // supply `rejected` can be non-empty — capacity eviction only
        // parks persistent bids (which emit nothing here), and the repair
        // sort in phase 3b restores id order whenever it runs.
        self.sc_parked_started.clear();
        if !reclaiming && !self.parked.is_empty() {
            debug_assert!(rejected.is_empty() || self.supply != Supply::Unbounded);
            let mut parked = std::mem::take(&mut self.parked);
            parked.sort_unstable();
            for &i in &parked {
                let iu = i as usize;
                self.flags[iu] |= F_RESIDENT;
                if self.price_of[iu] >= pf {
                    started.push(i);
                    self.sc_parked_started.push(i);
                } else if self.flags[iu] & F_PERSISTENT != 0 {
                    let b = self.bucket_of[iu] as usize;
                    self.pos_of[iu] = self.buckets[b].pending.len() as u32;
                    self.buckets[b].pending.push(i);
                } else {
                    let rec = &mut self.records[iu];
                    rec.phase = BidPhase::Terminated;
                    rec.closed_at = Some(t);
                    report.terminated.push(rec.id);
                    self.flags[iu] &= !F_OPEN;
                    self.open_count -= 1;
                }
            }
            parked.clear();
            self.parked = parked;
        }
        started.sort_unstable();
        rejected.sort_unstable();

        // 2. Outbid running residents: interruption for all, exit for
        // one-time. Report order is id order — and resident ids all
        // precede incoming ids, so the per-category appends below stay
        // sorted.
        for &i in &rejected {
            let iu = i as usize;
            self.flags[iu] &= !F_RUNNING;
            self.running_count -= 1;
            debug_assert!(t > 0, "no residents can exist before the first step");
            self.settle(iu, t - 1);
            let persistent = self.flags[iu] & F_PERSISTENT != 0;
            let rec = &mut self.records[iu];
            rec.interruptions += 1;
            report.interrupted.push(rec.id);
            if persistent {
                rec.phase = BidPhase::Pending;
                if reclaiming {
                    // Re-pended by the outage; its price may be ≥ pf, so it
                    // waits outside the buckets for its re-auction.
                    self.parked.push(i);
                } else {
                    let b = self.bucket_of[iu] as usize;
                    self.pos_of[iu] = self.buckets[b].pending.len() as u32;
                    self.buckets[b].pending.push(i);
                }
            } else {
                rec.phase = BidPhase::Terminated;
                rec.closed_at = Some(t);
                report.terminated.push(rec.id);
                self.flags[iu] &= !F_OPEN;
                self.open_count -= 1;
            }
        }

        // 3. First auction for bids submitted since the last step, in id
        // order. Winners join the start set; persistent losers become
        // pending residents; one-time losers exit immediately. During a
        // reclamation there is no auction to face: arrivals park and wait.
        let incoming = std::mem::take(&mut self.incoming);
        if reclaiming {
            self.parked.extend_from_slice(&incoming);
        } else {
            for &i in &incoming {
                let iu = i as usize;
                self.flags[iu] |= F_RESIDENT;
                if self.price_of[iu] >= pf {
                    started.push(i);
                } else if self.flags[iu] & F_PERSISTENT != 0 {
                    let b = self.bucket_of[iu] as usize;
                    self.pos_of[iu] = self.buckets[b].pending.len() as u32;
                    self.buckets[b].pending.push(i);
                } else {
                    let rec = &mut self.records[iu];
                    rec.phase = BidPhase::Terminated;
                    rec.closed_at = Some(t);
                    report.terminated.push(rec.id);
                    self.flags[iu] &= !F_OPEN;
                    self.open_count -= 1;
                }
            }
        }
        self.incoming = incoming;
        self.incoming.clear();

        // 3b. Capacity enforcement (finite supply only): if the carried
        // runners plus this slot's winners exceed the spot share, the
        // provider reclaims the excess — lowest bid first, newest first
        // among equal bids (`victim_order`, the §5i reclaim contract).
        // Carried victims are interrupted like a price crossing (settled
        // through the previous slot, persistent ones park for an
        // individual re-auction, one-time ones exit); would-be starters
        // are returned unlaunched (no start event — persistent park,
        // one-time exit). The victim pass interleaves ids, so the event
        // vectors it touched are re-sorted afterwards.
        if let Supply::Finite { capacity, policy } = self.supply {
            let spot_cap = policy.spot_capacity(capacity, self.od_active);
            // The candidate gather walks every bucket; skip it when the
            // carried runners plus this slot's winners already fit under
            // the spot share (no eviction possible), keeping quiet
            // finite-supply slots O(1) like their unbounded counterparts.
            // An outage slot has no candidates at all: step 1 dumped every
            // runner and step 2 settled them, so `running_count` is 0 and
            // the auction never ran (`started` is empty).
            let carried = self.running_count as usize + started.len();
            debug_assert!(!reclaiming || carried == 0);
            let mut cand = std::mem::take(&mut self.sc_cand);
            cand.clear();
            if carried > spot_cap as usize {
                for bucket in &self.buckets {
                    cand.extend_from_slice(&bucket.running);
                }
                cand.extend_from_slice(&started);
                debug_assert_eq!(cand.len(), carried);
            }
            let spot_running = carried.min(spot_cap as usize) as u32;
            let mut reclaims = 0u32;
            let mut fresh_evictions = 0u32;
            if cand.len() > spot_cap as usize {
                let k = cand.len() - spot_cap as usize;
                cand.sort_unstable_by(|&a, &b| {
                    victim_order(
                        self.price_of[a as usize],
                        u64::from(a),
                        self.price_of[b as usize],
                        u64::from(b),
                    )
                });
                for &i in &cand[..k] {
                    let iu = i as usize;
                    report.evicted.push(self.records[iu].id);
                    if self.flags[iu] & F_RUNNING != 0 {
                        // A running instance reclaimed for the pool.
                        reclaims += 1;
                        self.remove_running(i);
                        self.flags[iu] &= !F_RUNNING;
                        self.running_count -= 1;
                        self.settle(iu, t - 1);
                        let persistent = self.flags[iu] & F_PERSISTENT != 0;
                        let rec = &mut self.records[iu];
                        rec.interruptions += 1;
                        report.interrupted.push(rec.id);
                        if persistent {
                            rec.phase = BidPhase::Pending;
                            self.parked.push(i);
                        } else {
                            rec.phase = BidPhase::Terminated;
                            rec.closed_at = Some(t);
                            report.terminated.push(rec.id);
                            self.flags[iu] &= !F_OPEN;
                            self.open_count -= 1;
                        }
                    } else {
                        // A would-be starter: never launched this slot.
                        fresh_evictions += 1;
                        self.flags[iu] |= F_EVICT;
                        if self.flags[iu] & F_PERSISTENT != 0 {
                            self.parked.push(i);
                        } else {
                            let rec = &mut self.records[iu];
                            rec.phase = BidPhase::Terminated;
                            rec.closed_at = Some(t);
                            report.terminated.push(rec.id);
                            self.flags[iu] &= !F_OPEN;
                            self.open_count -= 1;
                        }
                    }
                }
                let mut w = 0usize;
                for r in 0..started.len() {
                    let i = started[r];
                    if self.flags[i as usize] & F_EVICT != 0 {
                        self.flags[i as usize] &= !F_EVICT;
                    } else {
                        started[w] = i;
                        w += 1;
                    }
                }
                started.truncate(w);
                report.interrupted.sort_unstable();
                report.terminated.sort_unstable();
                report.evicted.sort_unstable();
            }
            cand.clear();
            self.sc_cand = cand;
            let parked_restarts = self
                .sc_parked_started
                .iter()
                .filter(|&&i| started.binary_search(&i).is_ok())
                .count() as u32;
            let spot_revenue = (price * self.slot_len) * f64::from(spot_running);
            let od_revenue = (self.params.pi_bar * self.slot_len) * f64::from(self.od_active);
            self.provider_log.push(ProviderSlot {
                t,
                price,
                spot_capacity: spot_cap,
                spot_running,
                od_active: self.od_active,
                reclaims,
                fresh_evictions,
                parked_restarts,
                od_admitted: std::mem::take(&mut self.od_admit_pending),
                od_rejected: std::mem::take(&mut self.od_reject_pending),
                spot_revenue,
                od_revenue,
            });
        }

        // 4. Launch the slot's winners: start the running streak, schedule
        // fixed-work finishes on the calendar, enroll geometric bids for
        // the draw pass.
        self.running_count += started.len() as u32;
        for &i in &started {
            let iu = i as usize;
            self.flags[iu] |= F_RUNNING;
            self.run_since[iu] = t;
            let b = self.bucket_of[iu] as usize;
            self.pos_of[iu] = self.buckets[b].running.len() as u32;
            self.buckets[b].running.push(i);
            self.records[iu].phase = BidPhase::Running;
            report.started.push(self.records[iu].id);
            if self.flags[iu] & F_GEOMETRIC != 0 {
                geo_in.push(i);
            } else {
                let WorkModel::FixedSlots(n) = self.records[iu].request.work else {
                    unreachable!()
                };
                // Settled at (re)start, so `slots_run` is exact here; a
                // zero-slot request still occupies (and is charged for)
                // the slot it is accepted in, matching the naive rule
                // `slots_run >= n` checked after the increment.
                let rem = n.saturating_sub(self.records[iu].slots_run);
                let due = t + u64::from(rem.saturating_sub(1));
                self.due[iu] = due;
                let slot_list = self
                    .calendar
                    .entry(due)
                    .or_insert_with(|| self.cal_pool.pop().unwrap_or_default());
                slot_list.push(i);
            }
        }

        // 5. Geometric draw pass: one `chance(θ)` per accepted geometric
        // bid, ascending by id — bit-identical to the naive submission-
        // order scan. `geo_run` carries last slot's survivors (entries
        // interrupted or terminated above are skipped and dropped);
        // `geo_in` carries this slot's starts; both are sorted and
        // disjoint, so a linear merge preserves the global draw order.
        let mut gr = std::mem::take(&mut self.geo_run);
        let mut gnext = std::mem::take(&mut self.sc_geo_next);
        let mut fin_geo = std::mem::take(&mut self.sc_fin_geo);
        gnext.clear();
        fin_geo.clear();
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let from_old = match (gr.get(a), geo_in.get(b)) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(&x), Some(&y)) => x < y,
            };
            let i = if from_old {
                let i = gr[a];
                a += 1;
                if self.flags[i as usize] & F_RUNNING == 0 {
                    continue; // went stale this slot (interrupted/terminated)
                }
                i
            } else {
                let i = geo_in[b];
                b += 1;
                i
            };
            let iu = i as usize;
            if rng.chance(self.params.theta) {
                self.settle(iu, t);
                let rec = &mut self.records[iu];
                rec.phase = BidPhase::Finished;
                rec.closed_at = Some(t);
                fin_geo.push(i);
                self.flags[iu] &= !(F_RUNNING | F_OPEN);
                self.running_count -= 1;
                self.remove_running(i);
                self.open_count -= 1;
            } else {
                gnext.push(i);
            }
        }
        self.geo_run = gnext;
        gr.clear();
        self.sc_geo_next = gr;

        // 6. Calendar pop: fixed-work bids whose streak reaches its work
        // requirement this slot. Entries are validated against `due` and
        // the running flag, so interruptions (which reschedule on restart)
        // leave only harmless stale entries behind.
        let mut fin_fixed = std::mem::take(&mut self.sc_fin_fixed);
        fin_fixed.clear();
        if let Some(mut due_list) = self.calendar.remove(&t) {
            for &i in &due_list {
                let iu = i as usize;
                if self.flags[iu] & F_RUNNING != 0 && self.due[iu] == t {
                    fin_fixed.push(i);
                }
            }
            due_list.clear();
            self.cal_pool.push(due_list);
            fin_fixed.sort_unstable();
            for &i in &fin_fixed {
                let iu = i as usize;
                self.settle(iu, t);
                let rec = &mut self.records[iu];
                debug_assert!(matches!(
                    rec.request.work,
                    WorkModel::FixedSlots(n) if rec.slots_run >= n
                ));
                rec.phase = BidPhase::Finished;
                rec.closed_at = Some(t);
                self.flags[iu] &= !(F_RUNNING | F_OPEN);
                self.running_count -= 1;
                self.remove_running(i);
                self.open_count -= 1;
            }
        }

        // 7. Finished = id-merge of the geometric and fixed finish sets.
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let from_geo = match (fin_geo.get(a), fin_fixed.get(b)) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(&x), Some(&y)) => x < y,
            };
            let i = if from_geo {
                a += 1;
                fin_geo[a - 1]
            } else {
                b += 1;
                fin_fixed[b - 1]
            };
            report.finished.push(self.records[i as usize].id);
        }

        self.sc_started = started;
        self.sc_rejected = rejected;
        self.sc_geo_in = geo_in;
        self.sc_fin_geo = fin_geo;
        self.sc_fin_fixed = fin_fixed;
        self.prev_price = pf;
        self.t += 1;
    }

    /// Runs `n` slots, returning every report.
    pub fn run(&mut self, n: usize, rng: &mut Rng) -> Vec<SlotReport> {
        (0..n).map(|_| self.step(rng)).collect()
    }

    /// Returns a consumed report's event buffers to the arena so the next
    /// [`step`](Self::step)/[`step_into`](Self::step_into) reuses them.
    pub fn recycle(&mut self, report: SlotReport) {
        let SlotReport {
            mut started,
            mut interrupted,
            mut finished,
            mut terminated,
            mut evicted,
            ..
        } = report;
        started.clear();
        interrupted.clear();
        finished.clear();
        terminated.clear();
        evicted.clear();
        self.report_pool.push(started);
        self.report_pool.push(interrupted);
        self.report_pool.push(finished);
        self.report_pool.push(terminated);
        self.report_pool.push(evicted);
    }

    fn fresh_report(&mut self) -> SlotReport {
        let mut take = || self.report_pool.pop().unwrap_or_default();
        let started = take();
        let interrupted = take();
        let finished = take();
        let terminated = take();
        let evicted = take();
        SlotReport {
            t: 0,
            demand: 0,
            price: Price::ZERO,
            started,
            interrupted,
            finished,
            terminated,
            evicted,
        }
    }

    /// The bucket whose exact range `[lo(b), lo(b+1))` contains `p`
    /// (bucket 0 is open below, bucket `BUCKETS-1` open above; NaN maps to
    /// bucket 0). The float division is repaired against the index-derived
    /// boundaries, so wholesale bucket classification in the crossing scan
    /// is sound even at one-ulp edges.
    fn bucket_index(&self, p: f64) -> usize {
        let raw = (p - self.bucket_lo) / self.bucket_w;
        let mut i = if raw.is_finite() {
            if raw <= 0.0 {
                0
            } else {
                (raw as usize).min(BUCKETS - 1)
            }
        } else if raw == f64::INFINITY {
            BUCKETS - 1
        } else {
            0
        };
        while i > 0 && p < self.bucket_lo + i as f64 * self.bucket_w {
            i -= 1;
        }
        while i + 1 < BUCKETS && p >= self.bucket_lo + (i + 1) as f64 * self.bucket_w {
            i += 1;
        }
        i
    }

    /// Removes a bid from its bucket's running list (swap-remove with
    /// position fixup).
    fn remove_running(&mut self, i: u32) {
        let iu = i as usize;
        let b = self.bucket_of[iu] as usize;
        let p = self.pos_of[iu] as usize;
        let list = &mut self.buckets[b].running;
        debug_assert_eq!(list[p], i);
        list.swap_remove(p);
        if p < list.len() {
            self.pos_of[list[p] as usize] = p as u32;
        }
    }

    /// Settles the lazy charge accrual for slots `[run_since, end]`: the
    /// same `charged += price_u × slot_len` sequence, in the same
    /// chronological order, as the naive per-slot loop — so the float sums
    /// are bit-identical.
    fn settle(&mut self, iu: usize, end: u64) {
        let since = self.run_since[iu];
        if since > end {
            return;
        }
        let rec = &mut self.records[iu];
        for u in since..=end {
            rec.charged += self.slot_charge[u as usize];
        }
        rec.slots_run += (end - since + 1) as u32;
        self.run_since[iu] = end + 1;
    }

    /// Settles a single bid's accrual up to the last completed slot.
    fn sync_one(&mut self, iu: usize) {
        if self.flags[iu] & F_RUNNING != 0 && self.t > 0 {
            self.settle(iu, self.t - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> SpotMarket {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        SpotMarket::new(params, Hours::from_minutes(5.0))
    }

    fn bid(price: f64, kind: BidKind, slots: u32) -> BidRequest {
        BidRequest {
            price: Price::new(price),
            kind,
            work: WorkModel::FixedSlots(slots),
        }
    }

    #[test]
    fn lone_high_bid_runs_to_completion() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(1);
        let id = m.submit(bid(0.35, BidKind::OneTime, 3));
        let reports = m.run(5, &mut rng);
        let rec = m.record(id).unwrap();
        assert_eq!(rec.phase, BidPhase::Finished);
        assert_eq!(rec.slots_run, 3);
        assert_eq!(rec.interruptions, 0);
        assert!(rec.charged.as_f64() > 0.0);
        assert_eq!(reports[2].finished, vec![id]);
        assert_eq!(m.open_bids(), 0);
    }

    #[test]
    fn low_one_time_bid_is_rejected() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(2);
        // Even at minimal demand the price is (π̄ − β)/2 = 0.15, well above
        // a bid at the floor; the one-time request loses and exits.
        let id = m.submit(bid(0.02, BidKind::OneTime, 1));
        let rep = m.step(&mut rng);
        assert_eq!(rep.terminated, vec![id]);
        let rec = m.record(id).unwrap();
        assert_eq!(rec.phase, BidPhase::Terminated);
        assert_eq!(rec.slots_run, 0);
        assert_eq!(rec.charged, Cost::ZERO);
    }

    #[test]
    fn persistent_bid_interrupted_by_demand_surge_then_resumes() {
        // Price rises with demand in this market (toward π̄/2 = 0.175), so a
        // moderate persistent bid runs while the market is quiet, is
        // interrupted by a demand surge, and resumes once the surge clears.
        let mut m = market();
        let mut rng = Rng::seed_from_u64(3);
        let victim = m.submit(bid(0.16, BidKind::Persistent, 10));
        let r1 = m.step(&mut rng);
        assert!(
            r1.price < Price::new(0.16),
            "quiet-market price {}",
            r1.price
        );
        assert_eq!(m.record(victim).unwrap().phase, BidPhase::Running);

        // Demand surge: 400 high bids push the price above 0.16.
        for _ in 0..400 {
            m.submit(bid(0.34, BidKind::Persistent, 2));
        }
        let r2 = m.step(&mut rng);
        assert!(r2.price > Price::new(0.16), "surge price {}", r2.price);
        assert!(r2.interrupted.contains(&victim));
        assert_eq!(m.record(victim).unwrap().phase, BidPhase::Pending);
        assert_eq!(m.record(victim).unwrap().interruptions, 1);

        // The surge jobs need one more slot; after that the market quiets
        // down and the victim resumes and eventually finishes.
        let mut finished = false;
        for _ in 0..20 {
            let rep = m.step(&mut rng);
            if rep.finished.contains(&victim) {
                finished = true;
                break;
            }
        }
        assert!(finished, "victim never finished after the surge cleared");
        let rec = m.record(victim).unwrap();
        assert_eq!(rec.phase, BidPhase::Finished);
        assert_eq!(rec.slots_run, 10);
        assert_eq!(rec.interruptions, 1);
    }

    #[test]
    fn charges_spot_price_not_bid_price() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(5);
        let id = m.submit(bid(0.35, BidKind::OneTime, 1));
        let rep = m.step(&mut rng);
        let rec = m.record(id).unwrap();
        let expected = rep.price * Hours::from_minutes(5.0);
        assert!((rec.charged.as_f64() - expected.as_f64()).abs() < 1e-12);
        assert!(rep.price < Price::new(0.35), "spot price below the bid");
    }

    #[test]
    fn geometric_work_finishes_at_theta_rate() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(6);
        let n = 2000;
        for _ in 0..n {
            m.submit(BidRequest {
                price: Price::new(0.35),
                kind: BidKind::Persistent,
                work: WorkModel::Geometric,
            });
        }
        let rep = m.step(&mut rng);
        // All run; each finishes w.p. θ = 0.02.
        let finished = rep.finished.len() as f64;
        assert!(
            (finished - 0.02 * n as f64).abs() < 15.0,
            "finished {finished} of {n}"
        );
    }

    #[test]
    fn demand_counts_pending_running_and_new() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(7);
        m.submit(bid(0.03, BidKind::Persistent, 10)); // will pend
        m.submit(bid(0.35, BidKind::Persistent, 10)); // will run
        m.step(&mut rng);
        m.submit(bid(0.20, BidKind::Persistent, 10)); // new
        let rep = m.step(&mut rng);
        assert_eq!(rep.demand, 3);
    }

    #[test]
    fn records_are_stable_and_ordered() {
        let mut m = market();
        let a = m.submit(bid(0.1, BidKind::OneTime, 1));
        let b = m.submit(bid(0.2, BidKind::OneTime, 1));
        assert_eq!(m.records().len(), 2);
        assert_eq!(m.records()[0].id, a);
        assert_eq!(m.records()[1].id, b);
        assert!(m.record(BidId(99)).is_none());
        assert_eq!(m.now(), 0);
    }

    #[test]
    fn recycled_reports_do_not_change_results() {
        // step_into over recycled buffers must match fresh step() output.
        let mut m1 = market();
        let mut m2 = market();
        let mut r1 = Rng::seed_from_u64(9);
        let mut r2 = Rng::seed_from_u64(9);
        for i in 0..50u32 {
            let req = bid(0.02 + f64::from(i % 30) * 0.012, BidKind::Persistent, 4);
            m1.submit(req);
            m2.submit(req);
        }
        let mut arena = SlotReport::empty();
        for _ in 0..30 {
            let fresh = m1.step(&mut r1);
            m2.step_into(&mut r2, &mut arena);
            assert_eq!(fresh, arena);
            m1.recycle(fresh);
        }
        assert_eq!(m1.records(), m2.records());
    }

    #[test]
    fn reclamation_interrupts_running_and_parks_persistent() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(13);
        let p = m.submit(bid(0.35, BidKind::Persistent, 5));
        let o = m.submit(bid(0.35, BidKind::OneTime, 5));
        let r1 = m.step(&mut rng);
        assert_eq!(r1.started, vec![p, o]);

        m.reclaim_next_slot();
        let r2 = m.step(&mut rng);
        // Price still posted; everything running is taken back.
        assert!(r2.price > Price::ZERO);
        assert_eq!(r2.interrupted, vec![p, o]);
        assert_eq!(r2.terminated, vec![o], "one-time exits unfinished");
        assert!(r2.started.is_empty() && r2.finished.is_empty());
        assert_eq!(m.record(p).unwrap().phase, BidPhase::Pending);
        // Charged for the one pre-outage slot only.
        assert_eq!(m.record(p).unwrap().slots_run, 1);

        // Next normal slot: the parked persistent re-wins its auction and
        // eventually finishes its remaining work.
        let r3 = m.step(&mut rng);
        assert_eq!(r3.started, vec![p]);
        for _ in 0..6 {
            m.step(&mut rng);
        }
        let rec = m.record(p).unwrap();
        assert_eq!(rec.phase, BidPhase::Finished);
        assert_eq!(rec.slots_run, 5);
        assert_eq!(rec.interruptions, 1);
        assert_eq!(m.open_bids(), 0);
    }

    #[test]
    fn report_event_vectors_are_id_sorted() {
        let mut m = market();
        let mut rng = Rng::seed_from_u64(11);
        for i in 0..500u32 {
            m.submit(BidRequest {
                price: Price::new(0.02 + f64::from(i % 97) * 0.0034),
                kind: if i % 3 == 0 {
                    BidKind::OneTime
                } else {
                    BidKind::Persistent
                },
                work: if i % 2 == 0 {
                    WorkModel::Geometric
                } else {
                    WorkModel::FixedSlots(3)
                },
            });
        }
        for _ in 0..40 {
            let rep = m.step(&mut rng);
            for v in [
                &rep.started,
                &rep.interrupted,
                &rep.finished,
                &rep.terminated,
            ] {
                assert!(v.windows(2).all(|w| w[0] < w[1]), "unsorted: {v:?}");
            }
        }
    }

    fn finite_market(capacity: u32, od_cap: u32) -> SpotMarket {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        SpotMarket::with_supply(
            params,
            Hours::from_minutes(5.0),
            Supply::Finite {
                capacity,
                policy: ProviderPolicy::UtilizationTracking { od_cap },
            },
        )
    }

    fn mixed_submissions(m: &mut SpotMarket, n: u32) {
        for i in 0..n {
            m.submit(BidRequest {
                price: Price::new(0.02 + f64::from(i % 97) * 0.0034),
                kind: if i % 3 == 0 {
                    BidKind::OneTime
                } else {
                    BidKind::Persistent
                },
                work: if i % 2 == 0 {
                    WorkModel::Geometric
                } else {
                    WorkModel::FixedSlots(3)
                },
            });
        }
    }

    #[test]
    fn slack_finite_capacity_is_bit_identical_to_unbounded() {
        // With capacity far above demand the clearing price sits below the
        // revenue price, so the posted price — and every downstream event
        // and float — must be Eq. 3's exact output.
        let mut unbounded = market();
        let mut finite = finite_market(100_000, 0);
        let mut r1 = Rng::seed_from_u64(21);
        let mut r2 = Rng::seed_from_u64(21);
        mixed_submissions(&mut unbounded, 500);
        mixed_submissions(&mut finite, 500);
        for _ in 0..40 {
            assert_eq!(unbounded.step(&mut r1), finite.step(&mut r2));
        }
        assert_eq!(unbounded.records(), finite.records());
        assert!(unbounded.provider_report().is_none());
        let rep = finite.provider_report().unwrap();
        assert_eq!(rep.slots, 40);
        assert_eq!(rep.reclaims, 0);
        assert_eq!(finite.provider_slots().len(), 40);
    }

    #[test]
    fn finite_capacity_evicts_lowest_bid_newest_first() {
        // Three bids above the posted price but only two servers: the
        // lowest bid is returned without ever launching.
        let mut m = finite_market(2, 0);
        let mut rng = Rng::seed_from_u64(31);
        let low = m.submit(bid(0.20, BidKind::OneTime, 5));
        let mid = m.submit(bid(0.25, BidKind::Persistent, 5));
        let high = m.submit(bid(0.30, BidKind::Persistent, 5));
        let rep = m.step(&mut rng);
        assert_eq!(rep.started, vec![mid, high]);
        assert_eq!(rep.terminated, vec![low], "one-time victim exits");
        assert!(rep.interrupted.is_empty(), "never ran, so not interrupted");
        assert_eq!(m.record(low).unwrap().phase, BidPhase::Terminated);
        assert_eq!(m.record(low).unwrap().charged, Cost::ZERO);
        let slot = m.provider_slots()[0];
        assert_eq!(slot.spot_running, 2);
        assert_eq!(slot.reclaims, 0, "fresh eviction is not a reclaim");

        // Equal bids: the newest (highest id) loses the tie-break.
        let mut m = finite_market(1, 0);
        let older = m.submit(bid(0.30, BidKind::Persistent, 5));
        let newer = m.submit(bid(0.30, BidKind::Persistent, 5));
        let rep = m.step(&mut rng);
        assert_eq!(rep.started, vec![older]);
        assert_eq!(m.record(newer).unwrap().phase, BidPhase::Pending);
    }

    #[test]
    fn on_demand_admissions_respect_the_policy_limit() {
        let mut m = finite_market(10, 8);
        assert_eq!(m.spot_capacity(), Some(10));
        assert_eq!(m.request_on_demand(5), 5);
        assert_eq!(m.request_on_demand(6), 3, "od_cap 8 caps the pool");
        assert_eq!(m.od_active(), 8);
        assert_eq!(m.spot_capacity(), Some(2));
        m.release_on_demand(4);
        assert_eq!(m.od_active(), 4);
        assert_eq!(m.spot_capacity(), Some(6));
        let mut rng = Rng::seed_from_u64(41);
        m.step(&mut rng);
        let slot = m.provider_slots()[0];
        assert_eq!(slot.od_admitted, 8);
        assert_eq!(slot.od_rejected, 3);
        assert_eq!(slot.od_active, 4);
        assert!(slot.od_revenue > Cost::ZERO);
    }

    #[test]
    fn growing_on_demand_reclaims_running_spot_instances() {
        // Three spot instances fill the machine; two on-demand admissions
        // shrink the spot share to one, so the provider reclaims the two
        // newest of the equal-bid runners.
        let mut m = finite_market(3, 3);
        let mut rng = Rng::seed_from_u64(43);
        let a = m.submit(bid(0.30, BidKind::Persistent, 10));
        let b = m.submit(bid(0.30, BidKind::Persistent, 10));
        let c = m.submit(bid(0.30, BidKind::Persistent, 10));
        let r1 = m.step(&mut rng);
        assert_eq!(r1.started, vec![a, b, c]);

        assert_eq!(m.request_on_demand(2), 2);
        let r2 = m.step(&mut rng);
        assert_eq!(r2.interrupted, vec![b, c]);
        assert!(r2.terminated.is_empty(), "persistent victims park");
        assert_eq!(m.record(a).unwrap().phase, BidPhase::Running);
        assert_eq!(m.record(b).unwrap().interruptions, 1);
        let slot = m.provider_slots()[1];
        assert_eq!(slot.reclaims, 2);
        assert_eq!(slot.spot_running, 1);
        assert_eq!(slot.od_active, 2);

        // Releasing the pool lets the parked victims re-win their auction.
        m.release_on_demand(2);
        let r3 = m.step(&mut rng);
        assert_eq!(r3.started, vec![b, c]);
    }

    #[test]
    fn binding_capacity_raises_the_posted_price() {
        // Same demand, same bids: the capacity-bound market must post the
        // clearing price, which sits above Eq. 3's revenue price.
        let mut unbounded = market();
        let mut finite = finite_market(4, 0);
        let mut r1 = Rng::seed_from_u64(47);
        let mut r2 = Rng::seed_from_u64(47);
        for _ in 0..200 {
            unbounded.submit(bid(0.35, BidKind::Persistent, 3));
            finite.submit(bid(0.35, BidKind::Persistent, 3));
        }
        let free = unbounded.step(&mut r1);
        let bound = finite.step(&mut r2);
        assert!(
            bound.price > free.price,
            "binding capacity: {} vs {}",
            bound.price,
            free.price
        );
        let slot = finite.provider_slots()[0];
        assert_eq!(slot.spot_running, 4);
        assert_eq!(slot.spot_capacity, 4);
        let rep = finite.provider_report().unwrap();
        assert_eq!(rep.capacity, 4);
        assert!(rep.mean_utilization > 0.99, "all servers busy");
        assert_eq!(rep.peak_price, bound.price);
    }
}
