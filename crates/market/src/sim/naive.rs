//! The reference per-bid market: a straight O(n) scan per slot.
//!
//! This is the original [`SpotMarket`](crate::sim::SpotMarket)
//! implementation, retained verbatim as the behavioral oracle for the
//! price-indexed bid-book that replaced it on the hot path. Every slot it
//! walks *every* open bid, branches on the accept/reject comparison, and
//! charges running bids one by one — simple, obviously correct, and O(n)
//! per slot regardless of how few bids actually change state.
//!
//! The bid-book must reproduce this implementation **bit-identically**:
//! same `SlotReport`s (same id order in every event vector), same RNG
//! draw order (one `chance(θ)` per accepted geometric bid, in submission
//! order), and same floating-point accumulation order for `charged`. The
//! randomized equivalence suite (`tests/bidbook_equiv.rs`) holds the two
//! implementations against each other across seeds, bid mixes, and price
//! regimes.

use super::{BidId, BidKind, BidPhase, BidRecord, BidRequest, SlotReport, WorkModel};
use crate::params::MarketParams;
use crate::provider::optimal_price;
use crate::units::{Cost, Hours};
use spotbid_numerics::rng::Rng;

/// A discrete-time spot market with endogenous prices: the O(n)-per-slot
/// reference implementation.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    params: MarketParams,
    slot_len: Hours,
    t: u64,
    records: Vec<BidRecord>,
    /// Indices into `records` of bids still in the system.
    open: Vec<usize>,
    /// Allocation cache for `step`'s survivor list: holds last slot's `open`
    /// vector so stepping a long-lived market does not allocate per slot.
    scratch: Vec<usize>,
    /// The next step is a capacity reclamation (set by
    /// [`reclaim_next_slot`](Self::reclaim_next_slot)).
    reclaim_next: bool,
}

impl SpotMarket {
    /// Creates an empty market.
    pub fn new(params: MarketParams, slot_len: Hours) -> Self {
        SpotMarket {
            params,
            slot_len,
            t: 0,
            records: Vec::new(),
            open: Vec::new(),
            scratch: Vec::new(),
            reclaim_next: false,
        }
    }

    /// The market parameters.
    pub fn params(&self) -> &MarketParams {
        &self.params
    }

    /// Current slot index (number of completed steps).
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Submits a bid; it competes from the next [`step`](Self::step) on.
    pub fn submit(&mut self, request: BidRequest) -> BidId {
        let id = BidId(self.records.len() as u64);
        self.records.push(BidRecord {
            id,
            request,
            phase: BidPhase::Pending,
            submitted_at: self.t,
            slots_run: 0,
            charged: Cost::ZERO,
            interruptions: 0,
            closed_at: None,
        });
        let idx = self.records.len() - 1;
        self.open.push(idx);
        id
    }

    /// Read access to a bid's record.
    pub fn record(&self, id: BidId) -> Option<&BidRecord> {
        self.records.get(id.0 as usize)
    }

    /// All bid records (submitted order).
    pub fn records(&self) -> &[BidRecord] {
        &self.records
    }

    /// Number of bids still pending or running.
    pub fn open_bids(&self) -> usize {
        self.open.len()
    }

    /// Marks the next [`step`](Self::step) as a bid-independent capacity
    /// reclamation (the fault-injection hook): the provider still posts the
    /// slot's price, but takes every instance back instead of auctioning.
    /// All running bids are interrupted — persistent ones return to pending
    /// and re-compete from the following slot, one-time ones exit
    /// unfinished — while pending bids and fresh arrivals simply wait the
    /// outage out. Nothing runs, so nothing is charged and no departure
    /// randomness is drawn.
    pub fn reclaim_next_slot(&mut self) {
        self.reclaim_next = true;
    }

    /// Advances one slot: runs the auction, interrupts/launches instances,
    /// progresses work, and charges running bids.
    pub fn step(&mut self, rng: &mut Rng) -> SlotReport {
        let t = self.t;

        // Demand: every open bid competes (carried-over pending persistent
        // bids, running instances re-asserting their bids, and new
        // arrivals) — the L(t) of Eq. 4.
        let demand = self.open.len();
        let price = optimal_price(&self.params, demand as f64);

        let mut report = SlotReport {
            t,
            demand,
            price,
            started: Vec::new(),
            interrupted: Vec::new(),
            finished: Vec::new(),
            terminated: Vec::new(),
        };

        let mut still_open = std::mem::take(&mut self.scratch);
        still_open.clear();
        still_open.reserve(self.open.len());
        if std::mem::take(&mut self.reclaim_next) {
            // Capacity reclamation: no auction, no charges, no draws. Every
            // running bid is interrupted; everything else waits in place.
            for &idx in &self.open {
                let was_running = self.records[idx].phase == BidPhase::Running;
                let rec = &mut self.records[idx];
                if was_running {
                    rec.interruptions += 1;
                    report.interrupted.push(rec.id);
                    match rec.request.kind {
                        BidKind::OneTime => {
                            rec.phase = BidPhase::Terminated;
                            rec.closed_at = Some(t);
                            report.terminated.push(rec.id);
                        }
                        BidKind::Persistent => {
                            rec.phase = BidPhase::Pending;
                            still_open.push(idx);
                        }
                    }
                } else {
                    still_open.push(idx);
                }
            }
            self.scratch = std::mem::replace(&mut self.open, still_open);
            self.t += 1;
            return report;
        }
        for &idx in &self.open {
            let accepted = self.records[idx].request.price >= price;
            let was_running = self.records[idx].phase == BidPhase::Running;
            let rec = &mut self.records[idx];
            if accepted {
                if !was_running {
                    rec.phase = BidPhase::Running;
                    report.started.push(rec.id);
                }
                // Run for this slot: charge at the spot price.
                rec.slots_run += 1;
                rec.charged += price * self.slot_len;
                let done = match rec.request.work {
                    WorkModel::FixedSlots(n) => rec.slots_run >= n,
                    WorkModel::Geometric => rng.chance(self.params.theta),
                };
                if done {
                    rec.phase = BidPhase::Finished;
                    rec.closed_at = Some(t);
                    report.finished.push(rec.id);
                } else {
                    still_open.push(idx);
                }
            } else {
                // Outbid.
                match rec.request.kind {
                    BidKind::OneTime => {
                        // Running one-time: terminated mid-job. New one-time
                        // below the spot price: rejected. Either way it
                        // leaves the system (§3.2).
                        rec.phase = BidPhase::Terminated;
                        rec.closed_at = Some(t);
                        if was_running {
                            rec.interruptions += 1;
                            report.interrupted.push(rec.id);
                        }
                        report.terminated.push(rec.id);
                    }
                    BidKind::Persistent => {
                        if was_running {
                            rec.interruptions += 1;
                            report.interrupted.push(rec.id);
                        }
                        rec.phase = BidPhase::Pending;
                        still_open.push(idx);
                    }
                }
            }
        }
        // Swap the survivor list in and keep the old vector as next slot's
        // scratch, so steady-state stepping reuses both allocations.
        self.scratch = std::mem::replace(&mut self.open, still_open);
        self.t += 1;
        report
    }

    /// Runs `n` slots, returning every report.
    pub fn run(&mut self, n: usize, rng: &mut Rng) -> Vec<SlotReport> {
        (0..n).map(|_| self.step(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Price;

    #[test]
    fn naive_lone_high_bid_runs_to_completion() {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        let mut m = SpotMarket::new(params, Hours::from_minutes(5.0));
        let mut rng = Rng::seed_from_u64(1);
        let id = m.submit(BidRequest {
            price: Price::new(0.35),
            kind: BidKind::OneTime,
            work: WorkModel::FixedSlots(3),
        });
        let reports = m.run(5, &mut rng);
        let rec = m.record(id).unwrap();
        assert_eq!(rec.phase, BidPhase::Finished);
        assert_eq!(rec.slots_run, 3);
        assert_eq!(reports[2].finished, vec![id]);
        assert_eq!(m.open_bids(), 0);
    }
}
