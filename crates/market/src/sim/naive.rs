//! The reference per-bid market: a straight O(n) scan per slot.
//!
//! This is the original [`SpotMarket`](crate::sim::SpotMarket)
//! implementation, retained verbatim as the behavioral oracle for the
//! price-indexed bid-book that replaced it on the hot path. Every slot it
//! walks *every* open bid, branches on the accept/reject comparison, and
//! charges running bids one by one — simple, obviously correct, and O(n)
//! per slot regardless of how few bids actually change state.
//!
//! The bid-book must reproduce this implementation **bit-identically**:
//! same `SlotReport`s (same id order in every event vector), same RNG
//! draw order (one `chance(θ)` per accepted geometric bid, in submission
//! order), and same floating-point accumulation order for `charged`. The
//! randomized equivalence suite (`tests/bidbook_equiv.rs`) holds the two
//! implementations against each other across seeds, bid mixes, and price
//! regimes.

use super::{
    aggregate_provider, victim_order, BidId, BidKind, BidPhase, BidRecord, BidRequest,
    ProviderReport, ProviderSlot, SlotReport, Supply, WorkModel,
};
use crate::params::MarketParams;
use crate::provider::{clearing_price, optimal_price};
use crate::units::{Cost, Hours};
use spotbid_numerics::rng::Rng;

/// A discrete-time spot market with endogenous prices: the O(n)-per-slot
/// reference implementation.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    params: MarketParams,
    slot_len: Hours,
    t: u64,
    records: Vec<BidRecord>,
    /// Indices into `records` of bids still in the system.
    open: Vec<usize>,
    /// Mirror of the bid-book's parked set, as a per-bid flag: true while
    /// a bid sits outside the resident invariants awaiting its individual
    /// re-auction (displaced by a reclamation outage or a capacity
    /// eviction, or submitted during an outage). Tracked so the per-slot
    /// provider telemetry (`parked_restarts`) matches the bid-book
    /// bit-for-bit.
    parked: Vec<bool>,
    /// Allocation cache for `step`'s survivor list: holds last slot's `open`
    /// vector so stepping a long-lived market does not allocate per slot.
    scratch: Vec<usize>,
    /// The next step is a capacity reclamation (set by
    /// [`reclaim_next_slot`](Self::reclaim_next_slot)).
    reclaim_next: bool,
    /// The supply model (unbounded Eq. 3 or a finite provider).
    supply: Supply,
    /// On-demand instances currently holding servers (finite supply only).
    od_active: u32,
    /// On-demand admissions since the last slot (drained into the log).
    od_admit_pending: u32,
    /// On-demand rejections since the last slot (drained into the log).
    od_reject_pending: u32,
    /// Per-slot provider telemetry (finite supply only).
    provider_log: Vec<ProviderSlot>,
}

impl SpotMarket {
    /// Creates an empty market with unbounded supply.
    pub fn new(params: MarketParams, slot_len: Hours) -> Self {
        Self::with_supply(params, slot_len, Supply::Unbounded)
    }

    /// Creates an empty market under the given supply model.
    pub fn with_supply(params: MarketParams, slot_len: Hours, supply: Supply) -> Self {
        SpotMarket {
            params,
            slot_len,
            t: 0,
            records: Vec::new(),
            open: Vec::new(),
            parked: Vec::new(),
            scratch: Vec::new(),
            reclaim_next: false,
            supply,
            od_active: 0,
            od_admit_pending: 0,
            od_reject_pending: 0,
            provider_log: Vec::new(),
        }
    }

    /// The supply model this market prices against.
    pub fn supply(&self) -> Supply {
        self.supply
    }

    /// On-demand instances currently holding servers.
    pub fn od_active(&self) -> u32 {
        self.od_active
    }

    /// Servers currently available to the spot auction (`None` when
    /// supply is unbounded).
    pub fn spot_capacity(&self) -> Option<u32> {
        match self.supply {
            Supply::Unbounded => None,
            Supply::Finite { capacity, policy } => {
                Some(policy.spot_capacity(capacity, self.od_active))
            }
        }
    }

    /// Requests `n` on-demand instances; returns how many were admitted.
    pub fn request_on_demand(&mut self, n: u32) -> u32 {
        match self.supply {
            Supply::Unbounded => n,
            Supply::Finite { capacity, policy } => {
                let limit = policy.od_limit(capacity);
                let admitted = n.min(limit.saturating_sub(self.od_active));
                self.od_active += admitted;
                self.od_admit_pending += admitted;
                self.od_reject_pending += n - admitted;
                admitted
            }
        }
    }

    /// Releases `n` on-demand instances back to the pool.
    pub fn release_on_demand(&mut self, n: u32) {
        self.od_active = self.od_active.saturating_sub(n);
    }

    /// Per-slot provider telemetry (empty under unbounded supply).
    pub fn provider_slots(&self) -> &[ProviderSlot] {
        &self.provider_log
    }

    /// Aggregated provider report (`None` under unbounded supply).
    pub fn provider_report(&self) -> Option<ProviderReport> {
        match self.supply {
            Supply::Unbounded => None,
            Supply::Finite { capacity, .. } => {
                Some(aggregate_provider(capacity, &self.provider_log))
            }
        }
    }

    /// The market parameters.
    pub fn params(&self) -> &MarketParams {
        &self.params
    }

    /// Current slot index (number of completed steps).
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Submits a bid; it competes from the next [`step`](Self::step) on.
    pub fn submit(&mut self, request: BidRequest) -> BidId {
        let id = BidId(self.records.len() as u64);
        self.records.push(BidRecord {
            id,
            request,
            phase: BidPhase::Pending,
            submitted_at: self.t,
            slots_run: 0,
            charged: Cost::ZERO,
            interruptions: 0,
            closed_at: None,
        });
        let idx = self.records.len() - 1;
        self.open.push(idx);
        self.parked.push(false);
        id
    }

    /// Read access to a bid's record.
    pub fn record(&self, id: BidId) -> Option<&BidRecord> {
        self.records.get(id.0 as usize)
    }

    /// All bid records (submitted order).
    pub fn records(&self) -> &[BidRecord] {
        &self.records
    }

    /// Number of bids still pending or running.
    pub fn open_bids(&self) -> usize {
        self.open.len()
    }

    /// Marks the next [`step`](Self::step) as a bid-independent capacity
    /// reclamation (the fault-injection hook): the provider still posts the
    /// slot's price, but takes every instance back instead of auctioning.
    /// All running bids are interrupted — persistent ones return to pending
    /// and re-compete from the following slot, one-time ones exit
    /// unfinished — while pending bids and fresh arrivals simply wait the
    /// outage out. Nothing runs, so nothing is charged and no departure
    /// randomness is drawn.
    pub fn reclaim_next_slot(&mut self) {
        self.reclaim_next = true;
    }

    /// Advances one slot: runs the auction, interrupts/launches instances,
    /// progresses work, and charges running bids.
    pub fn step(&mut self, rng: &mut Rng) -> SlotReport {
        let t = self.t;

        // Demand: every open bid competes (carried-over pending persistent
        // bids, running instances re-asserting their bids, and new
        // arrivals) — the L(t) of Eq. 4.
        let demand = self.open.len();
        let price = match self.supply {
            Supply::Unbounded => optimal_price(&self.params, demand as f64),
            Supply::Finite { capacity, policy } => {
                // Spot clears what on-demand has not reserved. With slack
                // capacity the clearing price sits below the revenue price
                // and `max` reproduces Eq. 3's exact float.
                let cap = policy.spot_capacity(capacity, self.od_active);
                let revenue = optimal_price(&self.params, demand as f64);
                let clearing = clearing_price(&self.params, demand as f64, f64::from(cap));
                if clearing > revenue {
                    clearing
                } else {
                    revenue
                }
            }
        };

        let mut report = SlotReport {
            t,
            demand,
            price,
            started: Vec::new(),
            interrupted: Vec::new(),
            finished: Vec::new(),
            terminated: Vec::new(),
            evicted: Vec::new(),
        };

        let mut still_open = std::mem::take(&mut self.scratch);
        still_open.clear();
        still_open.reserve(self.open.len());
        if std::mem::take(&mut self.reclaim_next) {
            // Capacity reclamation: no auction, no charges, no draws. Every
            // running bid is interrupted; everything else waits in place.
            for &idx in &self.open {
                let was_running = self.records[idx].phase == BidPhase::Running;
                let rec = &mut self.records[idx];
                if was_running {
                    rec.interruptions += 1;
                    report.interrupted.push(rec.id);
                    match rec.request.kind {
                        BidKind::OneTime => {
                            rec.phase = BidPhase::Terminated;
                            rec.closed_at = Some(t);
                            report.terminated.push(rec.id);
                        }
                        BidKind::Persistent => {
                            rec.phase = BidPhase::Pending;
                            // Displaced by the outage: waits outside the
                            // resident invariants for its re-auction.
                            self.parked[idx] = true;
                            still_open.push(idx);
                        }
                    }
                } else {
                    // Arrivals during the outage park unconditionally; so
                    // do pending bids the skipped auction would have
                    // started (bid at or above the posted price).
                    if rec.submitted_at == t || rec.request.price >= price {
                        self.parked[idx] = true;
                    }
                    still_open.push(idx);
                }
            }
            self.scratch = std::mem::replace(&mut self.open, still_open);
            if let Supply::Finite { capacity, policy } = self.supply {
                // An outage slot runs nothing: the provider logs an idle
                // spot side so the telemetry stays one entry per slot.
                self.provider_log.push(ProviderSlot {
                    t,
                    price,
                    spot_capacity: policy.spot_capacity(capacity, self.od_active),
                    spot_running: 0,
                    od_active: self.od_active,
                    reclaims: 0,
                    fresh_evictions: 0,
                    parked_restarts: 0,
                    od_admitted: std::mem::take(&mut self.od_admit_pending),
                    od_rejected: std::mem::take(&mut self.od_reject_pending),
                    spot_revenue: Cost::ZERO,
                    od_revenue: (self.params.pi_bar * self.slot_len) * f64::from(self.od_active),
                });
            }
            self.t += 1;
            return report;
        }
        // Finite supply: pick the provider's victims before the scan, so
        // the charge/draw pass below can skip them — the bid-book evicts
        // between the auction and the launch, so victims never charge,
        // never draw departure randomness, and never emit a start event.
        // Victims are the lowest-bid accepted bids, newest first among
        // equal bids (`victim_order`, the §5i reclaim ordering contract).
        let mut victims: Vec<usize> = Vec::new();
        let mut spot_cap = u32::MAX;
        if let Supply::Finite { capacity, policy } = self.supply {
            spot_cap = policy.spot_capacity(capacity, self.od_active);
            let mut accepted: Vec<usize> = self
                .open
                .iter()
                .copied()
                .filter(|&idx| self.records[idx].request.price >= price)
                .collect();
            if accepted.len() > spot_cap as usize {
                let k = accepted.len() - spot_cap as usize;
                accepted.sort_unstable_by(|&a, &b| {
                    victim_order(
                        self.records[a].request.price.as_f64(),
                        a as u64,
                        self.records[b].request.price.as_f64(),
                        b as u64,
                    )
                });
                victims = accepted[..k].to_vec();
                victims.sort_unstable();
                // The capacity delta: every victim this slot, id order.
                report
                    .evicted
                    .extend(victims.iter().map(|&idx| self.records[idx].id));
            }
        }
        let mut spot_running = 0u32;
        let mut reclaims = 0u32;
        let mut fresh_evictions = 0u32;
        let mut parked_restarts = 0u32;
        for &idx in &self.open {
            let accepted = self.records[idx].request.price >= price;
            let was_running = self.records[idx].phase == BidPhase::Running;
            let evicted = accepted && !victims.is_empty() && victims.binary_search(&idx).is_ok();
            let was_parked = std::mem::take(&mut self.parked[idx]);
            let rec = &mut self.records[idx];
            if accepted && evicted {
                // Provider eviction: capacity is binding and this bid lost
                // the reclaim ordering. A running victim is interrupted
                // like a price crossing; a would-be starter is quietly
                // returned without ever launching.
                if was_running {
                    reclaims += 1;
                    rec.interruptions += 1;
                    report.interrupted.push(rec.id);
                    match rec.request.kind {
                        BidKind::OneTime => {
                            rec.phase = BidPhase::Terminated;
                            rec.closed_at = Some(t);
                            report.terminated.push(rec.id);
                        }
                        BidKind::Persistent => {
                            rec.phase = BidPhase::Pending;
                            // Parks for an individual re-auction, like the
                            // bid-book's capacity-evicted runners.
                            self.parked[idx] = true;
                            still_open.push(idx);
                        }
                    }
                } else {
                    fresh_evictions += 1;
                    match rec.request.kind {
                        BidKind::OneTime => {
                            rec.phase = BidPhase::Terminated;
                            rec.closed_at = Some(t);
                            report.terminated.push(rec.id);
                        }
                        BidKind::Persistent => {
                            self.parked[idx] = true;
                            still_open.push(idx);
                        }
                    }
                }
            } else if accepted {
                if !was_running {
                    rec.phase = BidPhase::Running;
                    report.started.push(rec.id);
                    if was_parked {
                        parked_restarts += 1;
                    }
                }
                spot_running += 1;
                // Run for this slot: charge at the spot price.
                rec.slots_run += 1;
                rec.charged += price * self.slot_len;
                let done = match rec.request.work {
                    WorkModel::FixedSlots(n) => rec.slots_run >= n,
                    WorkModel::Geometric => rng.chance(self.params.theta),
                };
                if done {
                    rec.phase = BidPhase::Finished;
                    rec.closed_at = Some(t);
                    report.finished.push(rec.id);
                } else {
                    still_open.push(idx);
                }
            } else {
                // Outbid.
                match rec.request.kind {
                    BidKind::OneTime => {
                        // Running one-time: terminated mid-job. New one-time
                        // below the spot price: rejected. Either way it
                        // leaves the system (§3.2).
                        rec.phase = BidPhase::Terminated;
                        rec.closed_at = Some(t);
                        if was_running {
                            rec.interruptions += 1;
                            report.interrupted.push(rec.id);
                        }
                        report.terminated.push(rec.id);
                    }
                    BidKind::Persistent => {
                        if was_running {
                            rec.interruptions += 1;
                            report.interrupted.push(rec.id);
                        }
                        rec.phase = BidPhase::Pending;
                        still_open.push(idx);
                    }
                }
            }
        }
        // Swap the survivor list in and keep the old vector as next slot's
        // scratch, so steady-state stepping reuses both allocations.
        self.scratch = std::mem::replace(&mut self.open, still_open);
        if let Supply::Finite { .. } = self.supply {
            let spot_revenue = (price * self.slot_len) * f64::from(spot_running);
            let od_revenue = (self.params.pi_bar * self.slot_len) * f64::from(self.od_active);
            self.provider_log.push(ProviderSlot {
                t,
                price,
                spot_capacity: spot_cap,
                spot_running,
                od_active: self.od_active,
                reclaims,
                fresh_evictions,
                parked_restarts,
                od_admitted: std::mem::take(&mut self.od_admit_pending),
                od_rejected: std::mem::take(&mut self.od_reject_pending),
                spot_revenue,
                od_revenue,
            });
        }
        self.t += 1;
        report
    }

    /// Runs `n` slots, returning every report.
    pub fn run(&mut self, n: usize, rng: &mut Rng) -> Vec<SlotReport> {
        (0..n).map(|_| self.step(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Price;

    #[test]
    fn naive_lone_high_bid_runs_to_completion() {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        let mut m = SpotMarket::new(params, Hours::from_minutes(5.0));
        let mut rng = Rng::seed_from_u64(1);
        let id = m.submit(BidRequest {
            price: Price::new(0.35),
            kind: BidKind::OneTime,
            work: WorkModel::FixedSlots(3),
        });
        let reports = m.run(5, &mut rng);
        let rec = m.record(id).unwrap();
        assert_eq!(rec.phase, BidPhase::Finished);
        assert_eq!(rec.slots_run, 3);
        assert_eq!(reports[2].finished, vec![id]);
        assert_eq!(m.open_bids(), 0);
    }
}
