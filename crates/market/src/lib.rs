//! # spotbid-market
//!
//! The cloud provider's side of *How to Bid the Cloud* (SIGCOMM 2015,
//! Section 4): how spot prices are set, how the bid queue evolves, why it
//! is stable, and what spot-price distribution emerges at equilibrium —
//! plus a per-bid spot-market simulator implementing EC2's spot rules.
//!
//! ## Model summary
//!
//! Each slot the provider chooses the spot price to maximize revenue plus a
//! concave utilization bonus (Eq. 1); under uniformly distributed bids the
//! optimum has the closed form of Eq. 3 ([`provider::optimal_price`]).
//! Unsatisfied persistent bids re-enter the queue (Eq. 4,
//! [`queue::QueueSim`]); Proposition 1 shows the queue is Lyapunov-stable
//! ([`lyapunov`]); Proposition 2 identifies the equilibrium where the spot
//! price becomes the i.i.d. transform `π = h(Λ)` of the arrival process,
//! and Proposition 3 derives the resulting spot-price PDF
//! ([`equilibrium`]).
//!
//! ## Example
//!
//! ```
//! use spotbid_market::params::MarketParams;
//! use spotbid_market::provider::optimal_price;
//! use spotbid_market::units::Price;
//!
//! let m = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
//! // More demand → higher optimal spot price, capped at the on-demand price.
//! assert!(optimal_price(&m, 100.0) > optimal_price(&m, 1.0));
//! assert!(optimal_price(&m, 1e12) <= m.pi_bar);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod equilibrium;
pub mod lyapunov;
pub mod multi;
pub mod params;
pub mod provider;
pub mod queue;
pub mod sim;
pub mod units;

pub use multi::{CorrelatedArrivals, MarketSet, MarketSpec};
pub use params::MarketParams;
pub use provider::ProviderPolicy;
pub use sim::{ProviderReport, ProviderSlot, Supply};
pub use units::{Cost, Hours, Price};

use std::fmt;

/// Errors produced by the market crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketError {
    /// Market parameters violate their invariants.
    InvalidParams {
        /// Human-readable description of the violated invariant.
        what: String,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::InvalidParams { what } => write!(f, "invalid market parameters: {what}"),
        }
    }
}

impl std::error::Error for MarketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = MarketError::InvalidParams {
            what: "beta must be >= 0".into(),
        };
        assert!(e.to_string().contains("beta"));
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&e);
    }
}
