//! Domain units: time, prices, and money.
//!
//! The paper measures prices in $/instance-hour and times in hours
//! (Table 1's conventions). These thin newtypes keep the two from being
//! mixed up at API boundaries — `Price × Hours = Cost` is the only way to
//! produce money — while staying `Copy` and arithmetic-friendly inside
//! numeric kernels via [`Price::as_f64`] etc.

use spotbid_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A duration (or instant on a simulation clock), in hours.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hours(f64);

impl Hours {
    /// Zero duration.
    pub const ZERO: Hours = Hours(0.0);

    /// Const constructor (for constants in downstream crates).
    pub const fn new_const(h: f64) -> Self {
        Hours(h)
    }

    /// Creates a duration from a raw hour count.
    pub fn new(h: f64) -> Self {
        Hours(h)
    }

    /// Creates a duration from seconds.
    pub fn from_secs(s: f64) -> Self {
        Hours(s / 3600.0)
    }

    /// Creates a duration from minutes.
    pub fn from_minutes(m: f64) -> Self {
        Hours(m / 60.0)
    }

    /// The raw value in hours.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 * 3600.0
    }

    /// The value in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 * 60.0
    }

    /// True when finite and `>= 0`.
    pub fn is_valid_duration(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Component-wise maximum.
    pub fn max(self, other: Hours) -> Hours {
        Hours(self.0.max(other.0))
    }

    /// Component-wise minimum.
    pub fn min(self, other: Hours) -> Hours {
        Hours(self.0.min(other.0))
    }
}

impl Add for Hours {
    type Output = Hours;
    fn add(self, rhs: Hours) -> Hours {
        Hours(self.0 + rhs.0)
    }
}

impl AddAssign for Hours {
    fn add_assign(&mut self, rhs: Hours) {
        self.0 += rhs.0;
    }
}

impl Sub for Hours {
    type Output = Hours;
    fn sub(self, rhs: Hours) -> Hours {
        Hours(self.0 - rhs.0)
    }
}

impl SubAssign for Hours {
    fn sub_assign(&mut self, rhs: Hours) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Hours {
    type Output = Hours;
    fn mul(self, rhs: f64) -> Hours {
        Hours(self.0 * rhs)
    }
}

impl Div<f64> for Hours {
    type Output = Hours;
    fn div(self, rhs: f64) -> Hours {
        Hours(self.0 / rhs)
    }
}

/// Ratio of two durations (e.g. `t_s / t_k` = slots per job).
impl Div<Hours> for Hours {
    type Output = f64;
    fn div(self, rhs: Hours) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Hours {
    fn sum<I: Iterator<Item = Hours>>(iter: I) -> Hours {
        Hours(iter.map(|h| h.0).sum())
    }
}

impl fmt::Display for Hours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() < 1.0 / 60.0 {
            write!(f, "{:.1} s", self.as_secs())
        } else if self.0.abs() < 1.0 {
            write!(f, "{:.1} min", self.as_minutes())
        } else {
            write!(f, "{:.3} h", self.0)
        }
    }
}

/// A price in dollars per instance-hour.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Price(f64);

impl Price {
    /// Zero price.
    pub const ZERO: Price = Price(0.0);

    /// Creates a price from a raw $/hour value.
    pub fn new(p: f64) -> Self {
        Price(p)
    }

    /// The raw $/hour value.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// True when finite and `>= 0`.
    pub fn is_valid_price(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Component-wise maximum.
    pub fn max(self, other: Price) -> Price {
        Price(self.0.max(other.0))
    }

    /// Component-wise minimum.
    pub fn min(self, other: Price) -> Price {
        Price(self.0.min(other.0))
    }

    /// Clamps into `[lo, hi]`.
    pub fn clamp(self, lo: Price, hi: Price) -> Price {
        Price(self.0.clamp(lo.0, hi.0))
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Price) -> Price {
        Price(self.0 + rhs.0)
    }
}

impl Sub for Price {
    type Output = Price;
    fn sub(self, rhs: Price) -> Price {
        Price(self.0 - rhs.0)
    }
}

impl Mul<f64> for Price {
    type Output = Price;
    fn mul(self, rhs: f64) -> Price {
        Price(self.0 * rhs)
    }
}

/// Charging: price times duration is money.
impl Mul<Hours> for Price {
    type Output = Cost;
    fn mul(self, rhs: Hours) -> Cost {
        Cost(self.0 * rhs.as_f64())
    }
}

/// Ratio of two prices (dimensionless, e.g. savings fractions).
impl Div<Price> for Price {
    type Output = f64;
    fn div(self, rhs: Price) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}/h", self.0)
    }
}

/// An amount of money in dollars.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cost(f64);

impl Cost {
    /// Zero dollars.
    pub const ZERO: Cost = Cost(0.0);

    /// Creates a cost from a raw dollar value.
    pub fn new(c: f64) -> Self {
        Cost(c)
    }

    /// The raw dollar value.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Component-wise maximum.
    pub fn max(self, other: Cost) -> Cost {
        Cost(self.0.max(other.0))
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    fn sub(self, rhs: Cost) -> Cost {
        Cost(self.0 - rhs.0)
    }
}

impl Neg for Cost {
    type Output = Cost;
    fn neg(self) -> Cost {
        Cost(-self.0)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: f64) -> Cost {
        Cost(self.0 * rhs)
    }
}

/// Ratio of two costs (dimensionless, e.g. "spot cost is 10% of on-demand").
impl Div<Cost> for Cost {
    type Output = f64;
    fn div(self, rhs: Cost) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        Cost(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}", self.0)
    }
}

// All three units serialize transparently as bare numbers, matching the
// wire format of the original `#[serde(transparent)]` derives.
macro_rules! transparent_json {
    ($($t:ident),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(self.0)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                Ok($t(v.as_num()?))
            }
        }
    )*};
}
transparent_json!(Hours, Price, Cost);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_conversions() {
        assert_eq!(Hours::from_secs(3600.0).as_f64(), 1.0);
        assert_eq!(Hours::from_minutes(30.0).as_f64(), 0.5);
        assert_eq!(Hours::new(2.0).as_secs(), 7200.0);
        assert_eq!(Hours::new(0.25).as_minutes(), 15.0);
    }

    #[test]
    fn hours_arithmetic() {
        let a = Hours::new(1.5);
        let b = Hours::new(0.5);
        assert_eq!((a + b).as_f64(), 2.0);
        assert_eq!((a - b).as_f64(), 1.0);
        assert_eq!((a * 2.0).as_f64(), 3.0);
        assert_eq!((a / 3.0).as_f64(), 0.5);
        assert_eq!(a / b, 3.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_f64(), 2.0);
        c -= b;
        assert_eq!(c.as_f64(), 1.5);
        let total: Hours = [a, b, b].into_iter().sum();
        assert_eq!(total.as_f64(), 2.5);
    }

    #[test]
    fn hours_validity_and_ordering() {
        assert!(Hours::new(0.0).is_valid_duration());
        assert!(!Hours::new(-1.0).is_valid_duration());
        assert!(!Hours::new(f64::NAN).is_valid_duration());
        assert!(Hours::new(1.0) < Hours::new(2.0));
        assert_eq!(Hours::new(1.0).max(Hours::new(2.0)).as_f64(), 2.0);
        assert_eq!(Hours::new(1.0).min(Hours::new(2.0)).as_f64(), 1.0);
    }

    #[test]
    fn hours_display_scales() {
        assert_eq!(Hours::from_secs(30.0).to_string(), "30.0 s");
        assert_eq!(Hours::from_minutes(5.0).to_string(), "5.0 min");
        assert_eq!(Hours::new(1.5).to_string(), "1.500 h");
    }

    #[test]
    fn price_times_hours_is_cost() {
        let c = Price::new(0.35) * Hours::new(2.0);
        assert!((c.as_f64() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn price_arithmetic_and_clamp() {
        let p = Price::new(0.10);
        assert!(((p + Price::new(0.05)).as_f64() - 0.15).abs() < 1e-12);
        assert!(((p - Price::new(0.04)).as_f64() - 0.06).abs() < 1e-12);
        assert!(((p * 3.0).as_f64() - 0.30).abs() < 1e-12);
        assert_eq!(Price::new(0.5) / Price::new(0.25), 2.0);
        assert_eq!(
            Price::new(0.9).clamp(Price::new(0.1), Price::new(0.5)),
            Price::new(0.5)
        );
        assert!(Price::new(0.1).is_valid_price());
        assert!(!Price::new(-0.1).is_valid_price());
    }

    #[test]
    fn cost_accumulation() {
        let mut bill = Cost::ZERO;
        bill += Price::new(0.05) * Hours::from_minutes(5.0);
        bill += Price::new(0.07) * Hours::from_minutes(5.0);
        assert!((bill.as_f64() - 0.01).abs() < 1e-12);
        let total: Cost = [Cost::new(1.0), Cost::new(2.5)].into_iter().sum();
        assert_eq!(total.as_f64(), 3.5);
        assert_eq!((-Cost::new(2.0)).as_f64(), -2.0);
        assert_eq!((Cost::new(3.0) - Cost::new(1.0)).as_f64(), 2.0);
        assert_eq!((Cost::new(3.0) * 2.0).as_f64(), 6.0);
        assert_eq!(Cost::new(1.0) / Cost::new(4.0), 0.25);
        assert_eq!(Cost::new(1.0).max(Cost::new(2.0)), Cost::new(2.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Price::new(0.0323).to_string(), "$0.0323/h");
        assert_eq!(Cost::new(1.23456).to_string(), "$1.2346");
    }

    #[test]
    fn units_serialize_as_bare_numbers() {
        assert_eq!(spotbid_json::encode(&Price::new(0.35)), "0.35");
        assert_eq!(spotbid_json::encode(&Hours::new(1.5)), "1.5");
        assert_eq!(spotbid_json::encode(&Cost::new(0.07)), "0.07");
        let p: Price = spotbid_json::decode("0.35").unwrap();
        assert_eq!(p, Price::new(0.35));
    }
}
