//! Provider-side market parameters.

use crate::units::Price;
use crate::MarketError;
use spotbid_json::{FromJson, Json, JsonError, ToJson};

/// Parameters of the provider's spot-price optimization (§4.1).
///
/// | field    | paper symbol | meaning |
/// |----------|--------------|---------|
/// | `pi_bar` | `π̄`          | on-demand price: the cap on the spot price |
/// | `pi_min` | `π`          | minimum spot price: the provider's marginal cost |
/// | `beta`   | `β`          | weight of the capacity-utilization term `β log(1+N)` |
/// | `theta`  | `θ`          | fraction of running instances that finish per slot |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketParams {
    /// On-demand price `π̄` — the maximum spot price.
    pub pi_bar: Price,
    /// Minimum spot price `π` — the provider's marginal cost of a spot
    /// instance.
    pub pi_min: Price,
    /// Utilization weight `β ≥ 0` in the provider objective.
    pub beta: f64,
    /// Per-slot completion fraction `θ ∈ (0, 1]` in the queue dynamics.
    pub theta: f64,
}

impl MarketParams {
    /// Creates and validates market parameters.
    ///
    /// # Errors
    ///
    /// [`MarketError::InvalidParams`] when any field is non-finite,
    /// `pi_min` is not in `[0, pi_bar)`, `beta < 0`, or `theta` is outside
    /// `(0, 1]`.
    pub fn new(pi_bar: Price, pi_min: Price, beta: f64, theta: f64) -> Result<Self, MarketError> {
        let p = MarketParams {
            pi_bar,
            pi_min,
            beta,
            theta,
        };
        p.validate()?;
        Ok(p)
    }

    /// Validates the invariants listed on [`MarketParams::new`].
    pub fn validate(&self) -> Result<(), MarketError> {
        if !self.pi_bar.is_valid_price() || self.pi_bar <= Price::ZERO {
            return Err(MarketError::InvalidParams {
                what: "pi_bar must be a finite positive price".into(),
            });
        }
        if !self.pi_min.is_valid_price() || self.pi_min >= self.pi_bar {
            return Err(MarketError::InvalidParams {
                what: "pi_min must satisfy 0 <= pi_min < pi_bar".into(),
            });
        }
        if !self.beta.is_finite() || self.beta < 0.0 {
            return Err(MarketError::InvalidParams {
                what: "beta must be finite and >= 0".into(),
            });
        }
        if !self.theta.is_finite() || self.theta <= 0.0 || self.theta > 1.0 {
            return Err(MarketError::InvalidParams {
                what: "theta must lie in (0, 1]".into(),
            });
        }
        Ok(())
    }

    /// Price spread `π̄ − π`, the denominator of the accepted-bid fraction.
    pub fn spread(&self) -> Price {
        self.pi_bar - self.pi_min
    }

    /// The paper's standing assumption `β ≤ (L+1)(π̄ − 2π)`, under which
    /// the optimal spot price stays strictly above `π` (see the discussion
    /// after Eq. 3).
    pub fn beta_assumption_holds(&self, l: f64) -> bool {
        self.beta <= (l + 1.0) * (self.pi_bar.as_f64() - 2.0 * self.pi_min.as_f64())
    }
}

impl ToJson for MarketParams {
    fn to_json(&self) -> Json {
        Json::Obj(
            [
                ("pi_bar".to_owned(), self.pi_bar.to_json()),
                ("pi_min".to_owned(), self.pi_min.to_json()),
                ("beta".to_owned(), self.beta.to_json()),
                ("theta".to_owned(), self.theta.to_json()),
            ]
            .into(),
        )
    }
}

impl FromJson for MarketParams {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MarketParams {
            pi_bar: Price::from_json(v.field("pi_bar")?)?,
            pi_min: Price::from_json(v.field("pi_min")?)?,
            beta: f64::from_json(v.field("beta")?)?,
            theta: f64::from_json(v.field("theta")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pi_bar: f64, pi_min: f64, beta: f64, theta: f64) -> Result<MarketParams, MarketError> {
        MarketParams::new(Price::new(pi_bar), Price::new(pi_min), beta, theta)
    }

    #[test]
    fn accepts_paper_like_params() {
        // Figure 3 caption scale: β = 0.3..1.2, θ = 0.02.
        assert!(p(0.35, 0.03, 0.3, 0.02).is_ok());
        assert!(p(0.28, 0.0, 0.6, 0.02).is_ok());
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(p(0.0, 0.0, 0.1, 0.02).is_err()); // zero on-demand
        assert!(p(-1.0, 0.0, 0.1, 0.02).is_err());
        assert!(p(0.35, 0.35, 0.1, 0.02).is_err()); // pi_min == pi_bar
        assert!(p(0.35, 0.5, 0.1, 0.02).is_err()); // pi_min > pi_bar
        assert!(p(0.35, -0.1, 0.1, 0.02).is_err());
        assert!(p(0.35, 0.03, -0.1, 0.02).is_err()); // negative beta
        assert!(p(0.35, 0.03, f64::NAN, 0.02).is_err());
        assert!(p(0.35, 0.03, 0.1, 0.0).is_err()); // theta = 0
        assert!(p(0.35, 0.03, 0.1, 1.5).is_err()); // theta > 1
    }

    #[test]
    fn spread_and_beta_assumption() {
        let m = p(0.35, 0.05, 0.2, 0.02).unwrap();
        assert!((m.spread().as_f64() - 0.30).abs() < 1e-12);
        // (L+1)(pi_bar - 2 pi_min) = (L+1) * 0.25.
        assert!(m.beta_assumption_holds(0.0)); // 0.2 <= 0.25
        let tight = p(0.35, 0.05, 0.3, 0.02).unwrap();
        assert!(!tight.beta_assumption_holds(0.0)); // 0.3 > 0.25
        assert!(tight.beta_assumption_holds(1.0)); // 0.3 <= 0.5
    }

    #[test]
    fn json_roundtrip() {
        let m = p(0.35, 0.03, 0.3, 0.02).unwrap();
        let s = spotbid_json::encode(&m);
        let back: MarketParams = spotbid_json::decode(&s).unwrap();
        assert_eq!(m, back);
        // Field names on the wire match the old serde derive.
        assert_eq!(
            s,
            r#"{"beta":0.3,"pi_bar":0.35,"pi_min":0.03,"theta":0.02}"#
        );
    }
}
