//! Provider-side market parameters.

use crate::units::Price;
use crate::MarketError;
use serde::{Deserialize, Serialize};

/// Parameters of the provider's spot-price optimization (§4.1).
///
/// | field    | paper symbol | meaning |
/// |----------|--------------|---------|
/// | `pi_bar` | `π̄`          | on-demand price: the cap on the spot price |
/// | `pi_min` | `π`          | minimum spot price: the provider's marginal cost |
/// | `beta`   | `β`          | weight of the capacity-utilization term `β log(1+N)` |
/// | `theta`  | `θ`          | fraction of running instances that finish per slot |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketParams {
    /// On-demand price `π̄` — the maximum spot price.
    pub pi_bar: Price,
    /// Minimum spot price `π` — the provider's marginal cost of a spot
    /// instance.
    pub pi_min: Price,
    /// Utilization weight `β ≥ 0` in the provider objective.
    pub beta: f64,
    /// Per-slot completion fraction `θ ∈ (0, 1]` in the queue dynamics.
    pub theta: f64,
}

impl MarketParams {
    /// Creates and validates market parameters.
    ///
    /// # Errors
    ///
    /// [`MarketError::InvalidParams`] when any field is non-finite,
    /// `pi_min` is not in `[0, pi_bar)`, `beta < 0`, or `theta` is outside
    /// `(0, 1]`.
    pub fn new(pi_bar: Price, pi_min: Price, beta: f64, theta: f64) -> Result<Self, MarketError> {
        let p = MarketParams {
            pi_bar,
            pi_min,
            beta,
            theta,
        };
        p.validate()?;
        Ok(p)
    }

    /// Validates the invariants listed on [`MarketParams::new`].
    pub fn validate(&self) -> Result<(), MarketError> {
        if !self.pi_bar.is_valid_price() || self.pi_bar <= Price::ZERO {
            return Err(MarketError::InvalidParams {
                what: "pi_bar must be a finite positive price".into(),
            });
        }
        if !self.pi_min.is_valid_price() || self.pi_min >= self.pi_bar {
            return Err(MarketError::InvalidParams {
                what: "pi_min must satisfy 0 <= pi_min < pi_bar".into(),
            });
        }
        if !self.beta.is_finite() || self.beta < 0.0 {
            return Err(MarketError::InvalidParams {
                what: "beta must be finite and >= 0".into(),
            });
        }
        if !self.theta.is_finite() || self.theta <= 0.0 || self.theta > 1.0 {
            return Err(MarketError::InvalidParams {
                what: "theta must lie in (0, 1]".into(),
            });
        }
        Ok(())
    }

    /// Price spread `π̄ − π`, the denominator of the accepted-bid fraction.
    pub fn spread(&self) -> Price {
        self.pi_bar - self.pi_min
    }

    /// The paper's standing assumption `β ≤ (L+1)(π̄ − 2π)`, under which
    /// the optimal spot price stays strictly above `π` (see the discussion
    /// after Eq. 3).
    pub fn beta_assumption_holds(&self, l: f64) -> bool {
        self.beta <= (l + 1.0) * (self.pi_bar.as_f64() - 2.0 * self.pi_min.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(pi_bar: f64, pi_min: f64, beta: f64, theta: f64) -> Result<MarketParams, MarketError> {
        MarketParams::new(Price::new(pi_bar), Price::new(pi_min), beta, theta)
    }

    #[test]
    fn accepts_paper_like_params() {
        // Figure 3 caption scale: β = 0.3..1.2, θ = 0.02.
        assert!(p(0.35, 0.03, 0.3, 0.02).is_ok());
        assert!(p(0.28, 0.0, 0.6, 0.02).is_ok());
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(p(0.0, 0.0, 0.1, 0.02).is_err()); // zero on-demand
        assert!(p(-1.0, 0.0, 0.1, 0.02).is_err());
        assert!(p(0.35, 0.35, 0.1, 0.02).is_err()); // pi_min == pi_bar
        assert!(p(0.35, 0.5, 0.1, 0.02).is_err()); // pi_min > pi_bar
        assert!(p(0.35, -0.1, 0.1, 0.02).is_err());
        assert!(p(0.35, 0.03, -0.1, 0.02).is_err()); // negative beta
        assert!(p(0.35, 0.03, f64::NAN, 0.02).is_err());
        assert!(p(0.35, 0.03, 0.1, 0.0).is_err()); // theta = 0
        assert!(p(0.35, 0.03, 0.1, 1.5).is_err()); // theta > 1
    }

    #[test]
    fn spread_and_beta_assumption() {
        let m = p(0.35, 0.05, 0.2, 0.02).unwrap();
        assert!((m.spread().as_f64() - 0.30).abs() < 1e-12);
        // (L+1)(pi_bar - 2 pi_min) = (L+1) * 0.25.
        assert!(m.beta_assumption_holds(0.0)); // 0.2 <= 0.25
        let tight = p(0.35, 0.05, 0.3, 0.02).unwrap();
        assert!(!tight.beta_assumption_holds(0.0)); // 0.3 > 0.25
        assert!(tight.beta_assumption_holds(1.0)); // 0.3 <= 0.5
    }

    #[test]
    fn serde_roundtrip() {
        let m = p(0.35, 0.03, 0.3, 0.02).unwrap();
        let s = serde_json::to_string(&m).unwrap();
        let back: MarketParams = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
