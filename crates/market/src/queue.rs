//! Flow-level bid-queue dynamics (§4.2, Figure 2).
//!
//! At the start of slot `t` there are `L(t)` competing bids (carried-over
//! persistent requests plus new arrivals). The provider posts the optimal
//! price (Eq. 3), accepting `N(t) = L(t)·(π̄ − π*)/(π̄ − π_min)` of them; a
//! fraction `θ` of the running instances finishes, and the remainder
//! re-competes next slot together with `Λ(t)` fresh arrivals:
//!
//! ```text
//! L(t+1) = (1 − θ·(π̄ − π*(t))/(π̄ − π_min))·L(t) + Λ(t)        (Eq. 4)
//! ```
//!
//! [`QueueSim`] iterates this recursion; `spotbid-bench`'s stability
//! experiment uses it to verify Propositions 1 and 2 numerically.

use crate::params::MarketParams;
use crate::provider::{accepted_bids, optimal_price};
use crate::units::Price;

/// One slot of the flow-level queue recursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStep {
    /// Slot index.
    pub t: u64,
    /// Demand `L(t)` at the start of the slot (before this slot's price).
    pub l: f64,
    /// Fresh arrivals `Λ(t)` during the slot.
    pub arrivals: f64,
    /// The optimal spot price `π*(t)` posted for the slot.
    pub price: Price,
    /// Accepted (running) bids `N(t)`.
    pub accepted: f64,
    /// Departures `θ·N(t)` (finished jobs and exiting one-time requests).
    pub departed: f64,
    /// Demand carried into the next slot, `L(t+1)`.
    pub l_next: f64,
}

/// Iterates the Eq. 4 queue recursion under a given market.
#[derive(Debug, Clone, Copy)]
pub struct QueueSim {
    params: MarketParams,
}

impl QueueSim {
    /// Creates a queue simulator for the given market parameters.
    pub fn new(params: MarketParams) -> Self {
        QueueSim { params }
    }

    /// The market parameters.
    pub fn params(&self) -> &MarketParams {
        &self.params
    }

    /// Advances one slot from demand `l` with fresh arrivals `lambda`.
    pub fn step(&self, t: u64, l: f64, lambda: f64) -> QueueStep {
        let l = l.max(0.0);
        let lambda = lambda.max(0.0);
        let price = optimal_price(&self.params, l);
        let accepted = accepted_bids(&self.params, l, price);
        let departed = self.params.theta * accepted;
        QueueStep {
            t,
            l,
            arrivals: lambda,
            price,
            accepted,
            departed,
            l_next: l - departed + lambda,
        }
    }

    /// Runs the recursion from `l0` over a sequence of arrivals, returning
    /// every step.
    pub fn run(&self, l0: f64, arrivals: impl IntoIterator<Item = f64>) -> Vec<QueueStep> {
        let mut l = l0;
        let mut out = Vec::new();
        for (t, lambda) in arrivals.into_iter().enumerate() {
            let step = self.step(t as u64, l, lambda);
            l = step.l_next;
            out.push(step);
        }
        out
    }

    /// The fixed-point demand for constant arrivals `λ`: the `L` with
    /// `θ·N(L) = λ`, i.e. `L = λ·(π̄ − π_min)/(θ·(π̄ − π*(L)))` (Eq. 21).
    /// Solved by fixed-point iteration; converges because the right-hand
    /// side is a contraction in the relevant range.
    pub fn equilibrium_demand(&self, lambda: f64) -> f64 {
        let spread = self.params.spread().as_f64();
        let mut l = lambda.max(1e-9) / self.params.theta;
        for _ in 0..10_000 {
            let price = optimal_price(&self.params, l);
            let next =
                lambda * spread / (self.params.theta * (self.params.pi_bar - price).as_f64());
            if (next - l).abs() < 1e-12 * (1.0 + l) {
                return next;
            }
            // Damped update for stability at small L.
            l = 0.5 * l + 0.5 * next;
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::equilibrium_price;

    fn sim() -> QueueSim {
        QueueSim::new(MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap())
    }

    #[test]
    fn conservation_per_slot() {
        let s = sim();
        let step = s.step(0, 100.0, 3.0);
        assert!((step.l_next - (step.l - step.departed + step.arrivals)).abs() < 1e-12);
        assert!(step.departed <= step.accepted);
        assert!(step.accepted <= step.l);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let s = sim();
        let step = s.step(0, -5.0, -1.0);
        assert_eq!(step.l, 0.0);
        assert_eq!(step.arrivals, 0.0);
        assert_eq!(step.l_next, 0.0);
    }

    #[test]
    fn run_is_consistent_with_step() {
        let s = sim();
        let steps = s.run(10.0, vec![1.0, 2.0, 0.5]);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].l, 10.0);
        assert_eq!(steps[1].l, steps[0].l_next);
        assert_eq!(steps[2].l, steps[1].l_next);
    }

    #[test]
    fn constant_arrivals_converge_to_equilibrium() {
        let s = sim();
        let lambda = 0.8;
        let l_star = s.equilibrium_demand(lambda);
        // Iterate long enough from far away.
        let steps = s.run(1000.0, std::iter::repeat_n(lambda, 5000));
        let last = steps.last().unwrap();
        assert!(
            (last.l_next - l_star).abs() < 1e-3 * l_star,
            "converged to {} but fixed point is {l_star}",
            last.l_next
        );
        // At the fixed point, L(t+1) = L(t).
        let check = s.step(0, l_star, lambda);
        assert!(
            (check.l_next - l_star).abs() < 1e-6 * l_star,
            "fixed point drifts: {} vs {l_star}",
            check.l_next
        );
    }

    #[test]
    fn equilibrium_price_matches_proposition_2() {
        // At the fixed point under constant arrivals λ, the posted optimal
        // price must equal h(λ) (Proposition 2), as long as neither is
        // clamped.
        let s = sim();
        for &lambda in &[0.1, 0.5, 1.0, 5.0] {
            let l_star = s.equilibrium_demand(lambda);
            let posted = s.step(0, l_star, lambda).price;
            let h = equilibrium_price(s.params(), lambda);
            assert!(
                (posted.as_f64() - h.as_f64()).abs() < 1e-6,
                "λ={lambda}: posted {posted} vs h(λ) {h}"
            );
        }
    }

    #[test]
    fn larger_arrivals_mean_larger_equilibrium_queue_and_price() {
        let s = sim();
        let l1 = s.equilibrium_demand(0.2);
        let l2 = s.equilibrium_demand(2.0);
        assert!(l2 > l1);
        let p1 = s.step(0, l1, 0.2).price;
        let p2 = s.step(0, l2, 2.0).price;
        assert!(p2 >= p1);
    }

    #[test]
    fn bursty_arrivals_queue_stays_bounded() {
        // Alternating bursts and quiet periods: time-averaged queue must not
        // diverge (Proposition 1's conclusion).
        let s = sim();
        let arrivals = (0..20_000).map(|t| if t % 10 == 0 { 8.0 } else { 0.1 });
        let steps = s.run(0.0, arrivals);
        let max_l = steps.iter().map(|st| st.l).fold(0.0, f64::max);
        let eq = s.equilibrium_demand(0.89); // mean arrival rate
        assert!(
            max_l < 20.0 * eq.max(1.0),
            "queue exploded: max L = {max_l}, equilibrium {eq}"
        );
    }
}
