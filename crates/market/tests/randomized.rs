//! Randomized tests of the provider model and market simulator, driven
//! by the workspace's own seeded PRNG so they are exactly reproducible.

use spotbid_market::equilibrium::{equilibrium_price_unclamped, h_inverse};
use spotbid_market::provider::{accepted_bids, objective, optimal_price};
use spotbid_market::queue::QueueSim;
use spotbid_market::sim::{BidKind, BidPhase, BidRequest, SpotMarket, WorkModel};
use spotbid_market::units::{Hours, Price};
use spotbid_market::MarketParams;
use spotbid_numerics::rng::Rng;

fn random_params(rng: &mut Rng) -> MarketParams {
    let pi_bar = rng.range_f64(0.1, 2.0);
    let pmin_frac = rng.range_f64(0.0, 0.4);
    let beta = rng.range_f64(0.0, 0.5);
    let theta = rng.range_f64(0.005, 0.5);
    MarketParams::new(
        Price::new(pi_bar),
        Price::new(pi_bar * pmin_frac),
        beta,
        theta,
    )
    .unwrap()
}

#[test]
fn optimal_price_is_optimal_and_bounded() {
    let mut rng = Rng::seed_from_u64(0x4D4B_0001);
    for _ in 0..128 {
        let m = random_params(&mut rng);
        let l = rng.range_f64(0.0, 1e5);
        let p = optimal_price(&m, l);
        assert!(p >= m.pi_min && p <= m.pi_bar);
        // Beats a coarse grid of alternatives.
        let best = objective(&m, l, p);
        for i in 0..=40 {
            let cand =
                Price::new(m.pi_min.as_f64() + (m.pi_bar - m.pi_min).as_f64() * i as f64 / 40.0);
            assert!(objective(&m, l, cand) <= best + 1e-9);
        }
    }
}

#[test]
fn accepted_bids_monotone_in_price() {
    let mut rng = Rng::seed_from_u64(0x4D4B_0002);
    for _ in 0..128 {
        let m = random_params(&mut rng);
        let l = rng.range_f64(0.1, 1000.0);
        let mut last = f64::INFINITY;
        for i in 0..=20 {
            let p =
                Price::new(m.pi_min.as_f64() + (m.pi_bar - m.pi_min).as_f64() * i as f64 / 20.0);
            let n = accepted_bids(&m, l, p);
            assert!(n <= last + 1e-12, "acceptance must fall as price rises");
            assert!((0.0..=l).contains(&n));
            last = n;
        }
    }
}

#[test]
fn h_and_h_inverse_are_mutual_inverses() {
    let mut rng = Rng::seed_from_u64(0x4D4B_0003);
    for _ in 0..128 {
        let m = random_params(&mut rng);
        if m.beta <= 1e-6 {
            continue;
        }
        // Log-uniform arrival level over [1e-6, 1e4].
        let lam = 10f64.powf(rng.range_f64(-6.0, 4.0));
        let price = equilibrium_price_unclamped(&m, lam);
        assert!(price < m.pi_bar.as_f64() / 2.0);
        if let Some(back) = h_inverse(&m, Price::new(price)) {
            assert!(
                (back - lam).abs() < 1e-6 * (1.0 + lam),
                "h⁻¹(h({lam})) = {back}"
            );
        }
    }
}

#[test]
fn queue_step_conserves_mass() {
    let mut rng = Rng::seed_from_u64(0x4D4B_0004);
    for _ in 0..128 {
        let m = random_params(&mut rng);
        let l = rng.range_f64(0.0, 1e4);
        let lam = rng.range_f64(0.0, 100.0);
        let sim = QueueSim::new(m);
        let s = sim.step(0, l, lam);
        assert!((s.l_next - (s.l - s.departed + s.arrivals)).abs() < 1e-9);
        assert!(s.departed >= 0.0 && s.departed <= s.accepted + 1e-12);
        assert!(s.accepted <= s.l + 1e-12);
        assert!(s.l_next >= 0.0);
    }
}

#[test]
fn market_accounting_invariants() {
    let mut rng = Rng::seed_from_u64(0x4D4B_0005);
    for _ in 0..24 {
        let n_bids = 1 + rng.range_usize(59);
        let bids: Vec<(f64, bool, u32)> = (0..n_bids)
            .map(|_| {
                (
                    rng.next_f64(),
                    rng.chance(0.5),
                    1 + rng.range_usize(19) as u32,
                )
            })
            .collect();
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        let mut market = SpotMarket::new(params, Hours::from_minutes(5.0));
        let mut sim_rng = Rng::seed_from_u64(rng.next_u64());
        for &(frac, persistent, work) in &bids {
            market.submit(BidRequest {
                price: Price::new(0.02 + frac * 0.33),
                kind: if persistent {
                    BidKind::Persistent
                } else {
                    BidKind::OneTime
                },
                work: WorkModel::FixedSlots(work),
            });
        }
        let reports = market.run(60, &mut sim_rng);
        for rec in market.records() {
            // Charges are non-negative and bounded by slots_run × π̄ × slot.
            assert!(rec.charged.as_f64() >= 0.0);
            let cap = rec.slots_run as f64 * 0.35 / 12.0;
            assert!(rec.charged.as_f64() <= cap + 1e-12);
            // Finished fixed-work bids ran exactly their requirement.
            if rec.phase == BidPhase::Finished {
                if let WorkModel::FixedSlots(n) = rec.request.work {
                    assert_eq!(rec.slots_run, n);
                }
                assert!(rec.closed_at.is_some());
            }
            // One-time bids never record more than one interruption.
            if rec.request.kind == BidKind::OneTime {
                assert!(rec.interruptions <= 1);
            }
        }
        // Demand never exceeds bids submitted; prices stay in bounds.
        for r in &reports {
            assert!(r.demand <= bids.len());
            assert!(r.price >= params.pi_min && r.price <= params.pi_bar);
        }
        // Every bid is eventually closed or still open — no lost bids.
        let open = market.open_bids();
        let closed = market
            .records()
            .iter()
            .filter(|r| r.closed_at.is_some())
            .count();
        assert_eq!(open + closed, bids.len());
    }
}
