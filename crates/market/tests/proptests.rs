//! Property-based tests of the provider model and market simulator.

use proptest::prelude::*;
use spotbid_market::equilibrium::{equilibrium_price_unclamped, h_inverse};
use spotbid_market::provider::{accepted_bids, objective, optimal_price};
use spotbid_market::queue::QueueSim;
use spotbid_market::sim::{BidKind, BidPhase, BidRequest, SpotMarket, WorkModel};
use spotbid_market::units::{Hours, Price};
use spotbid_market::MarketParams;
use spotbid_numerics::rng::Rng;

fn params_strategy() -> impl Strategy<Value = MarketParams> {
    (0.1f64..2.0, 0.0f64..0.4, 0.0f64..0.5, 0.005f64..0.5).prop_map(
        |(pi_bar, pmin_frac, beta, theta)| {
            MarketParams::new(
                Price::new(pi_bar),
                Price::new(pi_bar * pmin_frac),
                beta,
                theta,
            )
            .unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimal_price_is_optimal_and_bounded(m in params_strategy(), l in 0.0f64..1e5) {
        let p = optimal_price(&m, l);
        prop_assert!(p >= m.pi_min && p <= m.pi_bar);
        // Beats a coarse grid of alternatives.
        let best = objective(&m, l, p);
        for i in 0..=40 {
            let cand = Price::new(
                m.pi_min.as_f64()
                    + (m.pi_bar - m.pi_min).as_f64() * i as f64 / 40.0,
            );
            prop_assert!(objective(&m, l, cand) <= best + 1e-9);
        }
    }

    #[test]
    fn accepted_bids_monotone_in_price(m in params_strategy(), l in 0.1f64..1000.0) {
        let mut last = f64::INFINITY;
        for i in 0..=20 {
            let p = Price::new(
                m.pi_min.as_f64() + (m.pi_bar - m.pi_min).as_f64() * i as f64 / 20.0,
            );
            let n = accepted_bids(&m, l, p);
            prop_assert!(n <= last + 1e-12, "acceptance must fall as price rises");
            prop_assert!((0.0..=l).contains(&n));
            last = n;
        }
    }

    #[test]
    fn h_and_h_inverse_are_mutual_inverses(m in params_strategy(), lam in 1e-6f64..1e4) {
        prop_assume!(m.beta > 1e-6);
        let price = equilibrium_price_unclamped(&m, lam);
        prop_assert!(price < m.pi_bar.as_f64() / 2.0);
        if let Some(back) = h_inverse(&m, Price::new(price)) {
            prop_assert!((back - lam).abs() < 1e-6 * (1.0 + lam),
                "h⁻¹(h({lam})) = {back}");
        }
    }

    #[test]
    fn queue_step_conserves_mass(m in params_strategy(),
                                 l in 0.0f64..1e4,
                                 lam in 0.0f64..100.0) {
        let sim = QueueSim::new(m);
        let s = sim.step(0, l, lam);
        prop_assert!((s.l_next - (s.l - s.departed + s.arrivals)).abs() < 1e-9);
        prop_assert!(s.departed >= 0.0 && s.departed <= s.accepted + 1e-12);
        prop_assert!(s.accepted <= s.l + 1e-12);
        prop_assert!(s.l_next >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn market_accounting_invariants(
        bids in proptest::collection::vec((0.0f64..1.0, any::<bool>(), 1u32..20), 1..60),
        seed in any::<u64>(),
    ) {
        let params =
            MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        let mut market = SpotMarket::new(params, Hours::from_minutes(5.0));
        let mut rng = Rng::seed_from_u64(seed);
        for &(frac, persistent, work) in &bids {
            market.submit(BidRequest {
                price: Price::new(0.02 + frac * 0.33),
                kind: if persistent { BidKind::Persistent } else { BidKind::OneTime },
                work: WorkModel::FixedSlots(work),
            });
        }
        let reports = market.run(60, &mut rng);
        for rec in market.records() {
            // Charges are non-negative and bounded by slots_run × π̄ × slot.
            prop_assert!(rec.charged.as_f64() >= 0.0);
            let cap = rec.slots_run as f64 * 0.35 / 12.0;
            prop_assert!(rec.charged.as_f64() <= cap + 1e-12);
            // Finished fixed-work bids ran exactly their requirement.
            if rec.phase == BidPhase::Finished {
                if let WorkModel::FixedSlots(n) = rec.request.work {
                    prop_assert_eq!(rec.slots_run, n);
                }
                prop_assert!(rec.closed_at.is_some());
            }
            // One-time bids never record more than one interruption.
            if rec.request.kind == BidKind::OneTime {
                prop_assert!(rec.interruptions <= 1);
            }
        }
        // Demand never exceeds bids submitted; prices stay in bounds.
        for r in &reports {
            prop_assert!(r.demand <= bids.len());
            prop_assert!(r.price >= params.pi_min && r.price <= params.pi_bar);
        }
        // Every bid is eventually closed or still open — no lost bids.
        let open = market.open_bids();
        let closed = market
            .records()
            .iter()
            .filter(|r| r.closed_at.is_some())
            .count();
        prop_assert_eq!(open + closed, bids.len());
    }
}
