//! The M=1 `MarketSet` parity wall (DESIGN.md §5h).
//!
//! A one-member `MarketSet` is not a new market — it must be the *same*
//! market: identical `SlotReport`s slot by slot (same ids, same order in
//! every event vector, same float price) and identical final `BidRecord`s
//! to a lone `SpotMarket` driven with the same submissions and an
//! identically-seeded RNG. These tests hold that contract across the same
//! four price regimes as the bid-book equivalence wall — uniform,
//! clustered, exact bucket boundaries, and out-of-range extremes — plus
//! capacity reclamations and the engine's `step_into` arena path.

use spotbid_market::multi::{MarketSet, MarketSpec};
use spotbid_market::provider::ProviderPolicy;
use spotbid_market::sim::{BidKind, BidRequest, SlotReport, SpotMarket, Supply, WorkModel};
use spotbid_market::units::{Hours, Price};
use spotbid_market::MarketParams;
use spotbid_numerics::rng::Rng;

const BUCKETS: f64 = 512.0;

fn params() -> MarketParams {
    MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap()
}

fn pair(p: MarketParams) -> (MarketSet, SpotMarket) {
    pair_finite(p, Supply::Unbounded)
}

fn pair_finite(p: MarketParams, supply: Supply) -> (MarketSet, SpotMarket) {
    let slot = Hours::from_minutes(5.0);
    (
        MarketSet::new(vec![MarketSpec::with_supply("solo", p, supply)], slot).unwrap(),
        SpotMarket::with_supply(p, slot, supply),
    )
}

/// A price regime: maps a uniform draw to a bid price (same generators as
/// `bidbook_equiv.rs`).
type PriceGen = fn(&MarketParams, &mut Rng) -> Price;

fn uniform_price(p: &MarketParams, rng: &mut Rng) -> Price {
    Price::new(rng.range_f64(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Clusters around a few focal prices — deep buckets, heavy boundary work.
fn clustered_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let focals = [0.05, 0.12, 0.175, 0.21, 0.34];
    let f = focals[(rng.range_f64(0.0, focals.len() as f64) as usize).min(focals.len() - 1)];
    let jitter = rng.range_f64(-0.004, 0.004);
    Price::new((f + jitter).clamp(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Exact bucket-boundary grid: `π_min + k·spread/512` — every price sits
/// on a bucket edge, the worst case for the float bucket classifier.
fn boundary_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let k = rng.range_f64(0.0, BUCKETS + 1.0).floor().min(BUCKETS);
    Price::new(p.pi_min.as_f64() + k * (p.spread().as_f64() / BUCKETS))
}

/// Out-of-range prices: below the floor (never accepted) and above the
/// cap (always accepted), exercising the open-ended edge buckets.
fn extreme_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let u = rng.range_f64(0.0, 1.0);
    if u < 0.4 {
        Price::new(rng.range_f64(0.0, p.pi_min.as_f64()))
    } else if u < 0.8 {
        Price::new(rng.range_f64(p.pi_bar.as_f64(), 2.0 * p.pi_bar.as_f64()))
    } else {
        uniform_price(p, rng)
    }
}

fn random_request(p: &MarketParams, gen: PriceGen, rng: &mut Rng) -> BidRequest {
    let kind = if rng.chance(0.45) {
        BidKind::OneTime
    } else {
        BidKind::Persistent
    };
    let work = if rng.chance(0.4) {
        WorkModel::Geometric
    } else {
        let draw = rng.range_f64(0.0, 1.0);
        if draw < 0.05 {
            WorkModel::FixedSlots(0)
        } else if draw < 0.1 {
            WorkModel::FixedSlots(u32::MAX)
        } else {
            WorkModel::FixedSlots((rng.range_f64(1.0, 20.0)) as u32)
        }
    };
    BidRequest {
        price: gen(p, rng),
        kind,
        work,
    }
}

/// Core driver: identical submissions into the one-member set and the lone
/// market, identically seeded step RNGs, slot-by-slot `SlotReport`
/// equality, and final full-`records()` equality.
fn run_equivalence(
    seed: u64,
    gen: PriceGen,
    initial: usize,
    slots: usize,
    churn: f64,
    reclaim: f64,
) {
    run_equivalence_supply(
        seed,
        gen,
        initial,
        slots,
        churn,
        reclaim,
        Supply::Unbounded,
        0.0,
    );
}

/// As [`run_equivalence`] under an arbitrary supply model, with each slot
/// independently seeing an identical on-demand demand shift in both the
/// set member and the lone market with probability `od_churn`. Finite
/// supply also pins the per-slot provider telemetry and the final report.
#[allow(clippy::too_many_arguments)]
fn run_equivalence_supply(
    seed: u64,
    gen: PriceGen,
    initial: usize,
    slots: usize,
    churn: f64,
    reclaim: f64,
    supply: Supply,
    od_churn: f64,
) {
    let p = params();
    let (mut set, mut lone) = pair_finite(p, supply);
    let mut sub_rng = Rng::seed_from_u64(seed);
    let mut rngs_set = vec![Rng::seed_from_u64(seed ^ 0xFEED)];
    let mut rng_lone = Rng::seed_from_u64(seed ^ 0xFEED);

    for _ in 0..initial {
        let req = random_request(&p, gen, &mut sub_rng);
        assert_eq!(set.submit(0, req), lone.submit(req));
    }

    for s in 0..slots {
        let burst = if sub_rng.chance(churn) {
            if sub_rng.chance(0.1) {
                40
            } else {
                1 + (sub_rng.range_f64(0.0, 4.0) as usize)
            }
        } else {
            0
        };
        for _ in 0..burst {
            let req = random_request(&p, gen, &mut sub_rng);
            assert_eq!(set.submit(0, req), lone.submit(req));
        }
        if reclaim > 0.0 && sub_rng.chance(reclaim) {
            set.reclaim_next_slot(0);
            lone.reclaim_next_slot();
        }
        if od_churn > 0.0 && sub_rng.chance(od_churn) {
            let n = 1 + (sub_rng.range_f64(0.0, 6.0) as u32);
            if sub_rng.chance(0.5) {
                assert_eq!(
                    set.request_on_demand(0, n),
                    lone.request_on_demand(n),
                    "od admissions at slot {s}"
                );
            } else {
                set.release_on_demand(0, n);
                lone.release_on_demand(n);
            }
        }

        let rs = set.step(&mut rngs_set);
        let rl = lone.step(&mut rng_lone);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0], rl, "seed {seed} slot {s} diverged");
        assert_eq!(
            set.provider_slots(0).last(),
            lone.provider_slots().last(),
            "seed {seed} slot {s} provider telemetry diverged"
        );
    }

    assert_eq!(set.records(0), lone.records(), "seed {seed} final records");
    assert_eq!(set.now(), lone.now());
    assert_eq!(set.provider_slots(0), lone.provider_slots());
    assert_eq!(set.provider_report(0), lone.provider_report());
}

#[test]
fn singleton_set_equivalent_under_uniform_prices() {
    for seed in [1u64, 2, 42, 0xDEAD] {
        run_equivalence(seed, uniform_price, 200, 120, 0.7, 0.0);
    }
}

#[test]
fn singleton_set_equivalent_under_clustered_prices() {
    for seed in [7u64, 9, 0xC0FFEE] {
        run_equivalence(seed, clustered_price, 300, 100, 0.6, 0.0);
    }
}

#[test]
fn singleton_set_equivalent_on_exact_bucket_boundaries() {
    for seed in [11u64, 13, 19] {
        run_equivalence(seed, boundary_price, 250, 100, 0.5, 0.0);
    }
}

#[test]
fn singleton_set_equivalent_under_out_of_range_prices() {
    for seed in [23u64, 29, 31] {
        run_equivalence(seed, extreme_price, 200, 90, 0.6, 0.0);
    }
}

#[test]
fn singleton_set_equivalent_under_capacity_reclamations() {
    for seed in [43u64, 53, 0xFA17] {
        run_equivalence(seed, uniform_price, 250, 120, 0.6, 0.08);
        run_equivalence(seed, boundary_price, 150, 100, 0.5, 0.4);
    }
}

#[test]
fn singleton_set_equivalent_under_finite_supply() {
    // Finite-capacity members: capacity evictions, on-demand churn, and —
    // in the second regime — dense forced outages layered on top (the
    // reclamation-heavy wall), all bit-identical to a lone finite market.
    let tight = Supply::Finite {
        capacity: 48,
        policy: ProviderPolicy::UtilizationTracking { od_cap: 24 },
    };
    let tiny = Supply::Finite {
        capacity: 16,
        policy: ProviderPolicy::UtilizationTracking { od_cap: 12 },
    };
    for seed in [101u64, 103, 0xCAFE] {
        run_equivalence_supply(seed, uniform_price, 250, 120, 0.7, 0.0, tight, 0.4);
        run_equivalence_supply(seed, boundary_price, 150, 100, 0.5, 0.3, tiny, 0.5);
    }
}

#[test]
fn singleton_set_arena_path_matches_lone_market() {
    // step_into with caller-owned reports (the engine's arena path)
    // against a lone market's step, across every regime.
    for (gen, seed) in [
        (uniform_price as PriceGen, 123u64),
        (clustered_price, 231),
        (boundary_price, 312),
        (extreme_price, 321),
    ] {
        let p = params();
        let (mut set, mut lone) = pair(p);
        let mut sub = Rng::seed_from_u64(seed);
        let mut rngs = vec![Rng::seed_from_u64(seed ^ 0xA12A)];
        let mut rl = Rng::seed_from_u64(seed ^ 0xA12A);
        let mut arena = vec![SlotReport::empty(); 1];
        for s in 0..120 {
            if sub.chance(0.6) {
                let req = random_request(&p, gen, &mut sub);
                set.submit(0, req);
                lone.submit(req);
            }
            set.step_into(&mut rngs, &mut arena);
            let expect = lone.step(&mut rl);
            assert_eq!(arena[0], expect, "slot {s}");
        }
        assert_eq!(set.records(0), lone.records());
    }
}
