//! Randomized exact-equivalence suite: the price-indexed bid-book vs the
//! retained `sim::naive` oracle.
//!
//! The bid-book's contract (DESIGN.md §5e) is **bit-identical** output:
//! the same `SlotReport`s slot by slot (same ids, same order in every
//! event vector, same float price), the same `BidRecord`s (same `charged`
//! float accumulation), and the same RNG draw order. These tests drive
//! both implementations with identical submissions and identically-seeded
//! RNGs across seeds, bid mixes, and price regimes — including the hostile
//! ones: prices on exact bucket boundaries, below the price floor, above
//! the cap, zero-slot jobs, and mid-run submission bursts.

use spotbid_market::provider::ProviderPolicy;
use spotbid_market::sim::{
    naive, BidId, BidKind, BidRequest, SlotReport, SpotMarket, Supply, WorkModel,
};
use spotbid_market::units::{Hours, Price};
use spotbid_market::MarketParams;
use spotbid_numerics::rng::Rng;

const BUCKETS: f64 = 512.0;

fn params() -> MarketParams {
    MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap()
}

fn pair(p: MarketParams) -> (SpotMarket, naive::SpotMarket) {
    let slot = Hours::from_minutes(5.0);
    (SpotMarket::new(p, slot), naive::SpotMarket::new(p, slot))
}

fn pair_finite(p: MarketParams, supply: Supply) -> (SpotMarket, naive::SpotMarket) {
    let slot = Hours::from_minutes(5.0);
    (
        SpotMarket::with_supply(p, slot, supply),
        naive::SpotMarket::with_supply(p, slot, supply),
    )
}

/// A price regime: maps a uniform draw to a bid price.
type PriceGen = fn(&MarketParams, &mut Rng) -> Price;

fn uniform_price(p: &MarketParams, rng: &mut Rng) -> Price {
    Price::new(rng.range_f64(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Clusters around a few focal prices — deep buckets, heavy boundary work.
fn clustered_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let focals = [0.05, 0.12, 0.175, 0.21, 0.34];
    let f = focals[(rng.range_f64(0.0, focals.len() as f64) as usize).min(focals.len() - 1)];
    let jitter = rng.range_f64(-0.004, 0.004);
    Price::new((f + jitter).clamp(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Exact bucket-boundary grid: `π_min + k·spread/512` — every price sits
/// on a bucket edge, the worst case for the float bucket classifier.
fn boundary_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let k = rng.range_f64(0.0, BUCKETS + 1.0).floor().min(BUCKETS);
    Price::new(p.pi_min.as_f64() + k * (p.spread().as_f64() / BUCKETS))
}

/// Out-of-range prices: below the floor (never accepted) and above the
/// cap (always accepted), exercising the open-ended edge buckets.
fn extreme_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let u = rng.range_f64(0.0, 1.0);
    if u < 0.4 {
        Price::new(rng.range_f64(0.0, p.pi_min.as_f64()))
    } else if u < 0.8 {
        Price::new(rng.range_f64(p.pi_bar.as_f64(), 2.0 * p.pi_bar.as_f64()))
    } else {
        uniform_price(p, rng)
    }
}

fn random_request(p: &MarketParams, gen: PriceGen, rng: &mut Rng) -> BidRequest {
    let kind = if rng.chance(0.45) {
        BidKind::OneTime
    } else {
        BidKind::Persistent
    };
    let work = if rng.chance(0.4) {
        WorkModel::Geometric
    } else {
        // Includes 0-slot jobs (accepted-then-immediately-finished) and
        // effectively-unbounded ones.
        let draw = rng.range_f64(0.0, 1.0);
        if draw < 0.05 {
            WorkModel::FixedSlots(0)
        } else if draw < 0.1 {
            WorkModel::FixedSlots(u32::MAX)
        } else {
            WorkModel::FixedSlots((rng.range_f64(1.0, 20.0)) as u32)
        }
    };
    BidRequest {
        price: gen(p, rng),
        kind,
        work,
    }
}

fn assert_sorted(rep: &SlotReport) {
    for v in [
        &rep.started,
        &rep.interrupted,
        &rep.finished,
        &rep.terminated,
    ] {
        assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "report t={} has an unsorted event vector: {v:?}",
            rep.t
        );
    }
}

/// Core driver: identical submissions into both markets, identically
/// seeded step RNGs, slot-by-slot `SlotReport` equality, interleaved
/// mid-run `record()` reads, and final full-`records()` equality.
fn run_equivalence(seed: u64, gen: PriceGen, initial: usize, slots: usize, churn: f64) {
    run_equivalence_reclaiming(seed, gen, initial, slots, churn, 0.0);
}

/// As [`run_equivalence`], with each slot independently being a capacity
/// reclamation with probability `reclaim` (exercising the parked-bid
/// path, including consecutive reclamations and arrivals mid-outage).
fn run_equivalence_reclaiming(
    seed: u64,
    gen: PriceGen,
    initial: usize,
    slots: usize,
    churn: f64,
    reclaim: f64,
) {
    run_equivalence_supply(
        seed,
        gen,
        initial,
        slots,
        churn,
        reclaim,
        Supply::Unbounded,
        0.0,
    );
}

/// The full driver: as [`run_equivalence_reclaiming`] under an arbitrary
/// supply model, with each slot independently seeing an on-demand demand
/// shift with probability `od_churn` (a request or a release, identical
/// in both markets — the provider-initiated reclamation source). Under
/// finite supply the per-slot provider telemetry and the final
/// `ProviderReport` must also match bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn run_equivalence_supply(
    seed: u64,
    gen: PriceGen,
    initial: usize,
    slots: usize,
    churn: f64,
    reclaim: f64,
    supply: Supply,
    od_churn: f64,
) {
    let p = params();
    let (mut book, mut base) = pair_finite(p, supply);
    let mut sub_rng = Rng::seed_from_u64(seed);
    let mut rng_book = Rng::seed_from_u64(seed ^ 0xFEED);
    let mut rng_base = Rng::seed_from_u64(seed ^ 0xFEED);

    for _ in 0..initial {
        let req = random_request(&p, gen, &mut sub_rng);
        assert_eq!(book.submit(req), base.submit(req));
    }

    for s in 0..slots {
        // Mid-run submission bursts, occasionally heavy.
        let burst = if sub_rng.chance(churn) {
            if sub_rng.chance(0.1) {
                40
            } else {
                1 + (sub_rng.range_f64(0.0, 4.0) as usize)
            }
        } else {
            0
        };
        for _ in 0..burst {
            let req = random_request(&p, gen, &mut sub_rng);
            assert_eq!(book.submit(req), base.submit(req));
        }
        if reclaim > 0.0 && sub_rng.chance(reclaim) {
            book.reclaim_next_slot();
            base.reclaim_next_slot();
        }
        if od_churn > 0.0 && sub_rng.chance(od_churn) {
            let n = 1 + (sub_rng.range_f64(0.0, 6.0) as u32);
            if sub_rng.chance(0.5) {
                assert_eq!(
                    book.request_on_demand(n),
                    base.request_on_demand(n),
                    "od admissions at slot {s}"
                );
            } else {
                book.release_on_demand(n);
                base.release_on_demand(n);
            }
            assert_eq!(book.od_active(), base.od_active());
        }
        assert_eq!(book.open_bids(), base.open_bids(), "demand at slot {s}");

        let rb = book.step(&mut rng_book);
        let rn = base.step(&mut rng_base);
        assert_eq!(rb, rn, "seed {seed} slot {s} diverged");
        assert_sorted(&rb);
        assert_eq!(
            book.provider_slots().last(),
            base.provider_slots().last(),
            "seed {seed} slot {s} provider telemetry diverged"
        );

        // Mid-run record reads (forces + checks the lazy charge sync).
        if s % 7 == 3 && !base.records().is_empty() {
            let probe = BidId(
                (sub_rng.range_f64(0.0, base.records().len() as f64) as u64)
                    .min(base.records().len() as u64 - 1),
            );
            assert_eq!(book.record(probe), base.record(probe));
        }
    }

    assert_eq!(book.records(), base.records(), "seed {seed} final records");
    assert_eq!(book.open_bids(), base.open_bids());
    assert_eq!(book.now(), base.now());
    assert_eq!(book.provider_slots(), base.provider_slots());
    assert_eq!(book.provider_report(), base.provider_report());
}

fn finite(capacity: u32, od_cap: u32) -> Supply {
    Supply::Finite {
        capacity,
        policy: ProviderPolicy::UtilizationTracking { od_cap },
    }
}

#[test]
fn equivalent_under_uniform_prices() {
    for seed in [1u64, 2, 3, 42, 0xDEAD] {
        run_equivalence(seed, uniform_price, 200, 120, 0.7);
    }
}

#[test]
fn equivalent_under_clustered_prices() {
    for seed in [7u64, 8, 9, 0xC0FFEE] {
        run_equivalence(seed, clustered_price, 300, 100, 0.6);
    }
}

#[test]
fn equivalent_on_exact_bucket_boundaries() {
    for seed in [11u64, 13, 17, 19] {
        run_equivalence(seed, boundary_price, 250, 100, 0.5);
    }
}

#[test]
fn equivalent_under_out_of_range_prices() {
    for seed in [23u64, 29, 31] {
        run_equivalence(seed, extreme_price, 200, 90, 0.6);
    }
}

#[test]
fn equivalent_with_no_initial_bids_and_sparse_churn() {
    // Exercises the empty book, the +∞ pre-first-step posted price, and
    // slots where nothing happens at all.
    for seed in [37u64, 41] {
        run_equivalence(seed, uniform_price, 0, 150, 0.25);
    }
}

#[test]
fn equivalent_on_a_moderate_burst() {
    // One 5k-bid burst: the bucket build and first-auction path at scale.
    run_equivalence(0xB16B00B5 % 9973, uniform_price, 5000, 40, 0.3);
}

#[test]
fn equivalent_under_capacity_reclamations() {
    // Scattered single-slot outages: parked running bids, parked pending
    // sweeps, arrivals mid-outage, and the individual re-auction pass.
    for seed in [43u64, 47, 53, 0xFA17] {
        run_equivalence_reclaiming(seed, uniform_price, 250, 120, 0.6, 0.08);
        run_equivalence_reclaiming(seed, clustered_price, 200, 100, 0.5, 0.08);
    }
}

#[test]
fn equivalent_under_heavy_reclamations() {
    // Back-to-back outages: parked bids carried across consecutive
    // reclamation slots, boundary prices, and out-of-range bids that sit
    // parked through an outage.
    for seed in [59u64, 61, 67] {
        run_equivalence_reclaiming(seed, boundary_price, 150, 100, 0.5, 0.4);
        run_equivalence_reclaiming(seed, extreme_price, 150, 100, 0.5, 0.4);
    }
}

#[test]
fn equivalent_under_finite_supply() {
    // Binding, near-binding, and slack capacities: capacity evictions of
    // fresh winners and carried runners, the clearing-price branch, and
    // matching per-slot provider telemetry.
    for seed in [71u64, 73, 79, 0xCAFE] {
        run_equivalence_supply(seed, uniform_price, 250, 120, 0.7, 0.0, finite(64, 32), 0.3);
        run_equivalence_supply(
            seed,
            clustered_price,
            200,
            100,
            0.6,
            0.0,
            finite(24, 16),
            0.4,
        );
        run_equivalence_supply(
            seed,
            uniform_price,
            200,
            100,
            0.6,
            0.0,
            finite(100_000, 64),
            0.3,
        );
    }
}

#[test]
fn equivalent_under_finite_supply_reclamation_storm() {
    // The reclamation-heavy regime: dense forced outages layered over
    // provider-initiated reclamations from on-demand churn against a
    // tight capacity — parked victims carried through outages, boundary
    // and out-of-range bids evicted mid-flight.
    for seed in [83u64, 89, 97, 0xFA57] {
        run_equivalence_supply(seed, uniform_price, 200, 120, 0.6, 0.3, finite(48, 24), 0.5);
        run_equivalence_supply(
            seed,
            boundary_price,
            150,
            100,
            0.5,
            0.3,
            finite(16, 12),
            0.5,
        );
        run_equivalence_supply(seed, extreme_price, 150, 100, 0.5, 0.3, finite(32, 16), 0.5);
    }
}

#[test]
fn run_matches_stepwise_and_naive() {
    let p = params();
    let (mut book, mut base) = pair(p);
    let mut sub = Rng::seed_from_u64(77);
    for _ in 0..150 {
        let req = random_request(&p, uniform_price, &mut sub);
        book.submit(req);
        base.submit(req);
    }
    let mut r1 = Rng::seed_from_u64(99);
    let mut r2 = Rng::seed_from_u64(99);
    let a = book.run(80, &mut r1);
    let b = base.run(80, &mut r2);
    assert_eq!(a, b);
}

#[test]
fn recycled_arena_path_matches_naive() {
    // step_into + recycle (the engine's arena path) against the oracle.
    let p = params();
    let (mut book, mut base) = pair(p);
    let mut sub = Rng::seed_from_u64(123);
    let mut rb = Rng::seed_from_u64(321);
    let mut rn = Rng::seed_from_u64(321);
    let mut arena = SlotReport::empty();
    for s in 0..120 {
        if sub.chance(0.6) {
            let req = random_request(&p, clustered_price, &mut sub);
            book.submit(req);
            base.submit(req);
        }
        book.step_into(&mut rb, &mut arena);
        let expect = base.step(&mut rn);
        assert_eq!(arena, expect, "slot {s}");
        let done = std::mem::replace(&mut arena, SlotReport::empty());
        book.recycle(done);
    }
    assert_eq!(book.records(), base.records());
}
