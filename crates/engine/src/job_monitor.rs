//! The job monitor: per-slot state machine of a spot job's lifecycle.
//!
//! The paper's client tracks job status through DynamoDB writes from the
//! instance (first run vs restarted-after-interruption) and simulates a
//! recovery delay when an instance resumes. This module is the in-process
//! equivalent: it advances a job one pricing slot at a time given whether
//! the bid was accepted, accounting execution progress, recovery replay,
//! idle waiting, and interruptions.

use spotbid_core::JobSpec;
use spotbid_market::units::Hours;

/// The lifecycle state of a monitored job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted but not yet started (bid has never been accepted).
    Waiting,
    /// Currently executing on an instance.
    Running,
    /// Interrupted and waiting for the price to fall below the bid.
    Idle,
    /// All work done.
    Finished,
}

/// What happened in one slot, from the monitor's perspective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotEvent {
    /// State after the slot.
    pub state: JobState,
    /// Productive + recovery time consumed on the instance this slot.
    pub used: Hours,
    /// Whether this slot began a fresh interruption (running → idle).
    pub interrupted: bool,
    /// Whether the job finished during this slot.
    pub finished: bool,
}

/// Tracks one job's progress through accept/reject slots.
#[derive(Debug, Clone)]
pub struct JobMonitor {
    job: JobSpec,
    state: JobState,
    remaining_work: Hours,
    pending_recovery: Hours,
    interruptions: u32,
    running_time: Hours,
    waiting_time: Hours,
    idle_time: Hours,
}

impl JobMonitor {
    /// Starts monitoring a (validated) job.
    pub fn new(job: JobSpec) -> Self {
        JobMonitor {
            remaining_work: job.execution,
            job,
            state: JobState::Waiting,
            pending_recovery: Hours::ZERO,
            interruptions: 0,
            running_time: Hours::ZERO,
            waiting_time: Hours::ZERO,
            idle_time: Hours::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> JobState {
        self.state
    }

    /// Interruptions suffered so far.
    pub fn interruptions(&self) -> u32 {
        self.interruptions
    }

    /// Time spent actually on an instance (execution + recovery).
    pub fn running_time(&self) -> Hours {
        self.running_time
    }

    /// Time spent idle after at least one run (outbid).
    pub fn idle_time(&self) -> Hours {
        self.idle_time
    }

    /// Time spent waiting before the first acceptance.
    pub fn waiting_time(&self) -> Hours {
        self.waiting_time
    }

    /// Execution work still to do.
    pub fn remaining_work(&self) -> Hours {
        self.remaining_work
    }

    /// Total wall-clock time elapsed across all observed slots.
    pub fn elapsed(&self) -> Hours {
        self.running_time + self.idle_time + self.waiting_time
    }

    /// Advances one slot. `accepted` says whether the bid was at or above
    /// the slot's spot price. Returns what happened; calling after
    /// `Finished` is a no-op reporting the finished state.
    pub fn advance(&mut self, accepted: bool) -> SlotEvent {
        let slot = self.job.slot;
        if self.state == JobState::Finished {
            return SlotEvent {
                state: JobState::Finished,
                used: Hours::ZERO,
                interrupted: false,
                finished: false,
            };
        }
        if !accepted {
            return match self.state {
                JobState::Running => {
                    // Outbid mid-run: interruption. The *next* resume must
                    // replay the recovery overhead.
                    self.state = JobState::Idle;
                    self.interruptions += 1;
                    self.pending_recovery = self.job.recovery;
                    self.idle_time += slot;
                    SlotEvent {
                        state: JobState::Idle,
                        used: Hours::ZERO,
                        interrupted: true,
                        finished: false,
                    }
                }
                JobState::Idle => {
                    self.idle_time += slot;
                    SlotEvent {
                        state: JobState::Idle,
                        used: Hours::ZERO,
                        interrupted: false,
                        finished: false,
                    }
                }
                JobState::Waiting | JobState::Finished => {
                    self.waiting_time += slot;
                    SlotEvent {
                        state: JobState::Waiting,
                        used: Hours::ZERO,
                        interrupted: false,
                        finished: false,
                    }
                }
            };
        }
        // Accepted: the instance runs for this slot. Recovery replays
        // first, then productive work.
        self.state = JobState::Running;
        let mut budget = slot;
        let recover = self.pending_recovery.min(budget);
        self.pending_recovery -= recover;
        budget -= recover;
        let work = self.remaining_work.min(budget);
        self.remaining_work -= work;
        let used = recover + work;
        self.running_time += used;
        // Slot lengths like 5 min = 1/12 h are not exact in binary, so the
        // last sliver of work can be a few ulps instead of zero; treat
        // anything below a nanosecond as done.
        const EPS: Hours = Hours::new_const(1e-12);
        let finished = self.remaining_work <= EPS && self.pending_recovery <= EPS;
        if finished {
            self.state = JobState::Finished;
        }
        SlotEvent {
            state: self.state,
            used,
            interrupted: false,
            finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(ts_h: f64, tr_s: f64) -> JobSpec {
        JobSpec::builder(ts_h).recovery_secs(tr_s).build().unwrap()
    }

    #[test]
    fn uninterrupted_job_finishes_in_exact_slots() {
        let mut m = JobMonitor::new(job(0.25, 30.0)); // 3 slots of 5 min
        for i in 0..3 {
            let e = m.advance(true);
            assert_eq!(e.finished, i == 2, "slot {i}");
        }
        assert_eq!(m.state(), JobState::Finished);
        assert_eq!(m.interruptions(), 0);
        assert!((m.running_time().as_f64() - 0.25).abs() < 1e-12);
        assert_eq!(m.idle_time(), Hours::ZERO);
        // Further slots are no-ops.
        let e = m.advance(true);
        assert_eq!(e.used, Hours::ZERO);
        assert!(!e.finished);
    }

    #[test]
    fn partial_final_slot_counts_only_used_time() {
        let mut m = JobMonitor::new(JobSpec::builder(0.1).build().unwrap()); // 6 min
        m.advance(true); // 5 min done
        let e = m.advance(true); // 1 min more
        assert!(e.finished);
        assert!((e.used.as_minutes() - 1.0).abs() < 1e-9);
        assert!((m.running_time().as_minutes() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn waiting_before_first_acceptance() {
        let mut m = JobMonitor::new(job(0.25, 30.0));
        let e = m.advance(false);
        assert_eq!(e.state, JobState::Waiting);
        assert!(!e.interrupted, "pre-start rejection is not an interruption");
        assert_eq!(m.interruptions(), 0);
        assert!((m.waiting_time().as_minutes() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn interruption_adds_recovery_replay() {
        let mut m = JobMonitor::new(job(0.25, 60.0)); // 15 min work, 1 min recovery
        m.advance(true); // 5 min work done, 10 remain
        let e = m.advance(false); // interrupted
        assert!(e.interrupted);
        assert_eq!(e.state, JobState::Idle);
        m.advance(false); // still idle
        assert_eq!(m.interruptions(), 1);
        // Resume: first minute replays recovery, 4 min productive.
        let e = m.advance(true);
        assert_eq!(e.state, JobState::Running);
        assert!((m.remaining_work().as_minutes() - 6.0).abs() < 1e-9);
        // Two more slots: 5 min, then 1 min to finish.
        m.advance(true);
        let e = m.advance(true);
        assert!(e.finished);
        // Total on-instance time = 15 min work + 1 min recovery.
        assert!((m.running_time().as_minutes() - 16.0).abs() < 1e-9);
        assert!((m.idle_time().as_minutes() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn double_interruption_replays_recovery_each_time() {
        let mut m = JobMonitor::new(job(1.0, 30.0));
        m.advance(true);
        m.advance(false); // int 1
        m.advance(true);
        m.advance(false); // int 2
        assert_eq!(m.interruptions(), 2);
        // Finish it out.
        let mut guard = 0;
        while m.state() != JobState::Finished {
            m.advance(true);
            guard += 1;
            assert!(guard < 100);
        }
        // Running time = 60 min work + 2 × 0.5 min recovery.
        assert!((m.running_time().as_minutes() - 61.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_longer_than_slot_spans_slots() {
        let long_recovery = JobSpec::builder(1.0)
            .recovery(Hours::from_minutes(8.0))
            .build()
            .unwrap();
        let mut m = JobMonitor::new(long_recovery);
        m.advance(true); // 5 min work
        m.advance(false); // interrupted: 8 min recovery pending
        let e = m.advance(true); // 5 min of recovery replay, no work
        assert!((e.used.as_minutes() - 5.0).abs() < 1e-9);
        assert!((m.remaining_work().as_minutes() - 55.0).abs() < 1e-9);
        let e = m.advance(true); // 3 min recovery + 2 min work
        assert!((e.used.as_minutes() - 5.0).abs() < 1e-9);
        assert!((m.remaining_work().as_minutes() - 53.0).abs() < 1e-9);
    }

    #[test]
    fn elapsed_accounts_all_time() {
        let mut m = JobMonitor::new(job(0.25, 30.0));
        m.advance(false); // wait
        m.advance(true); // run
        m.advance(false); // idle (interrupted)
        m.advance(true); // run
        let total = m.elapsed().as_minutes();
        assert!((total - 20.0).abs() < 0.6, "{total}"); // 4 slots ≈ 20 min
    }
}
