//! Observers: pluggable sinks for the kernel's event stream.
//!
//! The kernel forwards every [`Event`] to each registered observer in
//! emission order. Observers are how sessions grow bookkeeping without the
//! drivers knowing: the billing ledger folds [`Event::Charged`] items into
//! a [`Bill`], the event log keeps everything for offline inspection, and
//! future metrics (utilisation, queue depth) slot in the same way.

use crate::billing::Bill;
use crate::event::Event;
use crate::EngineError;

/// A sink for simulation events.
pub trait Observer {
    /// Handles one event. An `Err` aborts the session — the kernel
    /// propagates it to the caller with the event already delivered to
    /// earlier observers (billing validation uses this to refuse
    /// fault-corrupted charges).
    ///
    /// # Errors
    ///
    /// Implementation-defined; the kernel stops the session on the first
    /// error.
    fn on_event(&mut self, event: &Event) -> Result<(), EngineError>;
}

/// Folds [`Event::Charged`] items into a [`Bill`]; ignores everything else.
#[derive(Debug, Clone, Default)]
pub struct BillingObserver {
    bill: Bill,
    validate: bool,
}

impl BillingObserver {
    /// A billing observer that validates every charge, refusing
    /// pathological items with [`EngineError::Billing`] (use on paths fed
    /// by untrusted or fault-injected data — mirrors `Bill::try_charge`).
    pub fn validated() -> Self {
        BillingObserver {
            bill: Bill::new(),
            validate: true,
        }
    }

    /// A billing observer that panics on pathological charges (mirrors
    /// `Bill::charge` — internal misuse, not survivable input).
    pub fn unvalidated() -> Self {
        BillingObserver {
            bill: Bill::new(),
            validate: false,
        }
    }

    /// The accumulated bill so far.
    pub fn bill(&self) -> &Bill {
        &self.bill
    }

    /// Consumes the observer, returning the accumulated bill.
    pub fn into_bill(self) -> Bill {
        self.bill
    }
}

impl Observer for BillingObserver {
    fn on_event(&mut self, event: &Event) -> Result<(), EngineError> {
        if let Event::Charged { item } = event {
            if self.validate {
                self.bill.try_charge(*item)?;
            } else {
                self.bill.charge(*item);
            }
        }
        Ok(())
    }
}

/// Records every event, in order.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, event: &Event) -> Result<(), EngineError> {
        self.events.push(*event);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::billing::{LineItem, UsageKind};
    use spotbid_market::units::{Hours, Price};

    fn item(price: f64) -> LineItem {
        LineItem {
            slot: 0,
            price: Price::new(price),
            duration: Hours::from_minutes(5.0),
            kind: UsageKind::Spot,
            tag: 1,
        }
    }

    #[test]
    fn billing_observer_folds_charges() {
        let mut obs = BillingObserver::validated();
        obs.on_event(&Event::PricePosted {
            slot: 0,
            price: Price::new(0.04),
        })
        .unwrap();
        obs.on_event(&Event::Charged { item: item(0.04) }).unwrap();
        obs.on_event(&Event::Charged { item: item(0.08) }).unwrap();
        let bill = obs.into_bill();
        assert_eq!(bill.items().len(), 2);
        assert!((bill.total().as_f64() - 0.12 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn validated_observer_refuses_nan_charge() {
        let mut obs = BillingObserver::validated();
        let r = obs.on_event(&Event::Charged {
            item: item(f64::NAN),
        });
        assert!(matches!(r, Err(EngineError::Billing { .. })));
        assert!(obs.bill().items().is_empty());
    }

    #[test]
    #[should_panic(expected = "pathological")]
    fn unvalidated_observer_panics_on_nan_charge() {
        let mut obs = BillingObserver::unvalidated();
        let _ = obs.on_event(&Event::Charged {
            item: item(f64::NAN),
        });
    }

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::new();
        log.on_event(&Event::PricePosted {
            slot: 0,
            price: Price::new(0.04),
        })
        .unwrap();
        log.on_event(&Event::Completed { slot: 3, tenant: 2 })
            .unwrap();
        let events = log.into_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::PricePosted { slot: 0, .. }));
        assert!(matches!(events[1], Event::Completed { slot: 3, tenant: 2 }));
    }
}
