//! The append-only event stream every layer emits instead of hand-rolled
//! bookkeeping.
//!
//! Events are facts about one slot of simulated time: a price was posted, a
//! tenant's bid was accepted, an instance was reclaimed, a charge accrued.
//! Drivers emit them as they advance; the kernel fans each event out to the
//! registered [`crate::Observer`]s in emission order, so any observer can
//! reconstruct the full session (the billing ledger is just the fold of the
//! [`Event::Charged`] items).
//!
//! `tenant` is the driver's billing tag — the same `u32` that appears in
//! [`LineItem::tag`], so bills and event logs join on it.

use crate::billing::LineItem;
use spotbid_market::units::Price;

/// One fact in a simulation session's append-only stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The source posted the slot's market price.
    PricePosted {
        /// Slot index.
        slot: u64,
        /// The posted (true) spot price.
        price: Price,
    },
    /// A tenant submitted a bid into the market.
    BidSubmitted {
        /// Slot index.
        slot: u64,
        /// The submitting tenant's billing tag.
        tenant: u32,
        /// The bid price.
        price: Price,
        /// Persistent (re-submitted when outbid) vs one-time.
        persistent: bool,
    },
    /// A tenant's bid was (re-)accepted: its instance started running.
    BidAccepted {
        /// Slot index.
        slot: u64,
        /// The tenant's billing tag.
        tenant: u32,
    },
    /// A running instance was interrupted (outbid) this slot.
    Interrupted {
        /// Slot index.
        slot: u64,
        /// The tenant's billing tag.
        tenant: u32,
    },
    /// The provider reclaimed the tenant's capacity (fault injection).
    Reclaimed {
        /// Slot index.
        slot: u64,
        /// The tenant's billing tag.
        tenant: u32,
    },
    /// A one-time bid below the posted price was rejected outright.
    Rejected {
        /// Slot index.
        slot: u64,
        /// The tenant's billing tag.
        tenant: u32,
    },
    /// A charge accrued to some tenant's bill.
    Charged {
        /// The billed line item (its `tag` identifies the tenant).
        item: LineItem,
    },
    /// A tenant's job finished.
    Completed {
        /// Slot index.
        slot: u64,
        /// The tenant's billing tag.
        tenant: u32,
    },
    /// The tenant's price feed produced no observation this slot.
    FeedOutage {
        /// Slot index.
        slot: u64,
        /// The tenant's billing tag.
        tenant: u32,
    },
}

impl Event {
    /// The tenant (billing tag) this event concerns, if any.
    /// [`Event::PricePosted`] is market-wide and has none.
    pub fn tenant(&self) -> Option<u32> {
        match self {
            Event::PricePosted { .. } => None,
            Event::BidSubmitted { tenant, .. }
            | Event::BidAccepted { tenant, .. }
            | Event::Interrupted { tenant, .. }
            | Event::Reclaimed { tenant, .. }
            | Event::Rejected { tenant, .. }
            | Event::Completed { tenant, .. }
            | Event::FeedOutage { tenant, .. } => Some(*tenant),
            Event::Charged { item } => Some(item.tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::billing::UsageKind;
    use spotbid_market::units::Hours;

    #[test]
    fn tenant_extraction() {
        assert_eq!(
            Event::PricePosted {
                slot: 0,
                price: Price::new(0.04)
            }
            .tenant(),
            None
        );
        assert_eq!(Event::BidAccepted { slot: 1, tenant: 7 }.tenant(), Some(7));
        let item = LineItem {
            slot: 2,
            price: Price::new(0.05),
            duration: Hours::from_minutes(5.0),
            kind: UsageKind::Spot,
            tag: 3,
        };
        assert_eq!(Event::Charged { item }.tenant(), Some(3));
    }
}
