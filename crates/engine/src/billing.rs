//! Billing: the auditable substitute for the paper's Amazon bills.
//!
//! §7's costs are read off real AWS bills ("to ensure accuracy, we use our
//! bills from Amazon to calculate the job costs"). Here every charge is a
//! line item — one per (partial) slot of usage — so experiments can report
//! exact costs and break them down by source (spot vs on-demand, master vs
//! slave). The ledger lives in the engine crate because every layer bills
//! through the kernel's [`crate::Event::Charged`] stream; `spotbid-client`
//! re-exports these types unchanged.

use crate::EngineError;
use spotbid_json::{FromJson, Json, JsonError, ToJson};
use spotbid_market::units::{Cost, Hours, Price};

/// What a line item pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsageKind {
    /// Spot-instance usage, charged at the slot's spot price.
    Spot,
    /// On-demand usage, charged at the on-demand price.
    OnDemand,
}

impl ToJson for UsageKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                UsageKind::Spot => "Spot",
                UsageKind::OnDemand => "OnDemand",
            }
            .to_owned(),
        )
    }
}

impl FromJson for UsageKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "Spot" => Ok(UsageKind::Spot),
            "OnDemand" => Ok(UsageKind::OnDemand),
            other => Err(JsonError::new(format!("unknown usage kind `{other}`"))),
        }
    }
}

/// One charge: a duration of usage at a price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineItem {
    /// Slot index when the usage occurred.
    pub slot: u64,
    /// Price charged per hour.
    pub price: Price,
    /// Duration charged.
    pub duration: Hours,
    /// Spot or on-demand usage.
    pub kind: UsageKind,
    /// Free-form tag, e.g. `"master"` / `"slave-3"`.
    pub tag: u32,
}

impl LineItem {
    /// The dollar amount of this item.
    pub fn amount(&self) -> Cost {
        self.price * self.duration
    }

    /// Validates the charge: price and duration must be finite and
    /// non-negative, so every accepted item has a non-negative, finite
    /// amount and bill totals stay monotone under accrual.
    ///
    /// # Errors
    ///
    /// [`EngineError::Billing`] describing the pathological field.
    pub fn validate(&self) -> Result<(), EngineError> {
        if !self.price.is_valid_price() {
            return Err(EngineError::Billing {
                what: format!(
                    "invalid price {:?} in charge at slot {}",
                    self.price, self.slot
                ),
            });
        }
        if !self.duration.is_valid_duration() {
            return Err(EngineError::Billing {
                what: format!(
                    "invalid duration {:?} in charge at slot {}",
                    self.duration, self.slot
                ),
            });
        }
        Ok(())
    }
}

impl ToJson for LineItem {
    fn to_json(&self) -> Json {
        Json::Obj(
            [
                ("slot".to_owned(), self.slot.to_json()),
                ("price".to_owned(), self.price.to_json()),
                ("duration".to_owned(), self.duration.to_json()),
                ("kind".to_owned(), self.kind.to_json()),
                ("tag".to_owned(), self.tag.to_json()),
            ]
            .into(),
        )
    }
}

impl FromJson for LineItem {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(LineItem {
            slot: u64::from_json(v.field("slot")?)?,
            price: Price::from_json(v.field("price")?)?,
            duration: Hours::from_json(v.field("duration")?)?,
            kind: UsageKind::from_json(v.field("kind")?)?,
            tag: u32::from_json(v.field("tag")?)?,
        })
    }
}

/// An accumulating bill.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bill {
    items: Vec<LineItem>,
}

impl ToJson for Bill {
    fn to_json(&self) -> Json {
        Json::Obj([("items".to_owned(), self.items.to_json())].into())
    }
}

impl FromJson for Bill {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Bill {
            items: Vec::from_json(v.field("items")?)?,
        })
    }
}

impl Bill {
    /// An empty bill.
    pub fn new() -> Self {
        Bill::default()
    }

    /// Records a validated charge, refusing pathological items.
    ///
    /// # Errors
    ///
    /// [`EngineError::Billing`] when the item's price or duration is NaN,
    /// infinite, or negative; the bill is left untouched.
    pub fn try_charge(&mut self, item: LineItem) -> Result<(), EngineError> {
        item.validate()?;
        self.items.push(item);
        Ok(())
    }

    /// Records a charge.
    ///
    /// # Panics
    ///
    /// Panics on a pathological item (NaN/negative price or duration) —
    /// internal misuse, not survivable input. Paths fed by untrusted or
    /// fault-injected data must use [`Bill::try_charge`] instead.
    pub fn charge(&mut self, item: LineItem) {
        self.try_charge(item).expect("pathological line item");
    }

    /// Validated convenience: records spot usage.
    ///
    /// # Errors
    ///
    /// Same contract as [`Bill::try_charge`].
    pub fn try_charge_spot(
        &mut self,
        slot: u64,
        price: Price,
        duration: Hours,
        tag: u32,
    ) -> Result<(), EngineError> {
        self.try_charge(LineItem {
            slot,
            price,
            duration,
            kind: UsageKind::Spot,
            tag,
        })
    }

    /// Validated convenience: records on-demand usage.
    ///
    /// # Errors
    ///
    /// Same contract as [`Bill::try_charge`].
    pub fn try_charge_on_demand(
        &mut self,
        slot: u64,
        price: Price,
        duration: Hours,
        tag: u32,
    ) -> Result<(), EngineError> {
        self.try_charge(LineItem {
            slot,
            price,
            duration,
            kind: UsageKind::OnDemand,
            tag,
        })
    }

    /// Convenience: records spot usage (panicking on pathological input,
    /// like [`Bill::charge`]).
    pub fn charge_spot(&mut self, slot: u64, price: Price, duration: Hours, tag: u32) {
        self.try_charge_spot(slot, price, duration, tag)
            .expect("pathological spot charge");
    }

    /// Convenience: records on-demand usage (panicking on pathological
    /// input, like [`Bill::charge`]).
    pub fn charge_on_demand(&mut self, slot: u64, price: Price, duration: Hours, tag: u32) {
        self.try_charge_on_demand(slot, price, duration, tag)
            .expect("pathological on-demand charge");
    }

    /// All line items, in charge order.
    pub fn items(&self) -> &[LineItem] {
        &self.items
    }

    /// Total amount.
    pub fn total(&self) -> Cost {
        self.items.iter().map(LineItem::amount).sum()
    }

    /// Total for one usage kind.
    pub fn total_for_kind(&self, kind: UsageKind) -> Cost {
        self.items
            .iter()
            .filter(|i| i.kind == kind)
            .map(LineItem::amount)
            .sum()
    }

    /// Total for one tag (e.g. one node of a MapReduce job).
    pub fn total_for_tag(&self, tag: u32) -> Cost {
        self.items
            .iter()
            .filter(|i| i.tag == tag)
            .map(LineItem::amount)
            .sum()
    }

    /// Per-tag totals for every tag in `0..n`, in one pass over the bill.
    ///
    /// Bit-identical to calling [`Bill::total_for_tag`] once per tag: each
    /// tag's items are accumulated in charge order either way, and float
    /// addition order is all that matters. Items tagged `>= n` are ignored.
    /// This is the O(items + n) path the closed loop uses at 10⁵–10⁶
    /// tenants, where a scan per tag would be quadratic.
    pub fn totals_by_tag(&self, n: usize) -> Vec<Cost> {
        let mut totals = vec![Cost::ZERO; n];
        for i in &self.items {
            if let Some(t) = totals.get_mut(i.tag as usize) {
                *t += i.amount();
            }
        }
        totals
    }

    /// Total charged duration.
    pub fn total_duration(&self) -> Hours {
        self.items.iter().map(|i| i.duration).sum()
    }

    /// Merges another bill into this one.
    pub fn absorb(&mut self, other: Bill) {
        self.items.extend(other.items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_breakdowns() {
        let mut b = Bill::new();
        let slot = Hours::from_minutes(5.0);
        b.charge_spot(0, Price::new(0.036), slot, 0);
        b.charge_spot(1, Price::new(0.048), slot, 1);
        b.charge_on_demand(2, Price::new(0.350), Hours::new(1.0), 0);
        let expected = 0.036 / 12.0 + 0.048 / 12.0 + 0.35;
        assert!((b.total().as_f64() - expected).abs() < 1e-12);
        assert!(
            (b.total_for_kind(UsageKind::Spot).as_f64() - (0.036 + 0.048) / 12.0).abs() < 1e-12
        );
        assert!((b.total_for_kind(UsageKind::OnDemand).as_f64() - 0.35).abs() < 1e-12);
        assert!((b.total_for_tag(0).as_f64() - (0.036 / 12.0 + 0.35)).abs() < 1e-12);
        assert!((b.total_duration().as_f64() - (2.0 / 12.0 + 1.0)).abs() < 1e-12);
        assert_eq!(b.items().len(), 3);
    }

    #[test]
    fn totals_by_tag_is_bit_identical_to_per_tag_scans() {
        // Interleave tags with awkward magnitudes so any change in float
        // accumulation order would actually show up in the bits.
        let mut b = Bill::new();
        let slot = Hours::from_minutes(5.0);
        for i in 0..200u32 {
            let tag = i % 7;
            b.charge_spot(
                u64::from(i),
                Price::new(0.01 + f64::from(i) * 0.003_7),
                slot,
                tag,
            );
            if i % 3 == 0 {
                b.charge_on_demand(u64::from(i), Price::new(0.35), Hours::new(0.1), tag);
            }
        }
        // One out-of-range tag: ignored by the vectorized pass.
        b.charge_spot(999, Price::new(0.2), slot, 7);
        let totals = b.totals_by_tag(7);
        assert_eq!(totals.len(), 7);
        for (tag, total) in totals.iter().enumerate() {
            let scanned = b.total_for_tag(tag as u32);
            assert_eq!(
                total.as_f64().to_bits(),
                scanned.as_f64().to_bits(),
                "tag {tag}: one-pass total diverged from the scan"
            );
        }
        assert!(b.totals_by_tag(0).is_empty());
    }

    #[test]
    fn empty_bill() {
        let b = Bill::new();
        assert_eq!(b.total(), Cost::ZERO);
        assert_eq!(b.total_duration(), Hours::ZERO);
        assert!(b.items().is_empty());
    }

    #[test]
    fn absorb_merges() {
        let mut a = Bill::new();
        a.charge_spot(0, Price::new(0.04), Hours::from_minutes(5.0), 0);
        let mut b = Bill::new();
        b.charge_spot(1, Price::new(0.05), Hours::from_minutes(5.0), 1);
        a.absorb(b);
        assert_eq!(a.items().len(), 2);
        assert!((a.total().as_f64() - 0.09 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn pathological_charges_are_refused() {
        let mut b = Bill::new();
        b.charge_spot(0, Price::new(0.04), Hours::from_minutes(5.0), 0);
        let before = b.clone();
        for (price, duration) in [
            (f64::NAN, 0.1),
            (f64::INFINITY, 0.1),
            (-0.04, 0.1),
            (0.04, f64::NAN),
            (0.04, -1.0),
            (0.04, f64::INFINITY),
        ] {
            let r = b.try_charge_spot(1, Price::new(price), Hours::new(duration), 0);
            assert!(
                matches!(r, Err(EngineError::Billing { .. })),
                "({price}, {duration}) accepted"
            );
            let r = b.try_charge_on_demand(1, Price::new(price), Hours::new(duration), 0);
            assert!(r.is_err(), "({price}, {duration}) accepted on-demand");
        }
        // Refused charges leave the bill untouched.
        assert_eq!(b, before);
        // Zero price/duration are legitimate (free slots, empty usage).
        assert!(b.try_charge_spot(2, Price::ZERO, Hours::ZERO, 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "pathological")]
    fn infallible_charge_panics_on_nan() {
        let mut b = Bill::new();
        b.charge_spot(0, Price::new(f64::NAN), Hours::new(0.1), 0);
    }

    #[test]
    fn accrual_keeps_totals_monotone_and_finite() {
        let mut b = Bill::new();
        let mut prev = Cost::ZERO;
        for i in 0..100u64 {
            b.try_charge_spot(
                i,
                Price::new(0.01 * (i % 7) as f64),
                Hours::from_minutes(5.0),
                0,
            )
            .unwrap();
            let t = b.total();
            assert!(t.as_f64().is_finite());
            assert!(t >= prev, "total regressed at item {i}");
            prev = t;
        }
    }

    #[test]
    fn json_roundtrip() {
        let mut b = Bill::new();
        b.charge_spot(3, Price::new(0.04), Hours::from_minutes(5.0), 7);
        let s = spotbid_json::encode(&b);
        let back: Bill = spotbid_json::decode(&s).unwrap();
        assert_eq!(b, back);
        assert!(s.contains(r#""kind":"Spot""#), "{s}");
    }
}
