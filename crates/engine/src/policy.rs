//! Bid policies: how a tenant turns observed prices into a bid, online.
//!
//! The paper's Sections 5–6 strategies decide a bid once from a fixed
//! history; inside the kernel the decision point recurs — a closed-loop
//! tenant re-decides every time its bid is terminated, against the history
//! *it has observed so far*. [`BidPolicy`] is that online interface, and
//! `spotbid_core::BiddingStrategy` plugs in directly (each call re-fits the
//! empirical price model to the window it is handed).

use crate::EngineError;
use spotbid_core::{BidDecision, BiddingStrategy, JobSpec};
use spotbid_market::units::Price;
use spotbid_trace::SpotPriceHistory;

/// An online bidding policy: consulted whenever the tenant must (re-)bid.
pub trait BidPolicy {
    /// Decides a bid for `job` from the prices `observed` so far, with
    /// `on_demand` as the outside option.
    ///
    /// # Errors
    ///
    /// Policy-specific; a failed decision aborts the tenant's session.
    fn decide(
        &mut self,
        observed: &SpotPriceHistory,
        job: &JobSpec,
        on_demand: Price,
    ) -> Result<BidDecision, EngineError>;
}

/// Every offline strategy is trivially an online policy: re-resolve it
/// against the currently-observed window at each decision point.
impl BidPolicy for BiddingStrategy {
    fn decide(
        &mut self,
        observed: &SpotPriceHistory,
        job: &JobSpec,
        on_demand: Price,
    ) -> Result<BidDecision, EngineError> {
        BiddingStrategy::decide(self, observed, job, on_demand).map_err(EngineError::Core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_market::units::Hours;

    #[test]
    fn strategy_is_an_online_policy() {
        let h = SpotPriceHistory::new(
            Hours::from_minutes(5.0),
            (0..600)
                .map(|i| Price::new(0.03 + 0.01 * ((i % 7) as f64)))
                .collect(),
        )
        .unwrap();
        let job = JobSpec::builder(1.0).build().unwrap();
        let od = Price::new(0.35);
        let mut policy: Box<dyn BidPolicy> = Box::new(BiddingStrategy::FixedBid(Price::new(0.1)));
        let d = policy.decide(&h, &job, od).unwrap();
        assert!(matches!(
            d,
            BidDecision::Spot {
                persistent: true,
                ..
            }
        ));
        let mut od_policy = BiddingStrategy::OnDemand;
        let d = BidPolicy::decide(&mut od_policy, &h, &job, od).unwrap();
        assert!(matches!(d, BidDecision::OnDemand { .. }));
    }
}
