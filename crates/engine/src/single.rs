//! Single-job sessions: one bidder replaying a price trace under the exact
//! EC2 spot rules of §3.2, driven by the kernel.
//!
//! The user here is a price-taker (the paper's standing assumption): the
//! price series is given, and a [`SpotJobDriver`] walks it slot by slot,
//! driving a [`crate::job_monitor::JobMonitor`] and emitting charges into
//! the billing observer. One-time requests exit on the first rejection
//! after starting (and are rejected outright if the first slot's price is
//! above the bid); persistent requests ride out interruptions.
//!
//! These free functions are the engine-side implementations behind
//! `spotbid_client::runtime::{run_job, run_job_with_fallback,
//! run_job_resilient}`; the client re-exports them as thin adapters. The
//! parity tests in `tests/` prove the kernel-driven form is bit-identical
//! to the pre-kernel hand-rolled loops.

use crate::billing::{Bill, LineItem, UsageKind};
use crate::event::Event;
use crate::job_monitor::{JobMonitor, JobState};
use crate::kernel::{DriverStatus, JobDriver, Kernel};
use crate::observer::BillingObserver;
use crate::source::{MarketView, PriceSource, SlotPrice, ViewSource};
use crate::EngineError;
use spotbid_core::{BidDecision, JobSpec};
use spotbid_market::units::{Cost, Hours, Price};
use spotbid_numerics::backoff::BackoffConfig;
use spotbid_trace::SpotPriceHistory;

/// How a job's run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// All work completed on spot instances.
    Completed,
    /// One-time request terminated (or rejected) before completion.
    TerminatedEarly,
    /// The price series ended before the job could finish.
    HistoryExhausted,
    /// Ran on an on-demand instance (no spot involvement).
    OnDemand,
    /// Started on spot, was terminated/stranded, and finished the
    /// remainder on an on-demand instance (§5.1's "users may default to
    /// on-demand instances if the jobs are not completed").
    CompletedWithFallback,
    /// A resilient run hit its fault budget (too many reclamations or too
    /// long a price-feed outage) and gracefully degraded: the remaining
    /// work was finished on an on-demand instance.
    DegradedToOnDemand,
    /// A resilient run lost its price feed for longer than the recovery
    /// policy tolerates and had no on-demand fallback: the client can no
    /// longer manage its bid and gives up.
    FeedLost,
}

/// Full accounting of one job run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// How the run ended.
    pub status: RunStatus,
    /// Wall-clock time from submission to completion (or to the end of the
    /// run for non-completed jobs).
    pub completion_time: Hours,
    /// Time on instances (execution + recovery replays).
    pub running_time: Hours,
    /// Idle time (outbid after starting) plus pre-start waiting.
    pub idle_time: Hours,
    /// Interruptions suffered.
    pub interruptions: u32,
    /// Total cost.
    pub cost: Cost,
    /// Itemized charges.
    pub bill: Bill,
    /// The price actually bid (`None` for on-demand runs).
    pub bid: Option<Price>,
    /// Execution work still undone when the run ended (zero when
    /// completed).
    pub remaining_work: Hours,
    /// Bid-independent capacity reclamations suffered while running
    /// (always zero outside the resilient runtime).
    pub reclamations: u32,
    /// Slots during which the price feed was unobservable (always zero
    /// outside the resilient runtime).
    pub feed_outages: u32,
}

impl JobOutcome {
    /// Whether the job's work was completed (on spot or on demand).
    pub fn completed(&self) -> bool {
        matches!(
            self.status,
            RunStatus::Completed
                | RunStatus::OnDemand
                | RunStatus::CompletedWithFallback
                | RunStatus::DegradedToOnDemand
        )
    }
}

/// How much degradation a resilient run tolerates before giving up on
/// spot, and what it falls back to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Consecutive feed-outage slots tolerated before the client declares
    /// the feed lost.
    pub max_feed_outage_slots: u32,
    /// Capacity reclamations tolerated before the client abandons spot.
    pub max_reclaims: u32,
    /// On-demand price to finish the job at when the fault budget is
    /// exhausted (or the run otherwise fails to complete). `None` means no
    /// fallback: the run reports its failure status instead.
    pub on_demand_fallback: Option<Price>,
}

impl RecoveryPolicy {
    /// Derives a policy from a reconnect-backoff schedule: the slot-driven
    /// replay tolerates one feed-outage slot per scheduled reconnect
    /// attempt, declaring the feed lost exactly when a real client sleeping
    /// through `cfg`'s delays (the serve crate's `FeedClient`) would have
    /// exhausted its retries. This is what keeps the simulated budget and
    /// the wall-clock reconnect loop a single implementation — change the
    /// schedule in [`BackoffConfig`], and both move together.
    pub fn from_backoff(cfg: &BackoffConfig) -> Self {
        RecoveryPolicy {
            max_feed_outage_slots: cfg.max_retries,
            max_reclaims: 4,
            on_demand_fallback: None,
        }
    }
}

impl Default for RecoveryPolicy {
    /// The default feed-outage budget is not a free-standing constant: it
    /// is the retry count of the workspace's default reconnect schedule,
    /// [`BackoffConfig::default`] (3 retries, 100 ms doubling to a 2 s cap).
    fn default() -> Self {
        Self::from_backoff(&BackoffConfig::default())
    }
}

/// One spot bidder advanced by the kernel: the §3.2 accept/terminate rules
/// plus the resilient runtime's fault budgets.
///
/// On a fault-free view with a [`RecoveryPolicy::default`] this reduces
/// exactly to the plain §3.2 replay (observation equals truth, no
/// reclamations, no outages), which is why one driver serves both
/// [`run_job`] and [`run_job_resilient`].
#[derive(Debug)]
pub struct SpotJobDriver {
    monitor: JobMonitor,
    bid: Price,
    persistent: bool,
    policy: RecoveryPolicy,
    tag: u32,
    status: RunStatus,
    reclamations: u32,
    feed_outages: u32,
    consecutive_outages: u32,
}

impl SpotJobDriver {
    /// A driver for one (validated) job bidding `bid`.
    pub fn new(
        job: JobSpec,
        bid: Price,
        persistent: bool,
        policy: RecoveryPolicy,
        tag: u32,
    ) -> Self {
        SpotJobDriver {
            monitor: JobMonitor::new(job),
            bid,
            persistent,
            policy,
            tag,
            status: RunStatus::HistoryExhausted,
            reclamations: 0,
            feed_outages: 0,
            consecutive_outages: 0,
        }
    }

    /// The run status so far (final once the session stops).
    pub fn status(&self) -> RunStatus {
        self.status
    }

    /// Folds the driver's final state and the accumulated bill into a
    /// [`JobOutcome`].
    pub fn into_outcome(self, bill: Bill) -> JobOutcome {
        JobOutcome {
            status: self.status,
            completion_time: self.monitor.elapsed(),
            running_time: self.monitor.running_time(),
            idle_time: self.monitor.idle_time() + self.monitor.waiting_time(),
            interruptions: self.monitor.interruptions(),
            cost: bill.total(),
            bill,
            bid: Some(self.bid),
            remaining_work: self.monitor.remaining_work(),
            reclamations: self.reclamations,
            feed_outages: self.feed_outages,
        }
    }
}

impl<S: PriceSource<Quote = SlotPrice>> JobDriver<S> for SpotJobDriver {
    fn on_slot(
        &mut self,
        slot: u64,
        quote: &SlotPrice,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError> {
        let tenant = self.tag;
        let SlotPrice {
            truth,
            observed,
            reclaimed,
        } = *quote;
        if observed.is_none() {
            self.feed_outages += 1;
            self.consecutive_outages += 1;
            emit(Event::FeedOutage { slot, tenant });
            if self.consecutive_outages > self.policy.max_feed_outage_slots {
                if self.policy.on_demand_fallback.is_none() {
                    self.status = RunStatus::FeedLost;
                }
                return Ok(DriverStatus::Done);
            }
        } else {
            self.consecutive_outages = 0;
        }
        let pre_state = self.monitor.state();
        let started = pre_state != JobState::Waiting;
        if reclaimed && pre_state == JobState::Running {
            self.reclamations += 1;
            emit(Event::Reclaimed { slot, tenant });
        }
        let provider_ok = self.bid >= truth && !reclaimed;
        let accepted = if self.persistent {
            // Self-pause on an observed spike; ride through outages (the
            // provider still honours the standing request).
            provider_ok && observed.is_none_or(|o| self.bid >= o)
        } else {
            provider_ok
        };
        if !accepted && !self.persistent {
            if started {
                // A running/idle one-time request with the price above its
                // bid is terminated by the provider and exits the system.
                let event = self.monitor.advance(false);
                if event.interrupted {
                    emit(Event::Interrupted { slot, tenant });
                }
            } else {
                // A one-time request submitted below the current spot
                // price is rejected outright (§3.2).
                emit(Event::Rejected { slot, tenant });
            }
            self.status = RunStatus::TerminatedEarly;
            return Ok(DriverStatus::Done);
        }
        let event = self.monitor.advance(accepted);
        if accepted && pre_state != JobState::Running {
            emit(Event::BidAccepted { slot, tenant });
        }
        if event.interrupted {
            emit(Event::Interrupted { slot, tenant });
        }
        if event.used > Hours::ZERO {
            // Charged at the *true* spot price for the time actually used
            // (the model's per-slot charging; partial final slots are
            // charged pro-rata).
            emit(Event::Charged {
                item: LineItem {
                    slot,
                    price: truth,
                    duration: event.used,
                    kind: UsageKind::Spot,
                    tag: tenant,
                },
            });
        }
        if event.finished {
            self.status = RunStatus::Completed;
            emit(Event::Completed { slot, tenant });
            return Ok(DriverStatus::Done);
        }
        if self.policy.on_demand_fallback.is_some() && self.reclamations > self.policy.max_reclaims
        {
            return Ok(DriverStatus::Done);
        }
        Ok(DriverStatus::Active)
    }
}

/// An on-demand run: the whole job at `price`, no spot involvement.
fn on_demand_outcome(
    price: Price,
    job: &JobSpec,
    tag: u32,
    validated: bool,
) -> Result<JobOutcome, EngineError> {
    let mut bill = Bill::new();
    if validated {
        bill.try_charge_on_demand(0, price, job.execution, tag)?;
    } else {
        bill.charge_on_demand(0, price, job.execution, tag);
    }
    Ok(JobOutcome {
        status: RunStatus::OnDemand,
        completion_time: job.execution,
        running_time: job.execution,
        idle_time: Hours::ZERO,
        interruptions: 0,
        cost: bill.total(),
        bill,
        bid: None,
        remaining_work: Hours::ZERO,
        reclamations: 0,
        feed_outages: 0,
    })
}

/// Runs a spot session over `view` through the kernel.
fn run_spot_session<M: MarketView + ?Sized>(
    view: &M,
    bid: Price,
    persistent: bool,
    job: &JobSpec,
    tag: u32,
    policy: RecoveryPolicy,
    validated: bool,
) -> Result<JobOutcome, EngineError> {
    let mut driver = SpotJobDriver::new(*job, bid, persistent, policy, tag);
    let mut billing = if validated {
        BillingObserver::validated()
    } else {
        BillingObserver::unvalidated()
    };
    let mut kernel = Kernel::new(job.slot, ViewSource::new(view));
    kernel.run(&mut [&mut driver], &mut [&mut billing], None)?;
    Ok(driver.into_outcome(billing.into_bill()))
}

/// Runs a job against `future` starting at its first slot, under the given
/// decision. The billing `tag` labels line items (use distinct tags for
/// MapReduce nodes).
///
/// # Errors
///
/// [`EngineError::Core`] for invalid jobs.
pub fn run_job(
    future: &SpotPriceHistory,
    decision: BidDecision,
    job: &JobSpec,
    tag: u32,
) -> Result<JobOutcome, EngineError> {
    job.validate()?;
    match decision {
        BidDecision::OnDemand { price } => on_demand_outcome(price, job, tag, false),
        BidDecision::Spot { price, persistent } => {
            // A clean history never has outages or reclamations, so the
            // default fault budgets are inert and this is the plain §3.2
            // replay.
            run_spot_session(
                future,
                price,
                persistent,
                job,
                tag,
                RecoveryPolicy::default(),
                false,
            )
        }
    }
}

/// Runs a job with the §5.1 fallback: a spot run that ends without
/// completing (a terminated one-time request, or a horizon running out)
/// finishes its remaining work on an on-demand instance at `on_demand`,
/// paying one extra recovery replay if the job had already started.
///
/// # Errors
///
/// Same contract as [`run_job`].
pub fn run_job_with_fallback(
    future: &SpotPriceHistory,
    decision: BidDecision,
    job: &JobSpec,
    tag: u32,
    on_demand: Price,
) -> Result<JobOutcome, EngineError> {
    let mut out = run_job(future, decision, job, tag)?;
    if out.completed() {
        return Ok(out);
    }
    let started = out.running_time > Hours::ZERO;
    let fallback_work = out.remaining_work + if started { job.recovery } else { Hours::ZERO };
    out.bill.charge_on_demand(
        future.len() as u64, // after the spot portion
        on_demand,
        fallback_work,
        tag,
    );
    out.status = RunStatus::CompletedWithFallback;
    out.completion_time += fallback_work;
    out.running_time += fallback_work;
    out.cost = out.bill.total();
    out.remaining_work = Hours::ZERO;
    Ok(out)
}

/// Runs a job against a possibly-faulty [`MarketView`] under a
/// [`RecoveryPolicy`]: the hardened counterpart of [`run_job`].
///
/// Semantics, chosen so that a fault-free view reproduces [`run_job`]
/// **exactly** (the chaos suite asserts bit-equality):
///
/// * Provider acceptance uses the *true* price (`bid >= truth`) and is
///   vetoed by a capacity reclamation.
/// * A persistent client additionally self-pauses (checkpoints and lets
///   the slot go idle) whenever it *observes* a price above its bid —
///   prudent when the observation may be stale. With a clean feed,
///   observation equals truth, so this changes nothing.
/// * Feed outages (no observable price) are counted; once more than
///   `max_feed_outage_slots` run consecutively, the client can no longer
///   manage its bid and stops — degrading to on-demand if the policy has a
///   fallback, else ending with [`RunStatus::FeedLost`].
/// * Reclamations while running are counted; past `max_reclaims` (with a
///   fallback configured) the client abandons spot and degrades.
/// * With a fallback configured, any non-completed ending degrades to
///   on-demand (finishing `remaining_work`, plus one recovery replay if
///   the job had started), mirroring [`run_job_with_fallback`].
///
/// All charges go through the validated billing path, so a view that
/// manufactures pathological prices yields [`EngineError::Billing`], never
/// a corrupt bill.
///
/// # Errors
///
/// [`EngineError::Core`] for invalid jobs, [`EngineError::Billing`] for
/// pathological charges surfaced by the view.
pub fn run_job_resilient<M: MarketView>(
    view: &M,
    decision: BidDecision,
    job: &JobSpec,
    tag: u32,
    policy: &RecoveryPolicy,
) -> Result<JobOutcome, EngineError> {
    job.validate()?;
    let (bid, persistent) = match decision {
        BidDecision::OnDemand { price } => return on_demand_outcome(price, job, tag, true),
        BidDecision::Spot { price, persistent } => (price, persistent),
    };
    let mut out = run_spot_session(view, bid, persistent, job, tag, *policy, true)?;
    if !out.completed() && out.status != RunStatus::FeedLost {
        if let Some(od) = policy.on_demand_fallback {
            let started = out.running_time > Hours::ZERO;
            let fallback_work =
                out.remaining_work + if started { job.recovery } else { Hours::ZERO };
            out.bill
                .try_charge_on_demand(view.len() as u64, od, fallback_work, tag)?;
            out.status = RunStatus::DegradedToOnDemand;
            out.completion_time += fallback_work;
            out.running_time += fallback_work;
            out.cost = out.bill.total();
            out.remaining_work = Hours::ZERO;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_trace::history::default_slot_len;

    fn hist(prices: &[f64]) -> SpotPriceHistory {
        SpotPriceHistory::new(
            default_slot_len(),
            prices.iter().map(|&p| Price::new(p)).collect(),
        )
        .unwrap()
    }

    fn job(ts: f64, tr_s: f64) -> JobSpec {
        JobSpec::builder(ts).recovery_secs(tr_s).build().unwrap()
    }

    fn spot(bid: f64, persistent: bool) -> BidDecision {
        BidDecision::Spot {
            price: Price::new(bid),
            persistent,
        }
    }

    #[test]
    fn on_demand_run() {
        let h = hist(&[0.05]);
        let j = job(1.0, 0.0);
        let out = run_job(
            &h,
            BidDecision::OnDemand {
                price: Price::new(0.35),
            },
            &j,
            0,
        )
        .unwrap();
        assert_eq!(out.status, RunStatus::OnDemand);
        assert!((out.cost.as_f64() - 0.35).abs() < 1e-12);
        assert_eq!(out.bid, None);
        assert!(out.completed());
    }

    #[test]
    fn smooth_spot_run_charges_spot_prices() {
        let h = hist(&[0.03, 0.04, 0.05, 0.06]);
        let j = job(0.25, 30.0);
        let out = run_job(&h, spot(0.10, true), &j, 0).unwrap();
        assert_eq!(out.status, RunStatus::Completed);
        assert_eq!(out.interruptions, 0);
        let expected = (0.03 + 0.04 + 0.05) / 12.0;
        assert!((out.cost.as_f64() - expected).abs() < 1e-12, "{}", out.cost);
    }

    #[test]
    fn onetime_rejected_at_submission() {
        let h = hist(&[0.20, 0.03]);
        let j = job(0.25, 0.0);
        let out = run_job(&h, spot(0.10, false), &j, 0).unwrap();
        assert_eq!(out.status, RunStatus::TerminatedEarly);
        assert_eq!(out.cost, Cost::ZERO);
    }

    #[test]
    fn fallback_completes_terminated_onetime() {
        let h = hist(&[0.03, 0.20, 0.20]);
        let j = job(0.25, 60.0);
        let out = run_job_with_fallback(&h, spot(0.10, false), &j, 0, Price::new(0.35)).unwrap();
        assert_eq!(out.status, RunStatus::CompletedWithFallback);
        let expect = 0.03 * (5.0 / 60.0) + 0.35 * (11.0 / 60.0);
        assert!((out.cost.as_f64() - expect).abs() < 1e-12, "{}", out.cost);
    }

    #[test]
    fn recovery_policy_budget_derives_from_backoff_schedule() {
        // The default budget IS the default reconnect schedule's retry count.
        let default_cfg = BackoffConfig::default();
        assert_eq!(
            RecoveryPolicy::default().max_feed_outage_slots,
            default_cfg.max_retries
        );
        assert_eq!(
            RecoveryPolicy::default(),
            RecoveryPolicy::from_backoff(&default_cfg)
        );
        // A longer schedule buys a proportionally longer outage budget.
        let patient = BackoffConfig {
            max_retries: 7,
            ..BackoffConfig::default()
        };
        assert_eq!(
            RecoveryPolicy::from_backoff(&patient).max_feed_outage_slots,
            7
        );
    }

    #[test]
    fn resilient_equals_plain_on_clean_history() {
        let h = hist(&[0.03, 0.20, 0.20, 0.03, 0.03, 0.03, 0.03]);
        let j = job(0.25, 60.0);
        let plain = run_job(&h, spot(0.10, true), &j, 0).unwrap();
        let resilient =
            run_job_resilient(&h, spot(0.10, true), &j, 0, &RecoveryPolicy::default()).unwrap();
        assert_eq!(plain, resilient);
    }

    #[test]
    fn driver_emits_lifecycle_events() {
        use crate::observer::EventLog;
        let h = hist(&[0.20, 0.03, 0.20, 0.03, 0.03]);
        let j = job(0.15, 60.0); // 9 min: needs 2 accepted slots
        let mut driver =
            SpotJobDriver::new(j, Price::new(0.10), true, RecoveryPolicy::default(), 5);
        let mut log = EventLog::new();
        let mut kernel = Kernel::new(j.slot, ViewSource::new(&h));
        kernel
            .run(&mut [&mut driver], &mut [&mut log], None)
            .unwrap();
        let kinds: Vec<&Event> = log
            .events()
            .iter()
            .filter(|e| e.tenant() == Some(5))
            .collect();
        // Waits (slot 0), accepted (slot 1), interrupted (slot 2),
        // re-accepted (slot 3), completed (slot 4).
        assert!(
            matches!(kinds[0], Event::BidAccepted { slot: 1, .. }),
            "{kinds:?}"
        );
        assert!(kinds
            .iter()
            .any(|e| matches!(e, Event::Interrupted { slot: 2, .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, Event::BidAccepted { slot: 3, .. })));
        assert!(kinds.iter().any(|e| matches!(e, Event::Completed { .. })));
        assert!(kinds.iter().any(|e| matches!(e, Event::Charged { .. })));
    }
}
