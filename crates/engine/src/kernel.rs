//! The kernel: the one slot loop every session in the workspace runs on.
//!
//! One iteration of [`Kernel::run`] is one pricing slot:
//!
//! 1. stop if the slot budget is spent or every driver is done;
//! 2. give each active driver its `before_slot` hook (bid submission in
//!    closed-loop mode);
//! 3. ask the [`PriceSource`] to post a quote for the aggregate demand —
//!    `None` stops the session (trace exhausted);
//! 4. advance each active driver one slot with the quote;
//! 5. tick the clock.
//!
//! Drivers and the source emit [`Event`]s through a buffer that the kernel
//! flushes to every [`Observer`] after each hook, in emission order. An
//! observer error aborts the session *after* the flush completes, so the
//! billing ledger has already recorded everything up to (not including) the
//! refused charge — matching the legacy `try_charge` semantics.

use crate::clock::SimClock;
use crate::event::Event;
use crate::observer::Observer;
use crate::source::PriceSource;
use crate::EngineError;

/// Whether a driver wants more slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverStatus {
    /// Keep advancing this driver.
    Active,
    /// The driver is finished; skip it for the rest of the session.
    Done,
}

/// Why a session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every driver reported [`DriverStatus::Done`].
    AllDone,
    /// The price source returned `None` (e.g. end of trace).
    SourceExhausted,
    /// The `max_slots` budget was spent.
    MaxSlots,
}

/// A per-tenant component advanced one slot at a time.
pub trait JobDriver<S: PriceSource> {
    /// How many units of capacity this driver demands while active.
    /// Aggregate demand across drivers is handed to [`PriceSource::post`]
    /// (it moves the price in the endogenous Section-4 market).
    fn demand(&self) -> usize {
        1
    }

    /// Capacity this driver demands from market `m` when the source quotes
    /// several markets ([`PriceSource::markets`] > 1). The default places
    /// the whole [`JobDriver::demand`] in market 0, so single-market
    /// drivers never need to override; portfolio drivers split it.
    fn demand_in(&self, market: usize) -> usize {
        if market == 0 {
            self.demand()
        } else {
            0
        }
    }

    /// Hook before the slot's quote is posted — where closed-loop bidders
    /// observe history and submit bids into the source.
    ///
    /// # Errors
    ///
    /// Aborts the session; buffered events are flushed first.
    fn before_slot(
        &mut self,
        _slot: u64,
        _source: &mut S,
        _emit: &mut dyn FnMut(Event),
    ) -> Result<(), EngineError> {
        Ok(())
    }

    /// Advances the driver one slot with the posted quote.
    ///
    /// # Errors
    ///
    /// Aborts the session; buffered events are flushed first.
    fn on_slot(
        &mut self,
        slot: u64,
        quote: &S::Quote,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError>;
}

/// The simulation kernel: a clock plus a price source, driving any set of
/// [`JobDriver`]s and fanning events out to any set of [`Observer`]s.
#[derive(Debug)]
pub struct Kernel<S: PriceSource> {
    clock: SimClock,
    source: S,
}

impl<S: PriceSource> Kernel<S> {
    /// A kernel at slot 0 over `source`.
    pub fn new(slot_len: spotbid_market::units::Hours, source: S) -> Self {
        Kernel {
            clock: SimClock::new(slot_len),
            source,
        }
    }

    /// The clock (current slot, slot length).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The price source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Mutable access to the price source.
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    /// Consumes the kernel, returning the source (e.g. to recover a market
    /// moved into a session).
    pub fn into_source(self) -> S {
        self.source
    }

    /// Runs the session until every driver is done, the source is
    /// exhausted, or `max_slots` slots have elapsed.
    ///
    /// # Errors
    ///
    /// The first error from a driver hook or an observer, with all events
    /// emitted before the failure already delivered.
    pub fn run(
        &mut self,
        drivers: &mut [&mut dyn JobDriver<S>],
        observers: &mut [&mut dyn Observer],
        max_slots: Option<u64>,
    ) -> Result<StopReason, EngineError> {
        let mut done = vec![false; drivers.len()];
        let mut buf: Vec<Event> = Vec::new();
        // Multi-market sources get per-market demand; the single-market
        // path below is byte-identical to the pre-promotion kernel.
        let markets = self.source.markets();
        let mut demands = vec![0usize; markets];
        loop {
            let slot = self.clock.now();
            if max_slots.is_some_and(|m| slot >= m) {
                return Ok(StopReason::MaxSlots);
            }
            if !drivers.is_empty() && done.iter().all(|&d| d) {
                return Ok(StopReason::AllDone);
            }
            for (driver, done) in drivers.iter_mut().zip(&done) {
                if *done {
                    continue;
                }
                let r = driver.before_slot(slot, &mut self.source, &mut |e| buf.push(e));
                flush(&mut buf, observers)?;
                r?;
            }
            let posted = if markets <= 1 {
                let demand: usize = drivers
                    .iter()
                    .zip(&done)
                    .filter(|(_, &d)| !d)
                    .map(|(driver, _)| driver.demand())
                    .sum();
                self.source.post(slot, demand)
            } else {
                demands.iter_mut().for_each(|d| *d = 0);
                for (driver, _) in drivers.iter().zip(&done).filter(|(_, &d)| !d) {
                    for (m, d) in demands.iter_mut().enumerate() {
                        *d += driver.demand_in(m);
                    }
                }
                self.source.post_many(slot, &demands)
            };
            let Some(quote) = posted else {
                return Ok(StopReason::SourceExhausted);
            };
            self.source.quote_events(slot, &quote, &mut |e| buf.push(e));
            flush(&mut buf, observers)?;
            for (driver, done) in drivers.iter_mut().zip(&mut done) {
                if *done {
                    continue;
                }
                let r = driver.on_slot(slot, &quote, &mut |e| buf.push(e));
                flush(&mut buf, observers)?;
                if r? == DriverStatus::Done {
                    *done = true;
                }
            }
            // Hand the spent quote back so arena-backed sources can reuse
            // its buffers next slot.
            self.source.reclaim(quote);
            self.clock.tick();
        }
    }
}

/// Drains the event buffer to every observer, in emission order; each event
/// reaches every observer (in registration order) before the next event.
/// The first observer error propagates after the buffer is cleared.
fn flush(buf: &mut Vec<Event>, observers: &mut [&mut dyn Observer]) -> Result<(), EngineError> {
    let mut first_err = Ok(());
    for event in buf.drain(..) {
        for obs in observers.iter_mut() {
            let r = obs.on_event(&event);
            if first_err.is_ok() {
                if let Err(e) = r {
                    first_err = Err(e);
                }
            }
        }
        if first_err.is_err() {
            break;
        }
    }
    buf.clear();
    first_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::EventLog;
    use crate::source::{MarketView, SlotPrice, ViewSource};
    use spotbid_market::units::{Hours, Price};
    use spotbid_trace::SpotPriceHistory;

    fn history(prices: &[f64]) -> SpotPriceHistory {
        SpotPriceHistory::new(
            Hours::from_minutes(5.0),
            prices.iter().copied().map(Price::new).collect(),
        )
        .unwrap()
    }

    /// Runs for `n` slots then reports done; records quotes it saw.
    struct CountDriver {
        n: u64,
        seen: Vec<Price>,
    }

    impl<M: MarketView + ?Sized> JobDriver<ViewSource<'_, M>> for CountDriver {
        fn on_slot(
            &mut self,
            slot: u64,
            quote: &SlotPrice,
            emit: &mut dyn FnMut(Event),
        ) -> Result<DriverStatus, EngineError> {
            self.seen.push(quote.truth);
            if slot + 1 >= self.n {
                emit(Event::Completed { slot, tenant: 0 });
                return Ok(DriverStatus::Done);
            }
            Ok(DriverStatus::Active)
        }
    }

    #[test]
    fn stops_when_all_drivers_done() {
        let h = history(&[0.04, 0.05, 0.06, 0.07]);
        let mut k = Kernel::new(h.slot_len(), ViewSource::new(&h));
        let mut d = CountDriver {
            n: 2,
            seen: Vec::new(),
        };
        let mut log = EventLog::new();
        let stop = k.run(&mut [&mut d], &mut [&mut log], None).unwrap();
        assert_eq!(stop, StopReason::AllDone);
        assert_eq!(d.seen, vec![Price::new(0.04), Price::new(0.05)]);
        assert_eq!(k.clock().now(), 2);
        // PricePosted ×2 interleaved with the driver's Completed.
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[2], Event::Completed { slot: 1, .. }));
    }

    #[test]
    fn stops_when_source_exhausts() {
        let h = history(&[0.04, 0.05]);
        let mut k = Kernel::new(h.slot_len(), ViewSource::new(&h));
        let mut d = CountDriver {
            n: 10,
            seen: Vec::new(),
        };
        let stop = k.run(&mut [&mut d], &mut [], None).unwrap();
        assert_eq!(stop, StopReason::SourceExhausted);
        assert_eq!(d.seen.len(), 2);
    }

    #[test]
    fn stops_at_max_slots() {
        let h = history(&[0.04, 0.05, 0.06]);
        let mut k = Kernel::new(h.slot_len(), ViewSource::new(&h));
        let mut d = CountDriver {
            n: 10,
            seen: Vec::new(),
        };
        let stop = k.run(&mut [&mut d], &mut [], Some(1)).unwrap();
        assert_eq!(stop, StopReason::MaxSlots);
        assert_eq!(d.seen.len(), 1);
    }

    #[test]
    fn no_drivers_runs_source_to_exhaustion() {
        let h = history(&[0.04, 0.05, 0.06]);
        let mut k = Kernel::new(h.slot_len(), ViewSource::new(&h));
        let mut log = EventLog::new();
        let stop = k.run(&mut [], &mut [&mut log], None).unwrap();
        assert_eq!(stop, StopReason::SourceExhausted);
        assert_eq!(log.events().len(), 3, "one PricePosted per slot");
    }

    /// A toy two-market source that records the per-market demand vector
    /// it was quoted with.
    struct TwoMarketSource {
        slots: u64,
        seen: Vec<Vec<usize>>,
    }

    impl PriceSource for TwoMarketSource {
        type Quote = u64;

        fn markets(&self) -> usize {
            2
        }

        fn post(&mut self, slot: u64, demand: usize) -> Option<u64> {
            self.post_many(slot, &[demand, 0])
        }

        fn post_many(&mut self, slot: u64, demands: &[usize]) -> Option<u64> {
            if slot >= self.slots {
                return None;
            }
            self.seen.push(demands.to_vec());
            Some(slot)
        }
    }

    /// Demands one unit from every market; never finishes.
    struct SplitDriver;

    impl JobDriver<TwoMarketSource> for SplitDriver {
        fn demand_in(&self, _market: usize) -> usize {
            1
        }

        fn on_slot(
            &mut self,
            _slot: u64,
            _quote: &u64,
            _emit: &mut dyn FnMut(Event),
        ) -> Result<DriverStatus, EngineError> {
            Ok(DriverStatus::Active)
        }
    }

    /// Default `demand_in` places the whole demand in market 0; never
    /// finishes.
    struct HomeDriver;

    impl JobDriver<TwoMarketSource> for HomeDriver {
        fn on_slot(
            &mut self,
            _slot: u64,
            _quote: &u64,
            _emit: &mut dyn FnMut(Event),
        ) -> Result<DriverStatus, EngineError> {
            Ok(DriverStatus::Active)
        }
    }

    #[test]
    fn multi_market_source_sees_per_market_demand() {
        let src = TwoMarketSource {
            slots: 2,
            seen: Vec::new(),
        };
        let mut k = Kernel::new(Hours::from_minutes(5.0), src);
        let mut split = SplitDriver;
        let mut home = HomeDriver;
        let stop = k.run(&mut [&mut split, &mut home], &mut [], None).unwrap();
        assert_eq!(stop, StopReason::SourceExhausted);
        // split contributes 1 to each market, home's default lands in
        // market 0: [1+1, 1+0] per slot.
        assert_eq!(k.source().seen, vec![vec![2, 1], vec![2, 1]]);
    }

    #[test]
    fn observer_error_aborts_after_flush() {
        struct Refuser;
        impl Observer for Refuser {
            fn on_event(&mut self, event: &Event) -> Result<(), EngineError> {
                if matches!(event, Event::Completed { .. }) {
                    return Err(EngineError::Billing {
                        what: "refused".into(),
                    });
                }
                Ok(())
            }
        }
        let h = history(&[0.04, 0.05]);
        let mut k = Kernel::new(h.slot_len(), ViewSource::new(&h));
        let mut d = CountDriver {
            n: 1,
            seen: Vec::new(),
        };
        let mut log = EventLog::new();
        let mut refuser = Refuser;
        let r = k.run(&mut [&mut d], &mut [&mut log, &mut refuser], None);
        assert!(matches!(r, Err(EngineError::Billing { .. })));
        // The log (registered first) still saw the event that was refused.
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, Event::Completed { .. })));
    }
}
