//! Market sessions: the Section-4 equilibrium provider as a kernel
//! [`PriceSource`].
//!
//! `spotbid_market` sits *below* the engine in the crate DAG, so
//! `SpotMarket::run` itself cannot call the kernel; instead the engine
//! wraps a borrowed market as [`MarketSource`] and [`run_market`] drives it
//! through the kernel, emitting the full event stream ([`Event::PricePosted`]
//! per slot, plus per-bid accepted/interrupted/finished/terminated events).
//! The parity test in `tests/` proves a kernel-driven session consumes the
//! same RNG draws and produces the same `SlotReport`s, bid records, and
//! charges as a plain `SpotMarket::run` — they are the same simulation, one
//! inverted around the kernel's loop.

use crate::event::Event;
use crate::kernel::Kernel;
use crate::observer::Observer;
use crate::source::PriceSource;
use crate::EngineError;
use spotbid_market::sim::{SlotReport, SpotMarket};
use spotbid_numerics::rng::Rng;

/// A borrowed [`SpotMarket`] + RNG as a kernel price source. Each `post`
/// advances the market one slot; the quote is the full [`SlotReport`].
///
/// The market's own submitted bids are the demand — the kernel's aggregate
/// driver demand is ignored here, because closed-loop drivers submit
/// directly into the market via [`MarketSource::market_mut`] before the
/// slot is posted.
#[derive(Debug)]
pub struct MarketSource<'a> {
    market: &'a mut SpotMarket,
    rng: &'a mut Rng,
}

impl<'a> MarketSource<'a> {
    /// Wraps a market and the RNG that drives its geometric departures.
    pub fn new(market: &'a mut SpotMarket, rng: &'a mut Rng) -> Self {
        MarketSource { market, rng }
    }

    /// The wrapped market.
    pub fn market(&self) -> &SpotMarket {
        self.market
    }

    /// Mutable access to the wrapped market (bid submission).
    pub fn market_mut(&mut self) -> &mut SpotMarket {
        self.market
    }
}

impl PriceSource for MarketSource<'_> {
    type Quote = SlotReport;

    fn post(&mut self, _slot: u64, _demand: usize) -> Option<SlotReport> {
        Some(self.market.step(self.rng))
    }

    fn quote_events(&self, slot: u64, quote: &SlotReport, emit: &mut dyn FnMut(Event)) {
        emit(Event::PricePosted {
            slot,
            price: quote.price,
        });
        for id in &quote.started {
            emit(Event::BidAccepted {
                slot,
                tenant: id.0 as u32,
            });
        }
        for id in &quote.interrupted {
            emit(Event::Interrupted {
                slot,
                tenant: id.0 as u32,
            });
        }
        for id in &quote.finished {
            emit(Event::Completed {
                slot,
                tenant: id.0 as u32,
            });
        }
        for id in &quote.terminated {
            emit(Event::Rejected {
                slot,
                tenant: id.0 as u32,
            });
        }
    }
}

/// Runs `slots` market slots through the kernel, fanning per-slot events
/// out to `observers` and returning every [`SlotReport`] — the kernel-side
/// equivalent of `SpotMarket::run` (bit-identical: same RNG draws, same
/// reports, same bid records).
///
/// # Errors
///
/// The first observer error, with prior events already delivered.
pub fn run_market(
    market: &mut SpotMarket,
    slots: usize,
    rng: &mut Rng,
    observers: &mut [&mut dyn Observer],
) -> Result<Vec<SlotReport>, EngineError> {
    struct Recorder {
        reports: Vec<SlotReport>,
    }
    impl<'a> crate::kernel::JobDriver<MarketSource<'a>> for Recorder {
        fn demand(&self) -> usize {
            0 // a pure observer of the session, not a bidder
        }
        fn on_slot(
            &mut self,
            _slot: u64,
            quote: &SlotReport,
            _emit: &mut dyn FnMut(Event),
        ) -> Result<crate::kernel::DriverStatus, EngineError> {
            self.reports.push(quote.clone());
            Ok(crate::kernel::DriverStatus::Active)
        }
    }
    let slot_len = spotbid_market::units::Hours::from_minutes(5.0);
    let mut kernel = Kernel::new(slot_len, MarketSource::new(market, rng));
    let mut recorder = Recorder {
        reports: Vec::new(),
    };
    kernel.run(&mut [&mut recorder], observers, Some(slots as u64))?;
    Ok(recorder.reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::EventLog;
    use spotbid_market::params::MarketParams;
    use spotbid_market::sim::{BidKind, BidRequest, WorkModel};
    use spotbid_market::units::{Hours, Price};

    fn market() -> SpotMarket {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        SpotMarket::new(params, Hours::from_minutes(5.0))
    }

    #[test]
    fn kernel_session_matches_plain_run() {
        let mut a = market();
        let mut b = market();
        for m in [&mut a, &mut b] {
            m.submit(BidRequest {
                price: Price::new(0.35),
                kind: BidKind::Persistent,
                work: WorkModel::Geometric,
            });
            m.submit(BidRequest {
                price: Price::new(0.16),
                kind: BidKind::OneTime,
                work: WorkModel::FixedSlots(3),
            });
        }
        let mut rng_a = Rng::seed_from_u64(42);
        let mut rng_b = Rng::seed_from_u64(42);
        let plain = a.run(50, &mut rng_a);
        let kernel = run_market(&mut b, 50, &mut rng_b, &mut []).unwrap();
        assert_eq!(plain, kernel);
        assert_eq!(a.records(), b.records());
        // Same RNG state afterwards: both consumed identical draws.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn session_emits_per_bid_events() {
        let mut m = market();
        m.submit(BidRequest {
            price: Price::new(0.35),
            kind: BidKind::OneTime,
            work: WorkModel::FixedSlots(2),
        });
        let mut rng = Rng::seed_from_u64(7);
        let mut log = EventLog::new();
        let reports = run_market(&mut m, 4, &mut rng, &mut [&mut log]).unwrap();
        assert_eq!(reports.len(), 4);
        let events = log.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::PricePosted { .. }))
                .count(),
            4
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::BidAccepted { slot: 0, tenant: 0 })));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Completed { slot: 1, tenant: 0 })));
    }
}
