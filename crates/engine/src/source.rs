//! Price sources: where each slot's market signal comes from.
//!
//! A [`PriceSource`] is the kernel's supply side. Each slot the kernel asks
//! it to `post` a quote given the aggregate demand; `None` means the source
//! is exhausted (end of trace) and the session stops. The quote type is
//! source-specific — a degraded per-slot view for trace replay
//! ([`SlotPrice`]), a full `SlotReport` for the live Section-4 market —
//! so drivers are written against the quote they understand.
//!
//! The [`MarketView`] trait (moved here from `spotbid-client`) is the
//! replay-side abstraction: a possibly-degraded window onto a price trace,
//! with ground truth kept separate from what the client observes. The
//! faults crate's `FaultyMarket` implements it; [`ViewSource`] adapts any
//! view into a `PriceSource`.

use crate::event::Event;
use spotbid_market::units::Price;
use spotbid_trace::SpotPriceHistory;

/// A client's window onto the spot market, possibly degraded by faults.
///
/// `true_price` is the provider-side ground truth used for acceptance and
/// billing; `observed_price` is what the client's price feed reports (and
/// may be `None` during an outage, or stale under fault injection).
pub trait MarketView {
    /// Number of slots in the window.
    fn len(&self) -> usize;

    /// Whether the window is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The price the client's feed reports for `slot`, if any.
    fn observed_price(&self, slot: usize) -> Option<Price>;

    /// The provider-side ground-truth price for `slot`.
    fn true_price(&self, slot: usize) -> Price;

    /// Whether the provider reclaims the client's capacity at `slot`
    /// regardless of the bid (fault injection).
    fn reclaimed(&self, slot: usize) -> bool;
}

/// A clean history is a view with a perfect feed and no reclamations.
impl MarketView for SpotPriceHistory {
    fn len(&self) -> usize {
        SpotPriceHistory::len(self)
    }

    fn observed_price(&self, slot: usize) -> Option<Price> {
        self.price_at_slot(slot)
    }

    fn true_price(&self, slot: usize) -> Price {
        self.prices()[slot]
    }

    fn reclaimed(&self, _slot: usize) -> bool {
        false
    }
}

/// One slot's market signal from a replayed [`MarketView`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotPrice {
    /// Provider-side ground truth (acceptance and billing).
    pub truth: Price,
    /// What the client's feed observed, if anything.
    pub observed: Option<Price>,
    /// Whether the provider reclaims capacity this slot.
    pub reclaimed: bool,
}

/// The supply side of a kernel session.
///
/// A source quotes one or more markets per slot. Single-market sources —
/// the historical case — implement [`PriceSource::post`] and inherit
/// `markets() == 1`; multi-market sources (a `MarketSet` of instance
/// types × zones) report their M and implement
/// [`PriceSource::post_many`], receiving per-market demand. The kernel
/// only takes the `post_many` path when `markets() > 1`, so promoting the
/// trait left every existing source bit-identical.
pub trait PriceSource {
    /// What the source posts each slot.
    type Quote;

    /// Number of markets this source quotes each slot. Defaults to 1;
    /// multi-market sources override.
    fn markets(&self) -> usize {
        1
    }

    /// Posts the quote for `slot` given the aggregate `demand` (number of
    /// active drivers). `None` ends the session (source exhausted).
    fn post(&mut self, slot: u64, demand: usize) -> Option<Self::Quote>;

    /// Posts the quote for `slot` given per-market demand (`demands[m]`
    /// is the capacity wanted from market `m`). The default folds the
    /// vector back into [`PriceSource::post`]; sources with
    /// `markets() > 1` should override.
    fn post_many(&mut self, slot: u64, demands: &[usize]) -> Option<Self::Quote> {
        self.post(slot, demands.iter().sum())
    }

    /// Emits the market-wide events describing a posted quote (e.g.
    /// [`Event::PricePosted`]). Called once per slot, before any driver
    /// sees the quote.
    fn quote_events(&self, _slot: u64, _quote: &Self::Quote, _emit: &mut dyn FnMut(Event)) {}

    /// Takes a fully-consumed quote back after every driver has seen it,
    /// so arena-backed sources (the live market's `SlotReport` buffers)
    /// can reuse its allocations next slot. The default drops it.
    fn reclaim(&mut self, _quote: Self::Quote) {}
}

/// Adapts any [`MarketView`] into a [`PriceSource`] replaying it slot by
/// slot. Demand does not move the price — replayed bidders are
/// price-takers, exactly as in the paper's Sections 5–7.
#[derive(Debug)]
pub struct ViewSource<'a, M: MarketView + ?Sized> {
    view: &'a M,
}

impl<'a, M: MarketView + ?Sized> ViewSource<'a, M> {
    /// Replays `view` from its first slot.
    pub fn new(view: &'a M) -> Self {
        ViewSource { view }
    }

    /// The underlying view.
    pub fn view(&self) -> &M {
        self.view
    }
}

impl<M: MarketView + ?Sized> PriceSource for ViewSource<'_, M> {
    type Quote = SlotPrice;

    fn post(&mut self, slot: u64, _demand: usize) -> Option<SlotPrice> {
        let i = slot as usize;
        if i >= self.view.len() {
            return None;
        }
        Some(SlotPrice {
            truth: self.view.true_price(i),
            observed: self.view.observed_price(i),
            reclaimed: self.view.reclaimed(i),
        })
    }

    fn quote_events(&self, slot: u64, quote: &SlotPrice, emit: &mut dyn FnMut(Event)) {
        emit(Event::PricePosted {
            slot,
            price: quote.truth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_market::units::Hours;

    fn history(prices: &[f64]) -> SpotPriceHistory {
        SpotPriceHistory::new(
            Hours::from_minutes(5.0),
            prices.iter().copied().map(Price::new).collect(),
        )
        .unwrap()
    }

    #[test]
    fn clean_history_is_a_perfect_view() {
        let h = history(&[0.04, 0.05, 0.06]);
        assert_eq!(MarketView::len(&h), 3);
        assert!(!MarketView::is_empty(&h));
        assert_eq!(h.observed_price(1), Some(Price::new(0.05)));
        assert_eq!(h.true_price(2), Price::new(0.06));
        assert!(!h.reclaimed(0));
    }

    #[test]
    fn view_source_replays_then_exhausts() {
        let h = history(&[0.04, 0.05]);
        let mut src = ViewSource::new(&h);
        let q = src.post(0, 1).unwrap();
        assert_eq!(q.truth, Price::new(0.04));
        assert_eq!(q.observed, Some(Price::new(0.04)));
        assert!(!q.reclaimed);
        assert!(src.post(1, 99).is_some(), "demand must not affect replay");
        assert!(src.post(2, 1).is_none(), "past the trace end");
    }

    #[test]
    fn view_source_emits_price_posted() {
        let h = history(&[0.04]);
        let src = ViewSource::new(&h);
        let q = SlotPrice {
            truth: Price::new(0.04),
            observed: None,
            reclaimed: false,
        };
        let mut seen = Vec::new();
        src.quote_events(7, &q, &mut |e| seen.push(e));
        assert_eq!(
            seen,
            vec![Event::PricePosted {
                slot: 7,
                price: Price::new(0.04)
            }]
        );
    }
}
