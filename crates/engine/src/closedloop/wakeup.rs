//! The event-driven wakeup fleet: touch a tenant only when something it
//! cares about happens.
//!
//! The dense fleet re-evaluates every tenant every slot, so a 10k-tenant
//! loop pays 10k binary-search walks per slot even when the posted price
//! moved nowhere near anyone's threshold. This fleet mirrors the market's
//! own bid-book trick on the tenant side (DESIGN.md §5f): tenant state
//! lives in struct-of-arrays columns, and a slot wakes exactly
//!
//! - **fresh** tenants whose decision was applied this slot (new bid
//!   submissions, on-demand resolutions awaiting their `Completed` turn);
//! - **calendar** hits: tenants whose running bid is due to finish this
//!   slot (scheduled at start from the bid's remaining slots, exactly the
//!   market's own finish calendar), plus unconditional re-wakes armed
//!   while a tenant's bid sits parked — after a capacity-reclamation
//!   outage, or after the finite-supply capacity pass named the bid in
//!   [`SlotReport::evicted`] (the per-slot capacity delta);
//! - **swept** tenants: when the price falls from `p_prev` to `p`, the
//!   price-indexed wakeup buckets yield every pending tenant whose bid
//!   threshold lies in `[p, p_prev)` — the only pendings the market can
//!   have started;
//! - **running** tenants (they accrue a charge every slot by §3.2, so
//!   there is no skipping them — but quiet fleets have none).
//!
//! A slot where all four sets are empty is *skipped* in O(1)
//! ([`FleetStats::skipped_slots`]); fault-free, those are exactly the
//! dense run's zero-activity slots. Wakeups are processed in ascending
//! tenant order (a sorted merge of the sets), decisions fan out over the
//! same 64-tenant shards with the same reserved RNG substreams, and bid
//! submission stays serial in tenant order — so bid ids, event order,
//! bills, and RNG draws are **bit-identical** to [`super::dense`] at any
//! `SPOTBID_THREADS` (`tests/wakeup_equiv.rs`).

use super::dense::SHARD_SIZE;
use super::{
    assemble_report, validate, ClosedLoopConfig, ClosedLoopReport, ClosedLoopSource, LoopFaults,
    TenantFinal,
};
use crate::billing::{LineItem, UsageKind};
use crate::event::Event;
use crate::kernel::{DriverStatus, JobDriver, Kernel};
use crate::observer::{BillingObserver, EventLog, Observer};
use crate::EngineError;
use spotbid_core::{BidDecision, BiddingStrategy, CoreError, JobSpec};
use spotbid_market::params::MarketParams;
use spotbid_market::sim::{BidId, BidKind, BidRequest, SlotReport, WorkModel};
use spotbid_market::units::{Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};
use std::collections::BTreeMap;

/// Wakeup-bucket count — matches the market's bid-book resolution so a
/// sweep touches comparable boundary work on both sides of the loop.
const WAKE_BUCKETS: usize = 512;

/// `bid_id` column sentinel: no live bid.
const NO_BID: u64 = u64::MAX;
/// `pos_of` column sentinel: not registered in any wakeup bucket.
const NO_POS: u32 = u32::MAX;
/// Calendar-entry flag bit: wake unconditionally (armed across a
/// reclamation outage while the tenant's bid is parked in the market).
/// Tenant indices are asserted `< 2^31`, so the bit never collides.
const UNCOND: u32 = 1 << 31;

// Tenant state flags (the `flags` struct-of-arrays column).
/// Finished for the session (reported `DriverStatus::Done` equivalent).
const T_DONE: u8 = 1 << 0;
/// Its bid is currently running (member of the fleet's `running` list).
const T_RUNNING: u8 = 1 << 1;
/// Job work completed (spot finish or on-demand resolution).
const T_COMPLETED: u8 = 1 << 2;
/// Resolved to on-demand: charged already, reports done at next wake.
const T_DONE_PENDING: u8 = 1 << 3;
/// Queued in `needy` for a (re-)submission next `before_slot`.
const T_NEEDS_SUBMIT: u8 = 1 << 4;

/// Wakeup accounting for one closed-loop session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Slots the fleet was asked to advance.
    pub slots: u64,
    /// Slots skipped in O(1): no wake fired and nothing was running.
    /// Fault-free, exactly the dense run's zero-activity slots.
    pub skipped_slots: u64,
    /// Total tenant wakeups processed across all slots.
    pub woken: u64,
}

/// Price-indexed wakeup buckets over *pending* tenants: tenant `t` is
/// registered under its current bid threshold, and a price fall from
/// `pp` to `pf` yields every registered tenant with threshold `≥ pf` in
/// the crossed range — the only pendings the market's own sweep can have
/// started. Same bucket classifier as the market bid-book (including the
/// ulp-repair walk), so boundary prices land consistently.
#[derive(Debug)]
struct WakeupBook {
    buckets: Vec<Vec<u32>>,
    lo: f64,
    w: f64,
    /// Current bid price per tenant (written at submit, read at
    /// registration and sweep filtering).
    threshold: Vec<f64>,
    bucket_of: Vec<u32>,
    /// Position in the bucket list, [`NO_POS`] when unregistered.
    pos_of: Vec<u32>,
}

impl WakeupBook {
    fn new(n: usize, params: &MarketParams) -> Self {
        WakeupBook {
            buckets: vec![Vec::new(); WAKE_BUCKETS],
            lo: params.pi_min.as_f64(),
            w: params.spread().as_f64() / WAKE_BUCKETS as f64,
            threshold: vec![0.0; n],
            bucket_of: vec![0; n],
            pos_of: vec![NO_POS; n],
        }
    }

    fn set_threshold(&mut self, t: u32, price: f64) {
        self.threshold[t as usize] = price;
    }

    fn contains(&self, t: u32) -> bool {
        self.pos_of[t as usize] != NO_POS
    }

    fn register(&mut self, t: u32) {
        let tu = t as usize;
        debug_assert!(!self.contains(t), "tenant {t} already registered");
        let b = self.bucket_index(self.threshold[tu]);
        self.bucket_of[tu] = b as u32;
        self.pos_of[tu] = self.buckets[b].len() as u32;
        self.buckets[b].push(t);
    }

    fn unregister(&mut self, t: u32) {
        let tu = t as usize;
        let b = self.bucket_of[tu] as usize;
        let p = self.pos_of[tu] as usize;
        let list = &mut self.buckets[b];
        debug_assert_eq!(list[p], t);
        list.swap_remove(p);
        if let Some(&moved) = list.get(p) {
            self.pos_of[moved as usize] = p as u32;
        }
        self.pos_of[tu] = NO_POS;
    }

    /// All registered tenants with threshold in `[pf, pp)`-or-above within
    /// the crossed bucket range: the boundary bucket is filtered exactly,
    /// inner buckets are taken wholesale (fault-free their thresholds are
    /// `< pp` by the pending-resident invariant; a parked-bid leftover
    /// above `pp` only ever produces a harmless spurious wake).
    fn sweep_fall(&self, pf: f64, pp: f64, out: &mut Vec<u32>) {
        let k_lo = self.bucket_index(pf);
        let k_hi = self.bucket_index(pp);
        for &t in &self.buckets[k_lo] {
            if self.threshold[t as usize] >= pf {
                out.push(t);
            }
        }
        for b in (k_lo + 1)..=k_hi {
            out.extend_from_slice(&self.buckets[b]);
        }
    }

    /// Bucket for price `p` — same classifier as the market bid-book:
    /// clamped linear index plus an exact repair walk, so float error in
    /// the division can never misfile a boundary price.
    fn bucket_index(&self, p: f64) -> usize {
        let raw = (p - self.lo) / self.w;
        let mut i = if raw.is_finite() {
            if raw <= 0.0 {
                0
            } else {
                (raw as usize).min(WAKE_BUCKETS - 1)
            }
        } else if raw == f64::INFINITY {
            WAKE_BUCKETS - 1
        } else {
            0
        };
        while i > 0 && p < self.lo + i as f64 * self.w {
            i -= 1;
        }
        while i + 1 < WAKE_BUCKETS && p >= self.lo + (i + 1) as f64 * self.w {
            i += 1;
        }
        i
    }
}

/// The event-driven tenant fleet: struct-of-arrays columns, a wakeup
/// book over pending thresholds, a calendar queue over scheduled
/// finishes, and a sorted running list. See the module docs for the
/// wake-set contract.
struct WakeupFleet {
    // Session-wide configuration (identical across tenants).
    job: JobSpec,
    on_demand: Price,
    slot_len: Hours,
    slots_needed: u64,
    max_resubmissions: u32,

    // Struct-of-arrays tenant columns, indexed by tag.
    strategy: Vec<BiddingStrategy>,
    flags: Vec<u8>,
    /// Live bid id, [`NO_BID`] when none.
    bid_id: Vec<u64>,
    /// Total `slots_run` at which the live bid finishes
    /// (`slots_run`-at-submit + the bid's requested slots).
    quota: Vec<u64>,
    /// Scheduled finish slot of the current run streak (valid while
    /// [`T_RUNNING`]; stale entries are validated on pop).
    due: Vec<u64>,
    slots_run: Vec<u64>,
    interruptions: Vec<u32>,
    resubmissions: Vec<u32>,

    // Wakeup machinery.
    book: WakeupBook,
    /// slot → wake entries (tenant index, optionally [`UNCOND`]-flagged).
    calendar: BTreeMap<u64, Vec<u32>>,
    /// Spent calendar vectors, recycled to keep steady state allocation-free.
    cal_pool: Vec<Vec<u32>>,
    /// Tenants currently running, ascending (rebuilt by sorted merge).
    running: Vec<u32>,
    /// Tenants whose decision was applied this `before_slot` — they must
    /// see this slot's report (new bids) or report done (on-demand).
    fresh: Vec<u32>,
    /// Tenants queued to (re-)submit at the next `before_slot`.
    needy: Vec<u32>,
    /// Tenants not yet [`T_DONE`] — the kernel demand and the Done check.
    active: usize,
    /// Last posted price (∞ before the first tenant-visible slot, exactly
    /// the market's own pre-first-step posted price).
    prev_price: f64,
    /// Kernel-slot-indexed reclamation outages (from [`LoopFaults`],
    /// warmup offset already applied). Empty when fault-free.
    reclaim_mask: Vec<bool>,
    /// Target slot of each tenant's last unconditional calendar arm: the
    /// already-armed guard that keeps back-to-back outages (or an outage
    /// coinciding with a capacity eviction) from pushing duplicate
    /// entries into one wake list.
    armed_until: Vec<u64>,
    shard_rngs: Vec<Rng>,
    stats: FleetStats,

    // Scratch buffers (steady state allocates nothing per slot).
    sc_woken: Vec<u32>,
    sc_order: Vec<u32>,
    sc_started: Vec<u32>,
    sc_removed: Vec<u32>,
    sc_run_next: Vec<u32>,
}

impl WakeupFleet {
    fn new(
        strategies: &[BiddingStrategy],
        cfg: &ClosedLoopConfig,
        streams: &RngStreams,
        reclaim_mask: Vec<bool>,
    ) -> Self {
        let n = strategies.len();
        assert!(n < (1 << 31), "wakeup fleet supports < 2^31 tenants");
        // Identical substream reservation to the dense fleet: 0 and 1
        // belong to the market and the background process, 2+ to shards.
        let max_shards = n.div_ceil(SHARD_SIZE);
        let mut chain = streams.streams(2 + max_shards);
        let shard_rngs = chain.split_off(2);
        WakeupFleet {
            job: cfg.job,
            on_demand: cfg.on_demand,
            slot_len: cfg.slot_len,
            slots_needed: cfg.job.slots_needed(),
            max_resubmissions: cfg.max_resubmissions,
            strategy: strategies.to_vec(),
            flags: vec![T_NEEDS_SUBMIT; n],
            bid_id: vec![NO_BID; n],
            quota: vec![0; n],
            due: vec![0; n],
            slots_run: vec![0; n],
            interruptions: vec![0; n],
            resubmissions: vec![0; n],
            book: WakeupBook::new(n, &cfg.params),
            calendar: BTreeMap::new(),
            cal_pool: Vec::new(),
            running: Vec::new(),
            fresh: Vec::new(),
            needy: (0..n as u32).collect(),
            active: n,
            prev_price: f64::INFINITY,
            reclaim_mask,
            armed_until: vec![0; n],
            shard_rngs,
            stats: FleetStats::default(),
            sc_woken: Vec::new(),
            sc_order: Vec::new(),
            sc_started: Vec::new(),
            sc_removed: Vec::new(),
            sc_run_next: Vec::new(),
        }
    }

    fn remaining_work(&self, tu: usize) -> Hours {
        (self.job.execution - self.slot_len * self.slots_run[tu] as f64).max(Hours::ZERO)
    }

    /// Marks a tenant finished for the session.
    fn finish(&mut self, tu: usize) {
        debug_assert_eq!(self.flags[tu] & T_DONE, 0);
        self.flags[tu] |= T_DONE;
        self.active -= 1;
    }

    fn calendar_push(&mut self, slot: u64, entry: u32) {
        let pool = &mut self.cal_pool;
        self.calendar
            .entry(slot)
            .or_insert_with(|| pool.pop().unwrap_or_default())
            .push(entry);
    }

    /// Arms an unconditional wake at `slot`, at most once per tenant per
    /// target slot (kernel slots start at 0, so armed targets are ≥ 1 and
    /// the zero-initialized column never aliases a real arm).
    fn arm_uncond(&mut self, slot: u64, t: u32) {
        let tu = t as usize;
        if self.armed_until[tu] != slot {
            self.armed_until[tu] = slot;
            self.calendar_push(slot, t | UNCOND);
        }
    }

    /// Acts on a resolved strategy decision — byte-for-byte the dense
    /// fleet's `apply_decision`, plus the wakeup bookkeeping (threshold
    /// write, fresh-wake queue).
    fn apply_decision(
        &mut self,
        t: u32,
        decision: BidDecision,
        slot: u64,
        source: &mut ClosedLoopSource,
        emit: &mut dyn FnMut(Event),
    ) {
        let tu = t as usize;
        match decision {
            BidDecision::OnDemand { price } => {
                let work = self.remaining_work(tu);
                if work > Hours::ZERO {
                    emit(Event::Charged {
                        item: LineItem {
                            slot,
                            price,
                            duration: work,
                            kind: UsageKind::OnDemand,
                            tag: t,
                        },
                    });
                }
                self.flags[tu] |= T_COMPLETED | T_DONE_PENDING;
                emit(Event::Completed { slot, tenant: t });
            }
            BidDecision::Spot { price, persistent } => {
                let remaining = (self.slots_needed - self.slots_run[tu]).max(1) as u32;
                let id = source.market.submit(BidRequest {
                    price,
                    kind: if persistent {
                        BidKind::Persistent
                    } else {
                        BidKind::OneTime
                    },
                    work: WorkModel::FixedSlots(remaining),
                });
                self.bid_id[tu] = id.0;
                self.quota[tu] = self.slots_run[tu] + remaining as u64;
                self.book.set_threshold(t, price.as_f64());
                emit(Event::BidSubmitted {
                    slot,
                    tenant: t,
                    price,
                    persistent,
                });
            }
        }
        self.fresh.push(t);
    }

    /// Advances one woken tenant against the slot report — the dense
    /// fleet's `slot_update` over columns, plus wakeup maintenance:
    /// started tenants leave the book and schedule their expected finish,
    /// idle pending tenants (re-)register their threshold, and run-list
    /// membership changes collect into `started_add`/`removed` for the
    /// post-pass sorted merge.
    fn tenant_slot_update(
        &mut self,
        t: u32,
        slot: u64,
        report: &SlotReport,
        emit: &mut dyn FnMut(Event),
        started_add: &mut Vec<u32>,
        removed: &mut Vec<u32>,
    ) {
        let tu = t as usize;
        let f = self.flags[tu];
        if f & T_DONE != 0 {
            return;
        }
        if f & T_DONE_PENDING != 0 {
            self.finish(tu);
            return;
        }
        if self.bid_id[tu] == NO_BID {
            return;
        }
        let id = BidId(self.bid_id[tu]);
        let started = report.started.binary_search(&id).is_ok();
        let interrupted = report.interrupted.binary_search(&id).is_ok();
        let finished = report.finished.binary_search(&id).is_ok();
        let terminated = report.terminated.binary_search(&id).is_ok();
        let was_running = f & T_RUNNING != 0;
        let ran = started || (was_running && !interrupted && !terminated);
        if started {
            self.flags[tu] |= T_RUNNING;
            emit(Event::BidAccepted { slot, tenant: t });
            if self.book.contains(t) {
                self.book.unregister(t);
            }
            started_add.push(t);
            // Schedule the expected finish: the bid needs `quota −
            // slots_run` more running slots starting with this one —
            // exactly the market's own finish calendar. An interruption
            // strands the entry; it is validated against `due` on pop.
            let rem = self.quota[tu] - self.slots_run[tu];
            let due = slot + rem - 1;
            self.due[tu] = due;
            if due > slot {
                self.calendar_push(due, t);
            }
        }
        if interrupted {
            self.interruptions[tu] += 1;
            emit(Event::Interrupted { slot, tenant: t });
        }
        if ran {
            // The provider charges running bids the posted price per slot
            // (§3.2); mirror the market's internal `charged` accrual in
            // this tenant's own ledger.
            self.slots_run[tu] += 1;
            emit(Event::Charged {
                item: LineItem {
                    slot,
                    price: report.price,
                    duration: self.job.slot,
                    kind: UsageKind::Spot,
                    tag: t,
                },
            });
        }
        if interrupted || terminated || finished {
            if was_running || started {
                removed.push(t);
            }
            self.flags[tu] &= !T_RUNNING;
        }
        if finished {
            self.flags[tu] |= T_COMPLETED;
            emit(Event::Completed { slot, tenant: t });
            self.finish(tu);
            return;
        }
        if terminated {
            emit(Event::Rejected { slot, tenant: t });
            self.bid_id[tu] = NO_BID;
            if self.book.contains(t) {
                self.book.unregister(t);
            }
            if self.resubmissions[tu] < self.max_resubmissions {
                self.resubmissions[tu] += 1;
                self.flags[tu] |= T_NEEDS_SUBMIT;
                self.needy.push(t);
            } else {
                self.finish(tu);
            }
            return;
        }
        // Still holding a live pending bid and not running: the wakeup
        // book must track its threshold. Fresh pends, re-pended
        // persistents after an interruption, and parked bids waiting out
        // an outage all land here; already-registered tenants pass.
        if self.flags[tu] & T_RUNNING == 0 && !self.book.contains(t) {
            self.book.register(t);
        }
    }

    /// Rebuilds the sorted running list from this slot's membership
    /// changes: a three-pointer merge of the old list with `sc_started`,
    /// dropping `sc_removed` (all three ascending; a start-and-finish in
    /// the same slot appears in both deltas and nets out).
    fn merge_running(&mut self) {
        if self.sc_started.is_empty() && self.sc_removed.is_empty() {
            return;
        }
        let old = &self.running;
        let added = &self.sc_started;
        let removed = &self.sc_removed;
        let mut out = std::mem::take(&mut self.sc_run_next);
        out.clear();
        out.reserve(old.len() + added.len());
        let (mut i, mut j, mut r) = (0, 0, 0);
        while i < old.len() || j < added.len() {
            let x = if j >= added.len() || (i < old.len() && old[i] < added[j]) {
                let v = old[i];
                i += 1;
                v
            } else {
                let v = added[j];
                j += 1;
                v
            };
            while r < removed.len() && removed[r] < x {
                r += 1;
            }
            if r < removed.len() && removed[r] == x {
                r += 1;
            } else {
                out.push(x);
            }
        }
        self.sc_run_next = std::mem::replace(&mut self.running, out);
    }

    fn status(&self) -> DriverStatus {
        if self.active == 0 {
            DriverStatus::Done
        } else {
            DriverStatus::Active
        }
    }
}

impl JobDriver<ClosedLoopSource> for WakeupFleet {
    fn demand(&self) -> usize {
        self.active
    }

    fn before_slot(
        &mut self,
        slot: u64,
        source: &mut ClosedLoopSource,
        emit: &mut dyn FnMut(Event),
    ) -> Result<(), EngineError> {
        self.fresh.clear();
        if self.needy.is_empty() {
            return Ok(());
        }
        // The queue holds exactly the tenants the dense fleet's full scan
        // would select (queued ascending, drained every slot); the filter
        // mirrors its `!done && needs_submit && !done_pending` guard.
        let mut needy = std::mem::take(&mut self.needy);
        needy.retain(|&t| {
            let f = &mut self.flags[t as usize];
            if *f & (T_DONE | T_DONE_PENDING) == 0 && *f & T_NEEDS_SUBMIT != 0 {
                *f &= !T_NEEDS_SUBMIT;
                true
            } else {
                false
            }
        });
        if needy.is_empty() {
            self.needy = needy;
            return Ok(());
        }
        // One history snapshot for the whole slot, identical sharded
        // fan-out to the dense fleet: same shard cuts, same reserved RNG
        // substreams, same order-stable merge.
        let history = source.observed()?;
        let inputs: Vec<(BiddingStrategy, JobSpec, Price)> = needy
            .iter()
            .map(|&t| (self.strategy[t as usize], self.job, self.on_demand))
            .collect();
        let shards = inputs.len().div_ceil(SHARD_SIZE);
        let shard_rngs = &self.shard_rngs;
        let decisions: Vec<Vec<Result<BidDecision, CoreError>>> =
            spotbid_exec::par_map(shards, |s| {
                let mut _rng = shard_rngs[s].clone(); // reserved, see dense
                let lo = s * SHARD_SIZE;
                let hi = (lo + SHARD_SIZE).min(inputs.len());
                inputs[lo..hi]
                    .iter()
                    .map(|(strat, job, od)| strat.decide(&history, job, *od))
                    .collect()
            });
        // Serial, ordered apply: bid ids and events come out exactly as if
        // each tenant had decided in turn.
        let mut flat = decisions.into_iter().flatten();
        for &t in &needy {
            let decision = flat
                .next()
                .expect("one decision per needy tenant")
                .map_err(EngineError::Core)?;
            self.apply_decision(t, decision, slot, source, emit);
        }
        needy.clear();
        self.needy = needy;
        Ok(())
    }

    fn on_slot(
        &mut self,
        slot: u64,
        report: &SlotReport,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError> {
        self.stats.slots += 1;
        let pf = report.price.as_f64();
        let pp = self.prev_price;
        self.prev_price = pf;

        // Collect this slot's wake set.
        let mut woken = std::mem::take(&mut self.sc_woken);
        woken.clear();
        woken.extend_from_slice(&self.fresh);
        self.fresh.clear();
        if let Some(mut list) = self.calendar.remove(&slot) {
            for &e in &list {
                let t = e & !UNCOND;
                let tu = t as usize;
                // Plain entries are expected finishes: valid only if the
                // tenant is still running the streak that scheduled them.
                if e & UNCOND != 0 || (self.flags[tu] & T_RUNNING != 0 && self.due[tu] == slot) {
                    woken.push(t);
                }
            }
            list.clear();
            self.cal_pool.push(list);
        }
        if pf < pp {
            self.book.sweep_fall(pf, pp, &mut woken);
        }

        if woken.is_empty() && self.running.is_empty() {
            // Nothing fired and nothing is running: the dense fleet would
            // have scanned every tenant and changed nothing.
            self.stats.skipped_slots += 1;
            self.sc_woken = woken;
            return Ok(self.status());
        }

        // Process in ascending tenant order — the dense fleet's scan
        // order — via a dedup merge of the (sorted) wake set with the
        // (sorted) running list.
        woken.sort_unstable();
        woken.dedup();
        let mut order = std::mem::take(&mut self.sc_order);
        order.clear();
        {
            let run = &self.running;
            order.reserve(woken.len() + run.len());
            let (mut i, mut j) = (0, 0);
            while i < woken.len() && j < run.len() {
                let (a, b) = (woken[i], run[j]);
                if a <= b {
                    order.push(a);
                    i += 1;
                    j += usize::from(a == b);
                } else {
                    order.push(b);
                    j += 1;
                }
            }
            order.extend_from_slice(&woken[i..]);
            order.extend_from_slice(&run[j..]);
        }
        self.stats.woken += order.len() as u64;

        let mut started_add = std::mem::take(&mut self.sc_started);
        let mut removed = std::mem::take(&mut self.sc_removed);
        started_add.clear();
        removed.clear();
        for &t in &order {
            self.tenant_slot_update(t, slot, report, emit, &mut started_add, &mut removed);
        }
        self.sc_started = started_add;
        self.sc_removed = removed;
        self.merge_running();

        // Parked bids resolve at the next slot's individual re-auctions —
        // which a price sweep cannot predict — so their owners are armed
        // unconditionally for the next slot. Two things park a bid:
        //
        // - a reclamation outage (every displaced and incoming bid): every
        //   woken tenant still holding a live non-running bid is re-armed,
        //   chaining across back-to-back outages;
        // - the finite-supply capacity pass: the market names the exact
        //   victim set in `report.evicted`, so only those bids' owners
        //   re-arm — every victim's owner is awake this slot (running
        //   victims were in the running list; would-be starters were
        //   swept, fresh, or parked-armed), so scanning `order` is
        //   complete. Quiet slots stay skippable under `Supply::Finite`.
        let outage = self
            .reclaim_mask
            .get(slot as usize)
            .copied()
            .unwrap_or(false);
        if outage || !report.evicted.is_empty() {
            for &t in &order {
                let tu = t as usize;
                if self.flags[tu] & (T_DONE | T_RUNNING) != 0 || self.bid_id[tu] == NO_BID {
                    continue;
                }
                if outage
                    || report
                        .evicted
                        .binary_search(&BidId(self.bid_id[tu]))
                        .is_ok()
                {
                    self.arm_uncond(slot + 1, t);
                }
            }
        }

        self.sc_woken = woken;
        self.sc_order = order;
        Ok(self.status())
    }
}

/// Shared closed-loop runner over the wakeup fleet (the public
/// `run_closed_loop*` entry points in the parent module delegate here).
pub(super) fn run(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
    faults: Option<&LoopFaults>,
    log: Option<&mut EventLog>,
) -> Result<(ClosedLoopReport, FleetStats), EngineError> {
    validate(strategies, cfg)?;

    let streams = RngStreams::new(seed);
    let mut source = ClosedLoopSource::new(cfg, &streams, faults, strategies.len());
    source.warmup(cfg.warmup_slots);

    // The fleet sees kernel slots (0-based after warmup); shift the
    // absolute-slot fault plan accordingly.
    let reclaim_mask: Vec<bool> = match faults {
        Some(f) => (0..cfg.horizon_slots)
            .map(|s| f.reclaim_at(cfg.warmup_slots + s))
            .collect(),
        None => Vec::new(),
    };
    let mut fleet = WakeupFleet::new(strategies, cfg, &streams, reclaim_mask);
    let mut billing = BillingObserver::validated();
    {
        let mut kernel = Kernel::new(cfg.slot_len, source);
        let horizon = Some(cfg.horizon_slots as u64);
        match log {
            Some(l) => kernel.run(
                &mut [&mut fleet],
                &mut [&mut billing as &mut dyn Observer, l],
                horizon,
            )?,
            None => kernel.run(&mut [&mut fleet], &mut [&mut billing], horizon)?,
        };
        source = kernel.into_source();
    }
    let mut bill = billing.into_bill();

    let finals: Vec<TenantFinal> = (0..fleet.strategy.len())
        .map(|tu| TenantFinal {
            tag: tu as u32,
            strategy: fleet.strategy[tu],
            completed: fleet.flags[tu] & T_COMPLETED != 0,
            slots_run: fleet.slots_run[tu],
            interruptions: fleet.interruptions[tu],
            resubmissions: fleet.resubmissions[tu],
        })
        .collect();
    let report = assemble_report(&finals, &mut bill, &source, cfg)?;
    Ok((report, fleet.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_market::sim::Supply;

    fn book(n: usize) -> WakeupBook {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap();
        WakeupBook::new(n, &params)
    }

    /// A hostile threshold for draw `u`: boundary-exact grid points,
    /// below-floor, above-cap, and plain uniform values.
    fn threshold(b: &WakeupBook, rng: &mut Rng) -> f64 {
        match rng.range_f64(0.0, 4.0) as usize {
            0 => {
                let k = rng.range_f64(0.0, WAKE_BUCKETS as f64 + 1.0).floor();
                b.lo + k * b.w
            }
            1 => rng.range_f64(-0.05, b.lo),
            2 => rng.range_f64(b.lo + WAKE_BUCKETS as f64 * b.w, 1.0),
            _ => rng.range_f64(b.lo, b.lo + WAKE_BUCKETS as f64 * b.w),
        }
    }

    /// Full structural audit: every bucket list position agrees with
    /// `pos_of`/`bucket_of`, every member's bucket is its threshold's
    /// classifier bucket, and membership matches the reference set.
    fn audit(b: &WakeupBook, registered: &[bool]) {
        let mut seen = 0;
        for (k, list) in b.buckets.iter().enumerate() {
            for (p, &t) in list.iter().enumerate() {
                let tu = t as usize;
                assert!(
                    registered[tu],
                    "tenant {t} in bucket {k} but not registered"
                );
                assert_eq!(b.bucket_of[tu] as usize, k);
                assert_eq!(b.pos_of[tu] as usize, p);
                assert_eq!(b.bucket_index(b.threshold[tu]), k, "misfiled threshold");
                seen += 1;
            }
        }
        let expect = registered.iter().filter(|&&r| r).count();
        assert_eq!(seen, expect, "bucket membership drifted from the reference");
    }

    #[test]
    fn bucket_membership_survives_arbitrary_reregistration() {
        let n = 300;
        let mut b = book(n);
        let mut registered = vec![false; n];
        let mut rng = Rng::seed_from_u64(0xB00C);
        for step in 0..20_000 {
            let t = rng.range_f64(0.0, n as f64) as u32 % n as u32;
            if registered[t as usize] {
                b.unregister(t);
                registered[t as usize] = false;
            } else {
                let thr = threshold(&b, &mut rng);
                b.set_threshold(t, thr);
                b.register(t);
                registered[t as usize] = true;
            }
            if step % 997 == 0 {
                audit(&b, &registered);
            }
        }
        audit(&b, &registered);
    }

    #[test]
    fn sweep_yields_every_threshold_in_the_crossed_range() {
        let n = 400;
        let mut b = book(n);
        let mut registered = vec![false; n];
        let mut rng = Rng::seed_from_u64(0x5EEB);
        for t in 0..n as u32 {
            if rng.chance(0.7) {
                b.set_threshold(t, threshold(&b, &mut rng));
                b.register(t);
                registered[t as usize] = true;
            }
        }
        for _ in 0..2_000 {
            let a = threshold(&b, &mut rng).max(0.0);
            let c = threshold(&b, &mut rng).max(0.0);
            let (pf, pp) = if a < c { (a, c) } else { (c, a) };
            let mut out = Vec::new();
            b.sweep_fall(pf, pp, &mut out);
            out.sort_unstable();
            // Completeness: every registered threshold in [pf, pp) — the
            // prices the market's own fall sweep can have started — is
            // woken. (The sweep may also wake stale thresholds ≥ pp;
            // spurious wakes are harmless by contract.)
            for t in 0..n as u32 {
                let thr = b.threshold[t as usize];
                if registered[t as usize] && thr >= pf && thr < pp {
                    assert!(
                        out.binary_search(&t).is_ok(),
                        "threshold {thr} in [{pf}, {pp}) slept through the sweep"
                    );
                }
            }
            // Soundness: nothing below pf is ever woken.
            for &t in &out {
                assert!(
                    b.threshold[t as usize] >= pf,
                    "woke a threshold below the fall"
                );
            }
        }
    }

    #[test]
    fn repeated_uncond_arms_pin_single_wake_entry() {
        // The already-armed guard: arming the same tenant for the same
        // target slot twice (back-to-back outages, or an outage plus a
        // capacity eviction in one slot) must leave exactly one entry in
        // that slot's wake list — and must not suppress arms for other
        // slots or other tenants.
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap();
        let cfg = ClosedLoopConfig {
            params,
            slot_len: Hours::from_minutes(5.0),
            on_demand: Price::new(0.35),
            job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
            warmup_slots: 1,
            horizon_slots: 1,
            background_arrivals: 0.0,
            max_resubmissions: 0,
            supply: Supply::Unbounded,
            od_arrivals: 0.0,
            od_departure: 0.0,
        };
        let streams = RngStreams::new(1);
        let strategies = [BiddingStrategy::OnDemand; 3];
        let mut fleet = WakeupFleet::new(&strategies, &cfg, &streams, Vec::new());
        fleet.arm_uncond(5, 1);
        fleet.arm_uncond(5, 1); // duplicate arm, same target slot
        fleet.arm_uncond(5, 2);
        fleet.arm_uncond(6, 1); // different target slot still arms
        assert_eq!(
            fleet.calendar.get(&5).unwrap().as_slice(),
            &[1 | UNCOND, 2 | UNCOND],
            "slot-5 wake list"
        );
        assert_eq!(
            fleet.calendar.get(&6).unwrap().as_slice(),
            &[1 | UNCOND],
            "slot-6 wake list"
        );
    }

    #[test]
    fn calendar_entries_recycle_their_vectors() {
        // The pool keeps steady-state slots allocation-free; pushes after
        // a drain reuse the returned vector.
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap();
        let cfg = ClosedLoopConfig {
            params,
            slot_len: Hours::from_minutes(5.0),
            on_demand: Price::new(0.35),
            job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
            warmup_slots: 1,
            horizon_slots: 1,
            background_arrivals: 0.0,
            max_resubmissions: 0,
            supply: Supply::Unbounded,
            od_arrivals: 0.0,
            od_departure: 0.0,
        };
        let streams = RngStreams::new(1);
        let mut fleet = WakeupFleet::new(&[BiddingStrategy::OnDemand], &cfg, &streams, Vec::new());
        fleet.calendar_push(5, 1);
        fleet.calendar_push(5, 2 | UNCOND);
        let mut list = fleet.calendar.remove(&5).unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[1] & !UNCOND, 2);
        list.clear();
        fleet.cal_pool.push(list);
        fleet.calendar_push(9, 3);
        assert_eq!(fleet.cal_pool.len(), 0, "push reused the pooled vector");
        assert!(fleet.calendar.get(&9).unwrap().capacity() >= 2);
    }
}
