//! The portfolio closed loop: N tenants holding positions in M correlated
//! markets at once (DESIGN.md §5h).
//!
//! This is the multi-market sibling of the single-market closed loop: a
//! [`MarketSet`] of M spot markets (instance types × zones) advances in
//! lockstep under one kernel, background demand arrives through the
//! common-shock [`CorrelatedArrivals`] process, and tenants resolve
//! [`PortfolioStrategy`] plans — job splits, cross-zone fallback,
//! spot/on-demand contracts — against the per-market observed histories.
//!
//! Two fleet implementations share this module's source, validation, and
//! report assembly (DESIGN.md §5j):
//!
//! - [`dense`] — the original fleet, every tenant re-evaluated every
//!   slot. Frozen as the equivalence oracle, exactly like
//!   [`crate::closedloop::dense`].
//! - `wakeup` (private; behind [`run_portfolio_loop`]) — the event-driven
//!   default: one price-indexed wakeup book per member market, a shared
//!   pooled calendar, and O(1) skipping of slots where no market's wake
//!   set fires. Bit-identical to [`dense`]
//!   (`tests/portfolio_wakeup_equiv.rs`).
//!
//! ## RNG stream layout
//!
//! Everything is deterministic from one `u64` seed via [`RngStreams`]:
//!
//! - stream `2m` — market `m`'s departure draws,
//! - stream `2m+1` — market `m`'s idiosyncratic background arrivals
//!   (count and bid prices),
//! - stream `2M` — the shared arrival shock,
//! - streams `2M+1 …` — reserved one-per-decision-shard (never drawn
//!   from today, exactly like the single-market fleets).
//!
//! At `M = 1` with a zero shared rate this collapses to the historical
//! layout — stream 0 market, stream 1 background, shared stream untouched
//! (a zero-mean Poisson draws nothing) — which is what makes the
//! degenerate-portfolio parity tests in `tests/portfolio.rs` possible:
//! a one-market [`run_portfolio_loop`] with
//! [`PortfolioStrategy::ZoneFallback`] reproduces [`super::run_closed_loop`]
//! outcome-for-outcome and event-for-event.
//!
//! ## Determinism contract
//!
//! As in the single-market fleets (§5e/§5f): plan resolution is pure and
//! fans out over `spotbid-exec` shards, while bid submission (which
//! assigns per-market [`spotbid_market::sim::BidId`]s), event emission,
//! and report processing stay serial in ascending tenant order, with each
//! tenant's legs processed in plan order. The whole session is
//! bit-identical at any `SPOTBID_THREADS`.

pub mod dense;
mod wakeup;

pub use wakeup::PortfolioFleetStats;

use super::LoopFaults;
use crate::event::Event;
use crate::kernel::{JobDriver, Kernel};
use crate::observer::{BillingObserver, EventLog, Observer};
use crate::source::PriceSource;
use crate::EngineError;
use spotbid_core::portfolio::PortfolioStrategy;
use spotbid_core::JobSpec;
use spotbid_market::multi::{CorrelatedArrivals, MarketSet, MarketSpec};
use spotbid_market::params::MarketParams;
use spotbid_market::sim::{BidKind, BidRequest, ProviderReport, SlotReport, Supply, WorkModel};
use spotbid_market::units::{Cost, Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};
use spotbid_trace::SpotPriceHistory;

/// One member market of a portfolio session.
#[derive(Debug, Clone)]
pub struct PortfolioMarket {
    /// Display name, e.g. `"m1.small/us-east-1a"`.
    pub name: String,
    /// Pricing parameters (Eq. 3) for this market.
    pub params: MarketParams,
    /// Mean idiosyncratic background arrivals per slot.
    pub idio_arrivals: f64,
    /// Supply model: unbounded Eq. 3 pricing or a finite-capacity
    /// provider with capacity evictions (DESIGN.md §5i). Members may mix.
    pub supply: Supply,
}

/// Configuration of one portfolio closed-loop session.
#[derive(Debug, Clone)]
pub struct PortfolioLoopConfig {
    /// The member markets (M ≥ 1).
    pub markets: Vec<PortfolioMarket>,
    /// Mean shared-shock arrivals per slot, added to every market
    /// (dials cross-market demand correlation; 0 = independent).
    pub shared_arrivals: f64,
    /// Pricing-slot length, shared by every market.
    pub slot_len: Hours,
    /// The on-demand price — every tenant's outside option.
    pub on_demand: Price,
    /// The job each tenant needs to run.
    pub job: JobSpec,
    /// Background-only slots before tenants may bid. Must be ≥ 1.
    pub warmup_slots: usize,
    /// Slots simulated with tenants in the market.
    pub horizon_slots: usize,
    /// Times a tenant whose leg was rejected/terminated may re-plan
    /// before giving up on the lost work.
    pub max_resubmissions: u32,
}

impl PortfolioLoopConfig {
    /// The degenerate one-market portfolio equivalent of a single-market
    /// [`super::ClosedLoopConfig`]: same market, same background process
    /// (all idiosyncratic, zero shared shock), same horizon. Used by the
    /// parity wall to pin the M=1 case to the historical path.
    pub fn single(cfg: &super::ClosedLoopConfig, name: impl Into<String>) -> Self {
        PortfolioLoopConfig {
            markets: vec![PortfolioMarket {
                name: name.into(),
                params: cfg.params,
                idio_arrivals: cfg.background_arrivals,
                supply: cfg.supply,
            }],
            shared_arrivals: 0.0,
            slot_len: cfg.slot_len,
            on_demand: cfg.on_demand,
            job: cfg.job,
            warmup_slots: cfg.warmup_slots,
            horizon_slots: cfg.horizon_slots,
            max_resubmissions: cfg.max_resubmissions,
        }
    }
}

/// What happened to one portfolio tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioTenantOutcome {
    /// The tenant's billing tag (its index in the strategy slice).
    pub tenant: u32,
    /// The strategy it planned with.
    pub strategy: PortfolioStrategy,
    /// Whether its job's work was completed (on spot or on demand).
    pub completed: bool,
    /// Slots it ran on spot instances, summed across markets.
    pub spot_slots: u64,
    /// Interruptions suffered, summed across legs.
    pub interruptions: u32,
    /// Times it re-planned after a rejection/termination.
    pub resubmissions: u32,
    /// Total cost, including the on-demand completion of any work left
    /// unfinished when the horizon closed.
    pub cost: Cost,
    /// Savings vs. running the whole job on demand: `1 − cost/(π̄·T_s)`.
    pub savings: f64,
}

/// Aggregate result of one portfolio session.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioReport {
    /// Per-tenant accounting, in tag order.
    pub tenants: Vec<PortfolioTenantOutcome>,
    /// Tenants whose work completed.
    pub completed: usize,
    /// Mean savings across tenants.
    pub mean_savings: f64,
    /// Per-market mean posted price over the tenant-visible horizon.
    pub mean_price: Vec<Price>,
    /// Per-market peak posted price over the tenant-visible horizon.
    pub peak_price: Vec<Price>,
    /// Slots simulated after warmup.
    pub slots: u64,
    /// Per-market provider telemetry: `Some` for finite-capacity members
    /// (revenue split, utilization, reclaims), `None` for unbounded ones.
    pub provider: Vec<Option<ProviderReport>>,
}

/// M endogenous markets as one kernel price source: each slot the
/// correlated background arrives, every market clears, and each posted
/// price is appended to that market's observed history (unless a
/// per-market feed gap swallows it).
#[derive(Debug)]
struct PortfolioSource {
    set: MarketSet,
    arrivals: CorrelatedArrivals,
    /// Stream `2m`: market `m`'s departure draws.
    market_rngs: Vec<Rng>,
    /// Stream `2m+1`: market `m`'s idiosyncratic arrivals and prices.
    arr_rngs: Vec<Rng>,
    /// Stream `2M`: the shared shock (untouched when its rate is 0).
    shared_rng: Rng,
    slot_len: Hours,
    /// Per-market posted prices, in slot order (ground truth).
    posted: Vec<Vec<Price>>,
    /// Per-market prices that reached the tenants' feed.
    observed: Vec<Vec<Price>>,
    faults: Option<Vec<LoopFaults>>,
    /// Scratch: this slot's arrival counts.
    counts: Vec<u64>,
    /// Recycled report buffers (the quote arena).
    spare: Option<Vec<SlotReport>>,
}

impl PortfolioSource {
    fn new(
        cfg: &PortfolioLoopConfig,
        streams: &RngStreams,
        faults: Option<&[LoopFaults]>,
    ) -> Result<Self, EngineError> {
        let m = cfg.markets.len();
        let specs: Vec<MarketSpec> = cfg
            .markets
            .iter()
            .map(|mk| MarketSpec::with_supply(mk.name.clone(), mk.params, mk.supply))
            .collect();
        let set = MarketSet::new(specs, cfg.slot_len).map_err(|e| EngineError::InvalidConfig {
            what: e.to_string(),
        })?;
        let arrivals = CorrelatedArrivals::new(
            cfg.shared_arrivals,
            cfg.markets.iter().map(|mk| mk.idio_arrivals).collect(),
        )
        .map_err(|e| EngineError::InvalidConfig {
            what: e.to_string(),
        })?;
        // Streams 0..2M interleave (market, arrivals) per market; 2M is
        // the shared shock. Decision shards reserve 2M+1… in the fleet.
        let mut chain = streams.streams(2 * m + 1);
        let shared_rng = chain.pop().expect("2M+1 streams");
        let mut market_rngs = Vec::with_capacity(m);
        let mut arr_rngs = Vec::with_capacity(m);
        for (i, rng) in chain.into_iter().enumerate() {
            if i % 2 == 0 {
                market_rngs.push(rng);
            } else {
                arr_rngs.push(rng);
            }
        }
        Ok(PortfolioSource {
            set,
            arrivals,
            market_rngs,
            arr_rngs,
            shared_rng,
            slot_len: cfg.slot_len,
            posted: vec![Vec::new(); m],
            observed: vec![Vec::new(); m],
            faults: faults.map(<[LoopFaults]>::to_vec),
            counts: Vec::new(),
            spare: None,
        })
    }

    fn advance_into(&mut self, reports: &mut [SlotReport]) {
        let slot = self.posted[0].len();
        if let Some(faults) = &self.faults {
            for (m, f) in faults.iter().enumerate() {
                if f.reclaim_at(slot) {
                    self.set.reclaim_next_slot(m);
                }
            }
        }
        self.arrivals
            .draw_into(&mut self.shared_rng, &mut self.arr_rngs, &mut self.counts);
        for m in 0..self.set.len() {
            let (lo, hi) = (
                self.set.market(m).params().pi_min.as_f64(),
                self.set.market(m).params().pi_bar.as_f64(),
            );
            let rng = &mut self.arr_rngs[m];
            for _ in 0..self.counts[m] {
                let price = Price::new(rng.range_f64(lo, hi));
                self.set.submit(
                    m,
                    BidRequest {
                        price,
                        kind: BidKind::OneTime,
                        work: WorkModel::Geometric,
                    },
                );
            }
        }
        self.set.step_into(&mut self.market_rngs, reports);
        for (m, report) in reports.iter().enumerate() {
            self.posted[m].push(report.price);
            let gap = self.faults.as_ref().is_some_and(|fs| fs[m].gap_at(slot));
            if !gap {
                self.observed[m].push(report.price);
            }
        }
    }

    fn warmup(&mut self, slots: usize) {
        let mut reports = vec![SlotReport::empty(); self.set.len()];
        for _ in 0..slots {
            self.advance_into(&mut reports);
        }
        self.spare = Some(reports);
    }

    /// One observed history per market (every price that reached the feed
    /// so far).
    fn observed(&self) -> Result<Vec<SpotPriceHistory>, EngineError> {
        self.observed
            .iter()
            .map(|prices| {
                SpotPriceHistory::new(self.slot_len, prices.clone()).map_err(|e| {
                    EngineError::InvalidConfig {
                        what: format!("observed history: {e}"),
                    }
                })
            })
            .collect()
    }
}

impl PriceSource for PortfolioSource {
    type Quote = Vec<SlotReport>;

    fn markets(&self) -> usize {
        self.set.len()
    }

    fn post(&mut self, slot: u64, _demand: usize) -> Option<Vec<SlotReport>> {
        self.post_many(slot, &[])
    }

    fn post_many(&mut self, _slot: u64, _demands: &[usize]) -> Option<Vec<SlotReport>> {
        // Demand moves prices through the bids actually in each book, not
        // through the kernel's aggregate (same as the single-market loop).
        let mut reports = self
            .spare
            .take()
            .unwrap_or_else(|| vec![SlotReport::empty(); self.set.len()]);
        self.advance_into(&mut reports);
        Some(reports)
    }

    fn quote_events(&self, slot: u64, quote: &Vec<SlotReport>, emit: &mut dyn FnMut(Event)) {
        // One PricePosted per market, in market order (market identity is
        // positional, exactly like the quote vector itself).
        for report in quote {
            emit(Event::PricePosted {
                slot,
                price: report.price,
            });
        }
    }

    fn reclaim(&mut self, quote: Vec<SlotReport>) {
        self.spare = Some(quote);
    }
}

fn validate(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    faults: Option<&[LoopFaults]>,
) -> Result<(), EngineError> {
    if strategies.is_empty() {
        return Err(EngineError::InvalidConfig {
            what: "no tenants".into(),
        });
    }
    if cfg.markets.is_empty() {
        return Err(EngineError::InvalidConfig {
            what: "no markets".into(),
        });
    }
    if cfg.warmup_slots == 0 || cfg.horizon_slots == 0 {
        return Err(EngineError::InvalidConfig {
            what: "warmup_slots and horizon_slots must be ≥ 1".into(),
        });
    }
    let bad = |r: f64| !r.is_finite() || r < 0.0;
    if bad(cfg.shared_arrivals) || cfg.markets.iter().any(|m| bad(m.idio_arrivals)) {
        return Err(EngineError::InvalidConfig {
            what: "arrival rates must be finite and ≥ 0".into(),
        });
    }
    cfg.job.validate().map_err(EngineError::Core)?;
    if cfg.job.slot != cfg.slot_len {
        return Err(EngineError::InvalidConfig {
            what: "job slot length must equal the market slot length".into(),
        });
    }
    if let Some(f) = faults {
        if f.len() != cfg.markets.len() {
            return Err(EngineError::InvalidConfig {
                what: format!(
                    "fault plans ({}) must match markets ({})",
                    f.len(),
                    cfg.markets.len()
                ),
            });
        }
    }
    Ok(())
}

/// One tenant's session-final state, extracted from a fleet for the
/// shared report assembly — everything the §5.1 fallback and the outcome
/// rows need, independent of the fleet's internal layout.
struct TenantFinal {
    tag: u32,
    strategy: PortfolioStrategy,
    completed: bool,
    spot_slots: u64,
    interruptions: u32,
    resubmissions: u32,
    /// Execution work still uncovered at the horizon close (the §5.1
    /// on-demand fallback charge for incomplete tenants).
    remaining: Hours,
}

/// The shared session shell both fleets run under: validation, source
/// construction and warmup, the kernel loop, the §5.1 fallback, and the
/// report assembly — all in a fixed order so every float accumulates
/// identically whichever fleet ran. Returns the fleet alongside the
/// report so callers can read fleet-specific telemetry.
fn run_session<F: JobDriver<PortfolioSource>>(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
    log: Option<&mut EventLog>,
    make_fleet: impl FnOnce(&RngStreams) -> F,
    finals: impl FnOnce(&F) -> Vec<TenantFinal>,
) -> Result<(PortfolioReport, F), EngineError> {
    validate(strategies, cfg, faults)?;

    let streams = RngStreams::new(seed);
    let mut source = PortfolioSource::new(cfg, &streams, faults)?;
    source.warmup(cfg.warmup_slots);

    let mut fleet = make_fleet(&streams);
    let mut billing = BillingObserver::validated();
    {
        let mut kernel = Kernel::new(cfg.slot_len, source);
        let horizon = Some(cfg.horizon_slots as u64);
        match log {
            Some(l) => kernel.run(
                &mut [&mut fleet],
                &mut [&mut billing as &mut dyn Observer, l],
                horizon,
            )?,
            None => kernel.run(&mut [&mut fleet], &mut [&mut billing], horizon)?,
        };
        source = kernel.into_source();
    }
    let mut bill = billing.into_bill();
    let finals = finals(&fleet);

    // §5.1 fallback: incomplete tenants finish their remaining work on
    // demand at the horizon close, in tag order (the float accumulation
    // order is part of the parity contract with the single-market loop).
    for t in &finals {
        if !t.completed && t.remaining > Hours::ZERO {
            bill.try_charge_on_demand(
                (cfg.warmup_slots + cfg.horizon_slots) as u64,
                cfg.on_demand,
                t.remaining,
                t.tag,
            )?;
        }
    }
    let od_cost = (cfg.on_demand * cfg.job.execution).as_f64();
    let totals = bill.totals_by_tag(finals.len());
    let outcomes: Vec<PortfolioTenantOutcome> = finals
        .iter()
        .map(|t| {
            let cost = totals[t.tag as usize];
            PortfolioTenantOutcome {
                tenant: t.tag,
                strategy: t.strategy,
                completed: t.completed,
                spot_slots: t.spot_slots,
                interruptions: t.interruptions,
                resubmissions: t.resubmissions,
                cost,
                savings: 1.0 - cost.as_f64() / od_cost,
            }
        })
        .collect();
    let mut mean_price = Vec::with_capacity(cfg.markets.len());
    let mut peak_price = Vec::with_capacity(cfg.markets.len());
    let mut slots = 0;
    for posted in &source.posted {
        let visible = &posted[cfg.warmup_slots..];
        mean_price.push(Price::new(
            visible.iter().map(|p| p.as_f64()).sum::<f64>() / visible.len().max(1) as f64,
        ));
        peak_price.push(
            visible
                .iter()
                .copied()
                .fold(Price::ZERO, |a, b| if b > a { b } else { a }),
        );
        slots = visible.len() as u64;
    }
    let provider = (0..cfg.markets.len())
        .map(|m| source.set.provider_report(m))
        .collect();
    let report = PortfolioReport {
        completed: outcomes.iter().filter(|o| o.completed).count(),
        mean_savings: outcomes.iter().map(|o| o.savings).sum::<f64>() / outcomes.len() as f64,
        tenants: outcomes,
        mean_price,
        peak_price,
        slots,
        provider,
    };
    Ok((report, fleet))
}

/// Runs one portfolio closed-loop session: warms M correlated markets up
/// with background load, then lets one tenant per strategy plan and bid
/// across them for `horizon_slots`. Deterministic from `seed` at any
/// thread count; at M=1 with [`PortfolioStrategy::ZoneFallback`] it
/// reproduces the single-market [`super::run_closed_loop`] bit-for-bit
/// (see `tests/portfolio.rs`).
///
/// Runs the event-driven wakeup fleet; [`dense::run_portfolio_loop`] is
/// the frozen dense oracle it is held bit-identical to.
///
/// Tenants left incomplete at the horizon finish their remaining work on
/// demand (the §5.1 fallback), so every reported cost is for a completed
/// job and savings are comparable across configurations.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] for empty strategy or market lists, zero
/// warmup or horizon, non-finite arrival rates, or a fault-plan/market
/// count mismatch; [`EngineError::Core`] if a strategy fails to resolve.
pub fn run_portfolio_loop(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
) -> Result<PortfolioReport, EngineError> {
    wakeup::run(strategies, cfg, seed, None, None).map(|(report, _)| report)
}

/// As [`run_portfolio_loop`], also returning the wakeup fleet's
/// [`PortfolioFleetStats`] (slots skipped in O(1), wakeups processed,
/// per-market sweep counts).
///
/// # Errors
///
/// As [`run_portfolio_loop`].
pub fn run_portfolio_loop_with_stats(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
) -> Result<(PortfolioReport, PortfolioFleetStats), EngineError> {
    wakeup::run(strategies, cfg, seed, None, None)
}

/// As [`run_portfolio_loop`], optionally fault-injected (one
/// [`LoopFaults`] plan per market), also returning the full event stream —
/// the parity wall's view of a run.
///
/// # Errors
///
/// As [`run_portfolio_loop`].
pub fn run_portfolio_loop_logged(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
) -> Result<(PortfolioReport, Vec<Event>), EngineError> {
    let mut log = EventLog::new();
    let (report, _) = wakeup::run(strategies, cfg, seed, faults, Some(&mut log))?;
    Ok((report, log.into_events()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_core::BiddingStrategy;

    fn market(name: &str, pi_min: f64, idio: f64) -> PortfolioMarket {
        PortfolioMarket {
            name: name.into(),
            params: MarketParams::new(Price::new(0.35), Price::new(pi_min), 0.05, 0.05).unwrap(),
            idio_arrivals: idio,
            supply: Supply::Unbounded,
        }
    }

    fn config(m: usize) -> PortfolioLoopConfig {
        PortfolioLoopConfig {
            markets: (0..m)
                .map(|i| market(&format!("zone-{i}"), 0.02 + 0.005 * i as f64, 2.0))
                .collect(),
            shared_arrivals: 1.0,
            slot_len: Hours::from_minutes(5.0),
            on_demand: Price::new(0.35),
            job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
            warmup_slots: 60,
            horizon_slots: 300,
            max_resubmissions: 4,
        }
    }

    fn strategies() -> Vec<PortfolioStrategy> {
        vec![
            PortfolioStrategy::ZoneFallback {
                home: 0,
                base: BiddingStrategy::FixedBid(Price::new(0.30)),
            },
            PortfolioStrategy::SplitEven {
                base: BiddingStrategy::FixedBid(Price::new(0.32)),
            },
            PortfolioStrategy::Contract {
                spot_share: 0.5,
                base: BiddingStrategy::OptimalPersistent,
            },
        ]
    }

    #[test]
    fn deterministic_from_seed() {
        let cfg = config(3);
        let strats = strategies();
        let a = run_portfolio_loop(&strats, &cfg, 0xF011).unwrap();
        let b = run_portfolio_loop(&strats, &cfg, 0xF011).unwrap();
        assert_eq!(a, b);
        let c = run_portfolio_loop(&strats, &cfg, 0xF012).unwrap();
        assert_ne!(a.mean_price, c.mean_price);
    }

    #[test]
    fn portfolio_tenants_complete_and_are_accounted() {
        let cfg = config(4);
        let report = run_portfolio_loop(&strategies(), &cfg, 42).unwrap();
        assert_eq!(report.tenants.len(), 3);
        assert_eq!(report.mean_price.len(), 4);
        assert_eq!(report.peak_price.len(), 4);
        for t in &report.tenants {
            assert!(t.cost.as_f64().is_finite() && t.cost.as_f64() > 0.0);
            assert!(t.savings <= 1.0);
        }
        // Quiet markets, near-π̄ bids: everyone should finish.
        assert_eq!(report.completed, 3, "{report:?}");
    }

    #[test]
    fn wakeup_default_matches_dense_oracle_smoke() {
        // The full four-regime wall lives in
        // `tests/portfolio_wakeup_equiv.rs`; this in-tree smoke keeps the
        // contract visible next to the implementation.
        let cfg = config(3);
        let strats = strategies();
        let a = run_portfolio_loop(&strats, &cfg, 0xD0_11AB).unwrap();
        let b = dense::run_portfolio_loop(&strats, &cfg, 0xD0_11AB).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_report_skipped_slots_on_quiet_sessions() {
        // The high bidders start immediately and finish fast; the
        // below-floor persistent bid pends forever, pinning the session
        // to the full horizon — whose tail must then skip in O(1).
        let cfg = config(2);
        let mut strats = strategies();
        strats.push(PortfolioStrategy::ZoneFallback {
            home: 0,
            base: BiddingStrategy::FixedBid(Price::new(0.005)),
        });
        let (report, stats) = run_portfolio_loop_with_stats(&strats, &cfg, 0x57A7).unwrap();
        assert_eq!(stats.slots, cfg.horizon_slots as u64);
        assert_eq!(stats.swept.len(), 2);
        assert!(
            stats.skipped_slots > 0,
            "quiet session must skip slots: {stats:?} {report:?}"
        );
        assert!(stats.woken > 0);
    }

    #[test]
    fn contract_share_zero_is_pure_on_demand() {
        let cfg = config(2);
        let report = run_portfolio_loop(
            &[PortfolioStrategy::Contract {
                spot_share: 0.0,
                base: BiddingStrategy::FixedBid(Price::new(0.30)),
            }],
            &cfg,
            7,
        )
        .unwrap();
        let t = &report.tenants[0];
        assert!(t.completed);
        assert_eq!(t.spot_slots, 0);
        assert!((t.cost.as_f64() - 0.35).abs() < 1e-12, "od × 1h job");
        assert!(t.savings.abs() < 1e-12);
    }

    #[test]
    fn zone_fallback_rotates_on_reclamation() {
        // Market 0 is reclaimed every other slot after warmup (a reclaim
        // on *every* slot would let pending bids wait the outage out
        // forever — see `SpotMarket::reclaim_next_slot`); a one-time
        // bidder whose home is 0 starts on a normal slot, is reclaimed on
        // the next, and must fall back to market 1.
        let cfg = config(2);
        let total = cfg.warmup_slots + cfg.horizon_slots;
        let mut f0 = LoopFaults {
            gap: vec![false; total],
            reclaim: vec![false; total],
        };
        for s in (cfg.warmup_slots..total).step_by(2) {
            f0.reclaim[s] = true;
        }
        let faults = vec![f0, LoopFaults::default()];
        let (report, events) = run_portfolio_loop_logged(
            &[PortfolioStrategy::ZoneFallback {
                home: 0,
                base: BiddingStrategy::OptimalOneTime,
            }],
            &cfg,
            11,
            Some(&faults),
        )
        .unwrap();
        let t = &report.tenants[0];
        assert!(
            t.resubmissions > 0,
            "constant reclamation must force a fallback: {report:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, Event::Rejected { .. })),
            "the reclaimed one-time leg is rejected"
        );
        // Whatever happened, the job's work is fully accounted for.
        assert!(t.cost.as_f64() > 0.0);
    }

    #[test]
    fn invalid_configs_are_refused() {
        let cfg = config(2);
        let strats = strategies();
        assert!(run_portfolio_loop(&[], &cfg, 1).is_err());
        let bad = PortfolioLoopConfig {
            markets: Vec::new(),
            ..cfg.clone()
        };
        assert!(run_portfolio_loop(&strats, &bad, 1).is_err());
        let bad = PortfolioLoopConfig {
            shared_arrivals: f64::NAN,
            ..cfg.clone()
        };
        assert!(run_portfolio_loop(&strats, &bad, 1).is_err());
        // One fault plan for two markets.
        let r = run_portfolio_loop_logged(&strats, &cfg, 1, Some(&[LoopFaults::default()]));
        assert!(r.is_err());
    }
}
