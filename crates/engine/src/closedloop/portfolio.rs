//! The portfolio closed loop: N tenants holding positions in M correlated
//! markets at once (DESIGN.md §5h).
//!
//! This is the multi-market sibling of the single-market closed loop: a
//! [`MarketSet`] of M spot markets (instance types × zones) advances in
//! lockstep under one kernel, background demand arrives through the
//! common-shock [`CorrelatedArrivals`] process, and tenants resolve
//! [`PortfolioStrategy`] plans — job splits, cross-zone fallback,
//! spot/on-demand contracts — against the per-market observed histories.
//!
//! ## RNG stream layout
//!
//! Everything is deterministic from one `u64` seed via [`RngStreams`]:
//!
//! - stream `2m` — market `m`'s departure draws,
//! - stream `2m+1` — market `m`'s idiosyncratic background arrivals
//!   (count and bid prices),
//! - stream `2M` — the shared arrival shock,
//! - streams `2M+1 …` — reserved one-per-decision-shard (never drawn
//!   from today, exactly like the single-market fleets).
//!
//! At `M = 1` with a zero shared rate this collapses to the historical
//! layout — stream 0 market, stream 1 background, shared stream untouched
//! (a zero-mean Poisson draws nothing) — which is what makes the
//! degenerate-portfolio parity tests in `tests/portfolio.rs` possible:
//! a one-market [`run_portfolio_loop`] with
//! [`PortfolioStrategy::ZoneFallback`] reproduces [`super::run_closed_loop`]
//! outcome-for-outcome and event-for-event.
//!
//! ## Determinism contract
//!
//! As in the single-market fleets (§5e/§5f): plan resolution is pure and
//! fans out over `spotbid-exec` shards, while bid submission (which
//! assigns per-market [`BidId`]s), event emission, and report processing
//! stay serial in ascending tenant order, with each tenant's legs
//! processed in plan order. The whole session is bit-identical at any
//! `SPOTBID_THREADS`.

use super::dense::SHARD_SIZE;
use super::LoopFaults;
use crate::billing::{LineItem, UsageKind};
use crate::event::Event;
use crate::kernel::{DriverStatus, JobDriver, Kernel};
use crate::observer::{BillingObserver, EventLog, Observer};
use crate::source::PriceSource;
use crate::EngineError;
use spotbid_core::portfolio::{PortfolioPlan, PortfolioStrategy};
use spotbid_core::{BidDecision, CoreError, JobSpec};
use spotbid_market::multi::{CorrelatedArrivals, MarketSet, MarketSpec};
use spotbid_market::params::MarketParams;
use spotbid_market::sim::{
    BidId, BidKind, BidRequest, ProviderReport, SlotReport, Supply, WorkModel,
};
use spotbid_market::units::{Cost, Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};
use spotbid_trace::SpotPriceHistory;

/// One member market of a portfolio session.
#[derive(Debug, Clone)]
pub struct PortfolioMarket {
    /// Display name, e.g. `"m1.small/us-east-1a"`.
    pub name: String,
    /// Pricing parameters (Eq. 3) for this market.
    pub params: MarketParams,
    /// Mean idiosyncratic background arrivals per slot.
    pub idio_arrivals: f64,
    /// Supply model: unbounded Eq. 3 pricing or a finite-capacity
    /// provider with capacity evictions (DESIGN.md §5i). Members may mix.
    pub supply: Supply,
}

/// Configuration of one portfolio closed-loop session.
#[derive(Debug, Clone)]
pub struct PortfolioLoopConfig {
    /// The member markets (M ≥ 1).
    pub markets: Vec<PortfolioMarket>,
    /// Mean shared-shock arrivals per slot, added to every market
    /// (dials cross-market demand correlation; 0 = independent).
    pub shared_arrivals: f64,
    /// Pricing-slot length, shared by every market.
    pub slot_len: Hours,
    /// The on-demand price — every tenant's outside option.
    pub on_demand: Price,
    /// The job each tenant needs to run.
    pub job: JobSpec,
    /// Background-only slots before tenants may bid. Must be ≥ 1.
    pub warmup_slots: usize,
    /// Slots simulated with tenants in the market.
    pub horizon_slots: usize,
    /// Times a tenant whose leg was rejected/terminated may re-plan
    /// before giving up on the lost work.
    pub max_resubmissions: u32,
}

impl PortfolioLoopConfig {
    /// The degenerate one-market portfolio equivalent of a single-market
    /// [`super::ClosedLoopConfig`]: same market, same background process
    /// (all idiosyncratic, zero shared shock), same horizon. Used by the
    /// parity wall to pin the M=1 case to the historical path.
    pub fn single(cfg: &super::ClosedLoopConfig, name: impl Into<String>) -> Self {
        PortfolioLoopConfig {
            markets: vec![PortfolioMarket {
                name: name.into(),
                params: cfg.params,
                idio_arrivals: cfg.background_arrivals,
                supply: cfg.supply,
            }],
            shared_arrivals: 0.0,
            slot_len: cfg.slot_len,
            on_demand: cfg.on_demand,
            job: cfg.job,
            warmup_slots: cfg.warmup_slots,
            horizon_slots: cfg.horizon_slots,
            max_resubmissions: cfg.max_resubmissions,
        }
    }
}

/// What happened to one portfolio tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortfolioTenantOutcome {
    /// The tenant's billing tag (its index in the strategy slice).
    pub tenant: u32,
    /// The strategy it planned with.
    pub strategy: PortfolioStrategy,
    /// Whether its job's work was completed (on spot or on demand).
    pub completed: bool,
    /// Slots it ran on spot instances, summed across markets.
    pub spot_slots: u64,
    /// Interruptions suffered, summed across legs.
    pub interruptions: u32,
    /// Times it re-planned after a rejection/termination.
    pub resubmissions: u32,
    /// Total cost, including the on-demand completion of any work left
    /// unfinished when the horizon closed.
    pub cost: Cost,
    /// Savings vs. running the whole job on demand: `1 − cost/(π̄·T_s)`.
    pub savings: f64,
}

/// Aggregate result of one portfolio session.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioReport {
    /// Per-tenant accounting, in tag order.
    pub tenants: Vec<PortfolioTenantOutcome>,
    /// Tenants whose work completed.
    pub completed: usize,
    /// Mean savings across tenants.
    pub mean_savings: f64,
    /// Per-market mean posted price over the tenant-visible horizon.
    pub mean_price: Vec<Price>,
    /// Per-market peak posted price over the tenant-visible horizon.
    pub peak_price: Vec<Price>,
    /// Slots simulated after warmup.
    pub slots: u64,
    /// Per-market provider telemetry: `Some` for finite-capacity members
    /// (revenue split, utilization, reclaims), `None` for unbounded ones.
    pub provider: Vec<Option<ProviderReport>>,
}

/// M endogenous markets as one kernel price source: each slot the
/// correlated background arrives, every market clears, and each posted
/// price is appended to that market's observed history (unless a
/// per-market feed gap swallows it).
#[derive(Debug)]
struct PortfolioSource {
    set: MarketSet,
    arrivals: CorrelatedArrivals,
    /// Stream `2m`: market `m`'s departure draws.
    market_rngs: Vec<Rng>,
    /// Stream `2m+1`: market `m`'s idiosyncratic arrivals and prices.
    arr_rngs: Vec<Rng>,
    /// Stream `2M`: the shared shock (untouched when its rate is 0).
    shared_rng: Rng,
    slot_len: Hours,
    /// Per-market posted prices, in slot order (ground truth).
    posted: Vec<Vec<Price>>,
    /// Per-market prices that reached the tenants' feed.
    observed: Vec<Vec<Price>>,
    faults: Option<Vec<LoopFaults>>,
    /// Scratch: this slot's arrival counts.
    counts: Vec<u64>,
    /// Recycled report buffers (the quote arena).
    spare: Option<Vec<SlotReport>>,
}

impl PortfolioSource {
    fn new(
        cfg: &PortfolioLoopConfig,
        streams: &RngStreams,
        faults: Option<&[LoopFaults]>,
    ) -> Result<Self, EngineError> {
        let m = cfg.markets.len();
        let specs: Vec<MarketSpec> = cfg
            .markets
            .iter()
            .map(|mk| MarketSpec::with_supply(mk.name.clone(), mk.params, mk.supply))
            .collect();
        let set = MarketSet::new(specs, cfg.slot_len).map_err(|e| EngineError::InvalidConfig {
            what: e.to_string(),
        })?;
        let arrivals = CorrelatedArrivals::new(
            cfg.shared_arrivals,
            cfg.markets.iter().map(|mk| mk.idio_arrivals).collect(),
        )
        .map_err(|e| EngineError::InvalidConfig {
            what: e.to_string(),
        })?;
        // Streams 0..2M interleave (market, arrivals) per market; 2M is
        // the shared shock. Decision shards reserve 2M+1… in the fleet.
        let mut chain = streams.streams(2 * m + 1);
        let shared_rng = chain.pop().expect("2M+1 streams");
        let mut market_rngs = Vec::with_capacity(m);
        let mut arr_rngs = Vec::with_capacity(m);
        for (i, rng) in chain.into_iter().enumerate() {
            if i % 2 == 0 {
                market_rngs.push(rng);
            } else {
                arr_rngs.push(rng);
            }
        }
        Ok(PortfolioSource {
            set,
            arrivals,
            market_rngs,
            arr_rngs,
            shared_rng,
            slot_len: cfg.slot_len,
            posted: vec![Vec::new(); m],
            observed: vec![Vec::new(); m],
            faults: faults.map(<[LoopFaults]>::to_vec),
            counts: Vec::new(),
            spare: None,
        })
    }

    fn advance_into(&mut self, reports: &mut [SlotReport]) {
        let slot = self.posted[0].len();
        if let Some(faults) = &self.faults {
            for (m, f) in faults.iter().enumerate() {
                if f.reclaim_at(slot) {
                    self.set.reclaim_next_slot(m);
                }
            }
        }
        self.arrivals
            .draw_into(&mut self.shared_rng, &mut self.arr_rngs, &mut self.counts);
        for m in 0..self.set.len() {
            let (lo, hi) = (
                self.set.market(m).params().pi_min.as_f64(),
                self.set.market(m).params().pi_bar.as_f64(),
            );
            let rng = &mut self.arr_rngs[m];
            for _ in 0..self.counts[m] {
                let price = Price::new(rng.range_f64(lo, hi));
                self.set.submit(
                    m,
                    BidRequest {
                        price,
                        kind: BidKind::OneTime,
                        work: WorkModel::Geometric,
                    },
                );
            }
        }
        self.set.step_into(&mut self.market_rngs, reports);
        for (m, report) in reports.iter().enumerate() {
            self.posted[m].push(report.price);
            let gap = self.faults.as_ref().is_some_and(|fs| fs[m].gap_at(slot));
            if !gap {
                self.observed[m].push(report.price);
            }
        }
    }

    fn warmup(&mut self, slots: usize) {
        let mut reports = vec![SlotReport::empty(); self.set.len()];
        for _ in 0..slots {
            self.advance_into(&mut reports);
        }
        self.spare = Some(reports);
    }

    /// One observed history per market (every price that reached the feed
    /// so far).
    fn observed(&self) -> Result<Vec<SpotPriceHistory>, EngineError> {
        self.observed
            .iter()
            .map(|prices| {
                SpotPriceHistory::new(self.slot_len, prices.clone()).map_err(|e| {
                    EngineError::InvalidConfig {
                        what: format!("observed history: {e}"),
                    }
                })
            })
            .collect()
    }
}

impl PriceSource for PortfolioSource {
    type Quote = Vec<SlotReport>;

    fn markets(&self) -> usize {
        self.set.len()
    }

    fn post(&mut self, slot: u64, _demand: usize) -> Option<Vec<SlotReport>> {
        self.post_many(slot, &[])
    }

    fn post_many(&mut self, _slot: u64, _demands: &[usize]) -> Option<Vec<SlotReport>> {
        // Demand moves prices through the bids actually in each book, not
        // through the kernel's aggregate (same as the single-market loop).
        let mut reports = self
            .spare
            .take()
            .unwrap_or_else(|| vec![SlotReport::empty(); self.set.len()]);
        self.advance_into(&mut reports);
        Some(reports)
    }

    fn quote_events(&self, slot: u64, quote: &Vec<SlotReport>, emit: &mut dyn FnMut(Event)) {
        // One PricePosted per market, in market order (market identity is
        // positional, exactly like the quote vector itself).
        for report in quote {
            emit(Event::PricePosted {
                slot,
                price: report.price,
            });
        }
    }

    fn reclaim(&mut self, quote: Vec<SlotReport>) {
        self.spare = Some(quote);
    }
}

/// One live spot position of a tenant.
#[derive(Debug, Clone, Copy)]
struct Leg {
    market: u32,
    bid_id: BidId,
    /// Slots of work this leg was submitted for.
    assigned: u32,
    /// Slots it has run so far.
    ran: u32,
    running: bool,
}

/// One strategy-driven portfolio tenant: re-plans against the per-market
/// histories whenever it must (re-)bid, and tracks every live leg through
/// its market's slot report.
#[derive(Debug)]
struct PortfolioTenant {
    strategy: PortfolioStrategy,
    tag: u32,
    /// Slots of work awaiting (re-)submission.
    pending: u64,
    /// Live spot legs, in plan (ascending-market) submission order.
    legs: Vec<Leg>,
    /// On-demand work already charged (contract legs and od decisions).
    od_charged: Hours,
    slots_run: u64,
    interruptions: u32,
    resubmissions: u32,
    completed: bool,
    done_pending: bool,
    needs_submit: bool,
    /// Lost work whose resubmission budget ran out is abandoned.
    gave_up: bool,
}

impl PortfolioTenant {
    fn new(strategy: PortfolioStrategy, cfg: &PortfolioLoopConfig, tag: u32) -> Self {
        PortfolioTenant {
            strategy,
            tag,
            pending: cfg.job.slots_needed(),
            legs: Vec::new(),
            od_charged: Hours::ZERO,
            slots_run: 0,
            interruptions: 0,
            resubmissions: 0,
            completed: false,
            done_pending: false,
            needs_submit: true,
            gave_up: false,
        }
    }

    /// Execution work still uncovered by spot slots run and on-demand
    /// charges.
    fn remaining_work(&self, job: &JobSpec) -> Hours {
        (job.execution - job.slot * self.slots_run as f64 - self.od_charged).max(Hours::ZERO)
    }

    /// Acts on a resolved plan: charges on-demand legs and submits spot
    /// legs, scaling each leg's assignment down to the work still pending.
    /// Serial per tenant — per-market bid ids are assigned here, so call
    /// order must be tenant order.
    fn apply_plan(
        &mut self,
        plan: &PortfolioPlan,
        job: &JobSpec,
        slot: u64,
        source: &mut PortfolioSource,
        live: &mut [u32],
        emit: &mut dyn FnMut(Event),
    ) {
        for leg in &plan.legs {
            if self.pending == 0 {
                break;
            }
            // A re-plan covers only the lost work: cap each leg at what is
            // still pending (the first plan partitions exactly, so this is
            // the identity there — and `max(1)` mirrors the single-market
            // fleet's defensive floor).
            let assigned = leg.slots.min(self.pending).max(1);
            match leg.decision {
                BidDecision::OnDemand { price } => {
                    let work = (job.slot * assigned as f64).min(self.remaining_work(job));
                    if work > Hours::ZERO {
                        emit(Event::Charged {
                            item: LineItem {
                                slot,
                                price,
                                duration: work,
                                kind: UsageKind::OnDemand,
                                tag: self.tag,
                            },
                        });
                        self.od_charged += work;
                    }
                    self.pending -= assigned;
                }
                BidDecision::Spot { price, persistent } => {
                    let id = source.set.submit(
                        leg.market,
                        BidRequest {
                            price,
                            kind: if persistent {
                                BidKind::Persistent
                            } else {
                                BidKind::OneTime
                            },
                            work: WorkModel::FixedSlots(assigned as u32),
                        },
                    );
                    self.legs.push(Leg {
                        market: leg.market as u32,
                        bid_id: id,
                        assigned: assigned as u32,
                        ran: 0,
                        running: false,
                    });
                    live[leg.market] += 1;
                    self.pending -= assigned;
                    emit(Event::BidSubmitted {
                        slot,
                        tenant: self.tag,
                        price,
                        persistent,
                    });
                }
            }
        }
        if !self.completed && self.pending == 0 && self.legs.is_empty() {
            // Everything was covered on demand: the job is done before the
            // market even clears (same shape as the single-market
            // on-demand decision).
            self.completed = true;
            self.done_pending = true;
            emit(Event::Completed {
                slot,
                tenant: self.tag,
            });
        }
    }

    /// Advances the tenant one slot against every market's report. Legs
    /// are processed in submission order; event vectors are id-sorted, so
    /// each membership test is a binary search.
    fn slot_update(
        &mut self,
        slot: u64,
        reports: &[SlotReport],
        job: &JobSpec,
        max_resubmissions: u32,
        live: &mut [u32],
        emit: &mut dyn FnMut(Event),
    ) -> DriverStatus {
        if self.done_pending {
            return DriverStatus::Done;
        }
        let mut k = 0;
        while k < self.legs.len() {
            let leg = &mut self.legs[k];
            let report = &reports[leg.market as usize];
            let id = leg.bid_id;
            let started = report.started.binary_search(&id).is_ok();
            let interrupted = report.interrupted.binary_search(&id).is_ok();
            let finished = report.finished.binary_search(&id).is_ok();
            let terminated = report.terminated.binary_search(&id).is_ok();
            let ran = started || (leg.running && !interrupted && !terminated);
            if started {
                leg.running = true;
                emit(Event::BidAccepted {
                    slot,
                    tenant: self.tag,
                });
            }
            if interrupted {
                self.interruptions += 1;
                emit(Event::Interrupted {
                    slot,
                    tenant: self.tag,
                });
            }
            if ran {
                leg.ran += 1;
                self.slots_run += 1;
                emit(Event::Charged {
                    item: LineItem {
                        slot,
                        price: report.price,
                        duration: job.slot,
                        kind: UsageKind::Spot,
                        tag: self.tag,
                    },
                });
            }
            if interrupted || terminated || finished {
                leg.running = false;
            }
            if finished {
                live[leg.market as usize] -= 1;
                self.legs.remove(k);
                continue;
            }
            if terminated {
                emit(Event::Rejected {
                    slot,
                    tenant: self.tag,
                });
                let lost = u64::from(leg.assigned - leg.ran);
                live[leg.market as usize] -= 1;
                self.legs.remove(k);
                self.pending += lost;
                if self.resubmissions < max_resubmissions {
                    self.resubmissions += 1;
                    self.needs_submit = true;
                    // Cross-zone fallback: the next plan's home market is
                    // the next zone over.
                    if let PortfolioStrategy::ZoneFallback { home, base } = self.strategy {
                        self.strategy = PortfolioStrategy::ZoneFallback {
                            home: (home + 1) % reports.len(),
                            base,
                        };
                    }
                } else {
                    self.gave_up = true;
                }
                continue;
            }
            k += 1;
        }
        if !self.completed && self.legs.is_empty() && self.pending == 0 {
            self.completed = true;
            emit(Event::Completed {
                slot,
                tenant: self.tag,
            });
            return DriverStatus::Done;
        }
        if self.gave_up && self.legs.is_empty() && !self.needs_submit {
            return DriverStatus::Done;
        }
        DriverStatus::Active
    }
}

/// Every portfolio tenant as one kernel driver, with sharded plan
/// resolution — the multi-market counterpart of the dense fleet, same
/// §5e/§5f contract: pure decisions fan out, market-visible side effects
/// stay serial in ascending tenant order.
struct PortfolioFleet {
    tenants: Vec<PortfolioTenant>,
    done: Vec<bool>,
    shard_rngs: Vec<Rng>,
    job: JobSpec,
    on_demand: Price,
    max_resubmissions: u32,
    /// Live spot legs per market (the kernel's per-market demand signal).
    live: Vec<u32>,
    /// Scratch: indices of tenants that must (re-)plan this slot.
    needy: Vec<u32>,
}

impl PortfolioFleet {
    fn new(tenants: Vec<PortfolioTenant>, cfg: &PortfolioLoopConfig, streams: &RngStreams) -> Self {
        let m = cfg.markets.len();
        let max_shards = tenants.len().div_ceil(SHARD_SIZE);
        // Shard streams live after the market/arrival/shared block.
        let mut chain = streams.streams(2 * m + 1 + max_shards);
        let shard_rngs = chain.split_off(2 * m + 1);
        let done = vec![false; tenants.len()];
        PortfolioFleet {
            tenants,
            done,
            shard_rngs,
            job: cfg.job,
            on_demand: cfg.on_demand,
            max_resubmissions: cfg.max_resubmissions,
            live: vec![0; m],
            needy: Vec::new(),
        }
    }
}

impl JobDriver<PortfolioSource> for PortfolioFleet {
    fn demand(&self) -> usize {
        self.live.iter().map(|&n| n as usize).sum()
    }

    fn demand_in(&self, market: usize) -> usize {
        self.live[market] as usize
    }

    fn before_slot(
        &mut self,
        slot: u64,
        source: &mut PortfolioSource,
        emit: &mut dyn FnMut(Event),
    ) -> Result<(), EngineError> {
        self.needy.clear();
        for (i, t) in self.tenants.iter_mut().enumerate() {
            if !self.done[i] && t.needs_submit && !t.done_pending {
                t.needs_submit = false;
                self.needy.push(i as u32);
            }
        }
        if self.needy.is_empty() {
            return Ok(());
        }
        // One per-market history snapshot for the whole slot.
        let histories = source.observed()?;
        let inputs: Vec<PortfolioStrategy> = self
            .needy
            .iter()
            .map(|&i| self.tenants[i as usize].strategy)
            .collect();
        let shards = inputs.len().div_ceil(SHARD_SIZE);
        let shard_rngs = &self.shard_rngs;
        let (job, on_demand) = (self.job, self.on_demand);
        let plans: Vec<Vec<Result<PortfolioPlan, CoreError>>> =
            spotbid_exec::par_map(shards, |s| {
                let mut _rng = shard_rngs[s].clone(); // reserved, see module docs
                let lo = s * SHARD_SIZE;
                let hi = (lo + SHARD_SIZE).min(inputs.len());
                inputs[lo..hi]
                    .iter()
                    .map(|strat| strat.decide(&histories, &job, on_demand))
                    .collect()
            });
        // Serial, ordered apply: per-market bid ids and events come out
        // exactly as if each tenant had planned in turn.
        let mut flat = plans.into_iter().flatten();
        for k in 0..self.needy.len() {
            let i = self.needy[k] as usize;
            let plan = flat
                .next()
                .expect("one plan per needy tenant")
                .map_err(EngineError::Core)?;
            self.tenants[i].apply_plan(&plan, &job, slot, source, &mut self.live, emit);
        }
        Ok(())
    }

    fn on_slot(
        &mut self,
        slot: u64,
        reports: &Vec<SlotReport>,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError> {
        let mut all_done = true;
        for i in 0..self.tenants.len() {
            if self.done[i] {
                continue;
            }
            let status = self.tenants[i].slot_update(
                slot,
                reports,
                &self.job,
                self.max_resubmissions,
                &mut self.live,
                emit,
            );
            if status == DriverStatus::Done {
                self.done[i] = true;
            } else {
                all_done = false;
            }
        }
        if all_done {
            Ok(DriverStatus::Done)
        } else {
            Ok(DriverStatus::Active)
        }
    }
}

fn validate(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    faults: Option<&[LoopFaults]>,
) -> Result<(), EngineError> {
    if strategies.is_empty() {
        return Err(EngineError::InvalidConfig {
            what: "no tenants".into(),
        });
    }
    if cfg.markets.is_empty() {
        return Err(EngineError::InvalidConfig {
            what: "no markets".into(),
        });
    }
    if cfg.warmup_slots == 0 || cfg.horizon_slots == 0 {
        return Err(EngineError::InvalidConfig {
            what: "warmup_slots and horizon_slots must be ≥ 1".into(),
        });
    }
    let bad = |r: f64| !r.is_finite() || r < 0.0;
    if bad(cfg.shared_arrivals) || cfg.markets.iter().any(|m| bad(m.idio_arrivals)) {
        return Err(EngineError::InvalidConfig {
            what: "arrival rates must be finite and ≥ 0".into(),
        });
    }
    cfg.job.validate().map_err(EngineError::Core)?;
    if cfg.job.slot != cfg.slot_len {
        return Err(EngineError::InvalidConfig {
            what: "job slot length must equal the market slot length".into(),
        });
    }
    if let Some(f) = faults {
        if f.len() != cfg.markets.len() {
            return Err(EngineError::InvalidConfig {
                what: format!(
                    "fault plans ({}) must match markets ({})",
                    f.len(),
                    cfg.markets.len()
                ),
            });
        }
    }
    Ok(())
}

fn run_portfolio(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
    log: Option<&mut EventLog>,
) -> Result<PortfolioReport, EngineError> {
    validate(strategies, cfg, faults)?;

    let streams = RngStreams::new(seed);
    let mut source = PortfolioSource::new(cfg, &streams, faults)?;
    source.warmup(cfg.warmup_slots);

    let tenants: Vec<PortfolioTenant> = strategies
        .iter()
        .enumerate()
        .map(|(i, s)| PortfolioTenant::new(*s, cfg, i as u32))
        .collect();
    let mut fleet = PortfolioFleet::new(tenants, cfg, &streams);
    let mut billing = BillingObserver::validated();
    {
        let mut kernel = Kernel::new(cfg.slot_len, source);
        let horizon = Some(cfg.horizon_slots as u64);
        match log {
            Some(l) => kernel.run(
                &mut [&mut fleet],
                &mut [&mut billing as &mut dyn Observer, l],
                horizon,
            )?,
            None => kernel.run(&mut [&mut fleet], &mut [&mut billing], horizon)?,
        };
        source = kernel.into_source();
    }
    let mut bill = billing.into_bill();

    // §5.1 fallback: incomplete tenants finish their remaining work on
    // demand at the horizon close, in tag order (the float accumulation
    // order is part of the parity contract with the single-market loop).
    for t in &fleet.tenants {
        if !t.completed {
            let work = t.remaining_work(&cfg.job);
            if work > Hours::ZERO {
                bill.try_charge_on_demand(
                    (cfg.warmup_slots + cfg.horizon_slots) as u64,
                    cfg.on_demand,
                    work,
                    t.tag,
                )?;
            }
        }
    }
    let od_cost = (cfg.on_demand * cfg.job.execution).as_f64();
    let totals = bill.totals_by_tag(fleet.tenants.len());
    let outcomes: Vec<PortfolioTenantOutcome> = fleet
        .tenants
        .iter()
        .map(|t| {
            let cost = totals[t.tag as usize];
            PortfolioTenantOutcome {
                tenant: t.tag,
                strategy: t.strategy,
                completed: t.completed,
                spot_slots: t.slots_run,
                interruptions: t.interruptions,
                resubmissions: t.resubmissions,
                cost,
                savings: 1.0 - cost.as_f64() / od_cost,
            }
        })
        .collect();
    let mut mean_price = Vec::with_capacity(cfg.markets.len());
    let mut peak_price = Vec::with_capacity(cfg.markets.len());
    let mut slots = 0;
    for posted in &source.posted {
        let visible = &posted[cfg.warmup_slots..];
        mean_price.push(Price::new(
            visible.iter().map(|p| p.as_f64()).sum::<f64>() / visible.len().max(1) as f64,
        ));
        peak_price.push(
            visible
                .iter()
                .copied()
                .fold(Price::ZERO, |a, b| if b > a { b } else { a }),
        );
        slots = visible.len() as u64;
    }
    let provider = (0..cfg.markets.len())
        .map(|m| source.set.provider_report(m))
        .collect();
    Ok(PortfolioReport {
        completed: outcomes.iter().filter(|o| o.completed).count(),
        mean_savings: outcomes.iter().map(|o| o.savings).sum::<f64>() / outcomes.len() as f64,
        tenants: outcomes,
        mean_price,
        peak_price,
        slots,
        provider,
    })
}

/// Runs one portfolio closed-loop session: warms M correlated markets up
/// with background load, then lets one tenant per strategy plan and bid
/// across them for `horizon_slots`. Deterministic from `seed` at any
/// thread count; at M=1 with [`PortfolioStrategy::ZoneFallback`] it
/// reproduces the single-market [`super::run_closed_loop`] bit-for-bit
/// (see `tests/portfolio.rs`).
///
/// Tenants left incomplete at the horizon finish their remaining work on
/// demand (the §5.1 fallback), so every reported cost is for a completed
/// job and savings are comparable across configurations.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] for empty strategy or market lists, zero
/// warmup or horizon, non-finite arrival rates, or a fault-plan/market
/// count mismatch; [`EngineError::Core`] if a strategy fails to resolve.
pub fn run_portfolio_loop(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
) -> Result<PortfolioReport, EngineError> {
    run_portfolio(strategies, cfg, seed, None, None)
}

/// As [`run_portfolio_loop`], optionally fault-injected (one
/// [`LoopFaults`] plan per market), also returning the full event stream —
/// the parity wall's view of a run.
///
/// # Errors
///
/// As [`run_portfolio_loop`].
pub fn run_portfolio_loop_logged(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
) -> Result<(PortfolioReport, Vec<Event>), EngineError> {
    let mut log = EventLog::new();
    let report = run_portfolio(strategies, cfg, seed, faults, Some(&mut log))?;
    Ok((report, log.into_events()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_core::BiddingStrategy;

    fn market(name: &str, pi_min: f64, idio: f64) -> PortfolioMarket {
        PortfolioMarket {
            name: name.into(),
            params: MarketParams::new(Price::new(0.35), Price::new(pi_min), 0.05, 0.05).unwrap(),
            idio_arrivals: idio,
            supply: Supply::Unbounded,
        }
    }

    fn config(m: usize) -> PortfolioLoopConfig {
        PortfolioLoopConfig {
            markets: (0..m)
                .map(|i| market(&format!("zone-{i}"), 0.02 + 0.005 * i as f64, 2.0))
                .collect(),
            shared_arrivals: 1.0,
            slot_len: Hours::from_minutes(5.0),
            on_demand: Price::new(0.35),
            job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
            warmup_slots: 60,
            horizon_slots: 300,
            max_resubmissions: 4,
        }
    }

    fn strategies() -> Vec<PortfolioStrategy> {
        vec![
            PortfolioStrategy::ZoneFallback {
                home: 0,
                base: BiddingStrategy::FixedBid(Price::new(0.30)),
            },
            PortfolioStrategy::SplitEven {
                base: BiddingStrategy::FixedBid(Price::new(0.32)),
            },
            PortfolioStrategy::Contract {
                spot_share: 0.5,
                base: BiddingStrategy::OptimalPersistent,
            },
        ]
    }

    #[test]
    fn deterministic_from_seed() {
        let cfg = config(3);
        let strats = strategies();
        let a = run_portfolio_loop(&strats, &cfg, 0xF011).unwrap();
        let b = run_portfolio_loop(&strats, &cfg, 0xF011).unwrap();
        assert_eq!(a, b);
        let c = run_portfolio_loop(&strats, &cfg, 0xF012).unwrap();
        assert_ne!(a.mean_price, c.mean_price);
    }

    #[test]
    fn portfolio_tenants_complete_and_are_accounted() {
        let cfg = config(4);
        let report = run_portfolio_loop(&strategies(), &cfg, 42).unwrap();
        assert_eq!(report.tenants.len(), 3);
        assert_eq!(report.mean_price.len(), 4);
        assert_eq!(report.peak_price.len(), 4);
        for t in &report.tenants {
            assert!(t.cost.as_f64().is_finite() && t.cost.as_f64() > 0.0);
            assert!(t.savings <= 1.0);
        }
        // Quiet markets, near-π̄ bids: everyone should finish.
        assert_eq!(report.completed, 3, "{report:?}");
    }

    #[test]
    fn contract_share_zero_is_pure_on_demand() {
        let cfg = config(2);
        let report = run_portfolio_loop(
            &[PortfolioStrategy::Contract {
                spot_share: 0.0,
                base: BiddingStrategy::FixedBid(Price::new(0.30)),
            }],
            &cfg,
            7,
        )
        .unwrap();
        let t = &report.tenants[0];
        assert!(t.completed);
        assert_eq!(t.spot_slots, 0);
        assert!((t.cost.as_f64() - 0.35).abs() < 1e-12, "od × 1h job");
        assert!(t.savings.abs() < 1e-12);
    }

    #[test]
    fn zone_fallback_rotates_on_reclamation() {
        // Market 0 is reclaimed every other slot after warmup (a reclaim
        // on *every* slot would let pending bids wait the outage out
        // forever — see `SpotMarket::reclaim_next_slot`); a one-time
        // bidder whose home is 0 starts on a normal slot, is reclaimed on
        // the next, and must fall back to market 1.
        let cfg = config(2);
        let total = cfg.warmup_slots + cfg.horizon_slots;
        let mut f0 = LoopFaults {
            gap: vec![false; total],
            reclaim: vec![false; total],
        };
        for s in (cfg.warmup_slots..total).step_by(2) {
            f0.reclaim[s] = true;
        }
        let faults = vec![f0, LoopFaults::default()];
        let (report, events) = run_portfolio_loop_logged(
            &[PortfolioStrategy::ZoneFallback {
                home: 0,
                base: BiddingStrategy::OptimalOneTime,
            }],
            &cfg,
            11,
            Some(&faults),
        )
        .unwrap();
        let t = &report.tenants[0];
        assert!(
            t.resubmissions > 0,
            "constant reclamation must force a fallback: {report:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, Event::Rejected { .. })),
            "the reclaimed one-time leg is rejected"
        );
        // Whatever happened, the job's work is fully accounted for.
        assert!(t.cost.as_f64() > 0.0);
    }

    #[test]
    fn invalid_configs_are_refused() {
        let cfg = config(2);
        let strats = strategies();
        assert!(run_portfolio_loop(&[], &cfg, 1).is_err());
        let bad = PortfolioLoopConfig {
            markets: Vec::new(),
            ..cfg.clone()
        };
        assert!(run_portfolio_loop(&strats, &bad, 1).is_err());
        let bad = PortfolioLoopConfig {
            shared_arrivals: f64::NAN,
            ..cfg.clone()
        };
        assert!(run_portfolio_loop(&strats, &bad, 1).is_err());
        // One fault plan for two markets.
        let r = run_portfolio_loop_logged(&strats, &cfg, 1, Some(&[LoopFaults::default()]));
        assert!(r.is_err());
    }
}
