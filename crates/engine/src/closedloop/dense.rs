//! The frozen per-slot tenant fleet: the behavioral oracle for the
//! event-driven wakeup fleet.
//!
//! This is the original `TenantFleet` implementation, retained verbatim
//! (analogous to `market::sim::naive`): every slot it scans *every*
//! tenant, re-checks who must (re-)bid, and binary-searches every live
//! bid against the slot report — O(N) per slot regardless of how few
//! tenants actually change state. Simple, obviously correct, and the
//! reference the wakeup fleet must reproduce **bit-identically**: same
//! `BidId`s, same event order, same bills, same RNG stream reservations
//! at any thread count (`tests/wakeup_equiv.rs`, DESIGN.md §5f).
//!
//! Tenant evaluation is **sharded**: all tenants live in one
//! `TenantFleet` kernel driver whose per-slot strategy decisions fan out
//! across `spotbid-exec` workers in fixed 64-tenant shards (order-stable
//! merge, one reserved RNG substream per shard), while bid submission and
//! report processing stay serial in tenant order — so bid ids, event
//! order, and results are identical to the legacy one-driver-per-tenant
//! loop at any thread count.

use super::{
    assemble_report, validate, ClosedLoopConfig, ClosedLoopReport, ClosedLoopSource, LoopFaults,
    TenantFinal,
};
use crate::billing::{LineItem, UsageKind};
use crate::event::Event;
use crate::kernel::{DriverStatus, JobDriver, Kernel};
use crate::observer::{BillingObserver, EventLog, Observer};
use crate::EngineError;
use spotbid_core::{BidDecision, BiddingStrategy, CoreError, JobSpec};
use spotbid_market::sim::{BidId, BidKind, BidRequest, SlotReport, WorkModel};
use spotbid_market::units::{Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};

/// One strategy-driven tenant: re-resolves its strategy against the
/// observed history whenever it must (re-)bid, and tracks its bid through
/// the market's per-slot reports.
#[derive(Debug)]
struct TenantBidder {
    strategy: BiddingStrategy,
    job: JobSpec,
    on_demand: Price,
    tag: u32,
    slots_needed: u64,
    slots_run: u64,
    running: bool,
    bid_id: Option<BidId>,
    needs_submit: bool,
    resubmissions: u32,
    max_resubmissions: u32,
    interruptions: u32,
    completed: bool,
    /// Set when the strategy resolved to on-demand: charged in
    /// `before_slot`, reported done at the next `on_slot`.
    done_pending: bool,
}

impl TenantBidder {
    fn new(strategy: BiddingStrategy, cfg: &ClosedLoopConfig, tag: u32) -> Self {
        TenantBidder {
            strategy,
            job: cfg.job,
            on_demand: cfg.on_demand,
            tag,
            slots_needed: cfg.job.slots_needed(),
            slots_run: 0,
            running: false,
            bid_id: None,
            needs_submit: true,
            resubmissions: 0,
            max_resubmissions: cfg.max_resubmissions,
            interruptions: 0,
            completed: false,
            done_pending: false,
        }
    }

    /// Execution work still undone, given the slots run so far.
    fn remaining_work(&self, slot_len: Hours) -> Hours {
        (self.job.execution - slot_len * self.slots_run as f64).max(Hours::ZERO)
    }
}

impl TenantBidder {
    /// Acts on a resolved strategy decision: charges the on-demand path or
    /// submits the spot bid. Serial per tenant — this is where bid ids are
    /// assigned, so call order must be tenant order.
    fn apply_decision(
        &mut self,
        decision: BidDecision,
        slot: u64,
        source: &mut ClosedLoopSource,
        emit: &mut dyn FnMut(Event),
    ) {
        match decision {
            BidDecision::OnDemand { price } => {
                let work = self.remaining_work(source.slot_len);
                if work > Hours::ZERO {
                    emit(Event::Charged {
                        item: LineItem {
                            slot,
                            price,
                            duration: work,
                            kind: UsageKind::OnDemand,
                            tag: self.tag,
                        },
                    });
                }
                self.completed = true;
                self.done_pending = true;
                emit(Event::Completed {
                    slot,
                    tenant: self.tag,
                });
            }
            BidDecision::Spot { price, persistent } => {
                let remaining = (self.slots_needed - self.slots_run).max(1) as u32;
                let id = source.market.submit(BidRequest {
                    price,
                    kind: if persistent {
                        BidKind::Persistent
                    } else {
                        BidKind::OneTime
                    },
                    work: WorkModel::FixedSlots(remaining),
                });
                self.bid_id = Some(id);
                emit(Event::BidSubmitted {
                    slot,
                    tenant: self.tag,
                    price,
                    persistent,
                });
            }
        }
    }

    /// Advances the tenant one slot against the market's report. Event
    /// vectors are id-sorted (the market's determinism contract), so each
    /// membership test is a binary search, not a scan.
    fn slot_update(
        &mut self,
        slot: u64,
        report: &SlotReport,
        emit: &mut dyn FnMut(Event),
    ) -> DriverStatus {
        if self.done_pending {
            return DriverStatus::Done;
        }
        let Some(id) = self.bid_id else {
            return DriverStatus::Active;
        };
        let started = report.started.binary_search(&id).is_ok();
        let interrupted = report.interrupted.binary_search(&id).is_ok();
        let finished = report.finished.binary_search(&id).is_ok();
        let terminated = report.terminated.binary_search(&id).is_ok();
        let ran = started || (self.running && !interrupted && !terminated);
        if started {
            self.running = true;
            emit(Event::BidAccepted {
                slot,
                tenant: self.tag,
            });
        }
        if interrupted {
            self.interruptions += 1;
            emit(Event::Interrupted {
                slot,
                tenant: self.tag,
            });
        }
        if ran {
            // The provider charges running bids the posted price per slot
            // (§3.2); mirror the market's internal `charged` accrual in
            // this tenant's own ledger.
            self.slots_run += 1;
            emit(Event::Charged {
                item: LineItem {
                    slot,
                    price: report.price,
                    duration: self.job.slot,
                    kind: UsageKind::Spot,
                    tag: self.tag,
                },
            });
        }
        if interrupted || terminated || finished {
            self.running = false;
        }
        if finished {
            self.completed = true;
            emit(Event::Completed {
                slot,
                tenant: self.tag,
            });
            return DriverStatus::Done;
        }
        if terminated {
            emit(Event::Rejected {
                slot,
                tenant: self.tag,
            });
            self.bid_id = None;
            if self.resubmissions < self.max_resubmissions {
                self.resubmissions += 1;
                self.needs_submit = true;
            } else {
                return DriverStatus::Done;
            }
        }
        DriverStatus::Active
    }
}

/// Tenants per decision shard. Small enough that a partial last shard
/// doesn't idle workers, large enough that shard overhead amortizes.
pub(super) const SHARD_SIZE: usize = 64;

/// Every tenant as one kernel driver, with sharded decision evaluation.
///
/// Strategy resolution (`BiddingStrategy::decide`) is the per-slot hot
/// spot at large N and is a pure function of the shared price history, so
/// the fleet fans it out across `spotbid-exec` workers in fixed
/// [`SHARD_SIZE`] shards and merges the decisions order-stably. Everything
/// with market-visible side effects — bid submission (which assigns
/// [`BidId`]s), event emission, report processing — stays serial in tenant
/// order, so the fleet is bit-identical to the legacy
/// one-driver-per-tenant loop at any `SPOTBID_THREADS`.
///
/// Each shard owns a reserved [`RngStreams`] substream (`2 + shard`; 0 and
/// 1 belong to the market and the background process). Current strategies
/// draw nothing from it — it exists so a future randomized strategy can
/// draw per-shard without perturbing streams 0/1 or the merge order.
struct TenantFleet {
    tenants: Vec<TenantBidder>,
    done: Vec<bool>,
    shard_rngs: Vec<Rng>,
    /// Scratch: indices of tenants that must (re-)bid this slot.
    needy: Vec<u32>,
}

impl TenantFleet {
    fn new(tenants: Vec<TenantBidder>, streams: &RngStreams) -> Self {
        let max_shards = tenants.len().div_ceil(SHARD_SIZE);
        let mut chain = streams.streams(2 + max_shards);
        let shard_rngs = chain.split_off(2);
        let done = vec![false; tenants.len()];
        TenantFleet {
            tenants,
            done,
            shard_rngs,
            needy: Vec::new(),
        }
    }
}

impl JobDriver<ClosedLoopSource> for TenantFleet {
    fn demand(&self) -> usize {
        self.done.iter().filter(|&&d| !d).count()
    }

    fn before_slot(
        &mut self,
        slot: u64,
        source: &mut ClosedLoopSource,
        emit: &mut dyn FnMut(Event),
    ) -> Result<(), EngineError> {
        self.needy.clear();
        for (i, t) in self.tenants.iter_mut().enumerate() {
            if !self.done[i] && t.needs_submit && !t.done_pending {
                t.needs_submit = false;
                self.needy.push(i as u32);
            }
        }
        if self.needy.is_empty() {
            return Ok(());
        }
        // One history snapshot for the whole slot: `posted` only grows in
        // `post`, so every tenant would observe the same prices anyway.
        let history = source.observed()?;
        let inputs: Vec<(BiddingStrategy, JobSpec, Price)> = self
            .needy
            .iter()
            .map(|&i| {
                let t = &self.tenants[i as usize];
                (t.strategy, t.job, t.on_demand)
            })
            .collect();
        let shards = inputs.len().div_ceil(SHARD_SIZE);
        let shard_rngs = &self.shard_rngs;
        let decisions: Vec<Vec<Result<BidDecision, CoreError>>> =
            spotbid_exec::par_map(shards, |s| {
                let mut _rng = shard_rngs[s].clone(); // reserved, see above
                let lo = s * SHARD_SIZE;
                let hi = (lo + SHARD_SIZE).min(inputs.len());
                inputs[lo..hi]
                    .iter()
                    .map(|(strat, job, od)| strat.decide(&history, job, *od))
                    .collect()
            });
        // Serial, ordered apply: bid ids and events come out exactly as if
        // each tenant had decided in turn.
        let mut flat = decisions.into_iter().flatten();
        for k in 0..self.needy.len() {
            let i = self.needy[k] as usize;
            let decision = flat
                .next()
                .expect("one decision per needy tenant")
                .map_err(EngineError::Core)?;
            self.tenants[i].apply_decision(decision, slot, source, emit);
        }
        Ok(())
    }

    fn on_slot(
        &mut self,
        slot: u64,
        report: &SlotReport,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError> {
        let mut all_done = true;
        for i in 0..self.tenants.len() {
            if self.done[i] {
                continue;
            }
            if self.tenants[i].slot_update(slot, report, emit) == DriverStatus::Done {
                self.done[i] = true;
            } else {
                all_done = false;
            }
        }
        if all_done {
            Ok(DriverStatus::Done)
        } else {
            Ok(DriverStatus::Active)
        }
    }
}

fn run_dense(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
    faults: Option<&LoopFaults>,
    log: Option<&mut EventLog>,
) -> Result<ClosedLoopReport, EngineError> {
    validate(strategies, cfg)?;

    let streams = RngStreams::new(seed);
    let mut source = ClosedLoopSource::new(cfg, &streams, faults, strategies.len());
    source.warmup(cfg.warmup_slots);

    let tenants: Vec<TenantBidder> = strategies
        .iter()
        .enumerate()
        .map(|(i, s)| TenantBidder::new(*s, cfg, i as u32))
        .collect();
    let mut fleet = TenantFleet::new(tenants, &streams);
    let mut billing = BillingObserver::validated();
    {
        let mut kernel = Kernel::new(cfg.slot_len, source);
        let horizon = Some(cfg.horizon_slots as u64);
        match log {
            Some(l) => kernel.run(
                &mut [&mut fleet],
                &mut [&mut billing as &mut dyn Observer, l],
                horizon,
            )?,
            None => kernel.run(&mut [&mut fleet], &mut [&mut billing], horizon)?,
        };
        source = kernel.into_source();
    }
    let mut bill = billing.into_bill();

    let finals: Vec<TenantFinal> = fleet
        .tenants
        .iter()
        .map(|t| TenantFinal {
            tag: t.tag,
            strategy: t.strategy,
            completed: t.completed,
            slots_run: t.slots_run,
            interruptions: t.interruptions,
            resubmissions: t.resubmissions,
        })
        .collect();
    assemble_report(&finals, &mut bill, &source, cfg)
}

/// Runs one closed-loop session on the frozen per-slot fleet. Same
/// contract as [`super::run_closed_loop`] — and, by the §5f equivalence
/// wall, the same bits out.
///
/// # Errors
///
/// As [`super::run_closed_loop`].
pub fn run_closed_loop(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
) -> Result<ClosedLoopReport, EngineError> {
    run_dense(strategies, cfg, seed, None, None)
}

/// As [`run_closed_loop`], optionally fault-injected, also returning the
/// full event stream — the oracle side of the equivalence suite.
///
/// # Errors
///
/// As [`super::run_closed_loop`].
pub fn run_closed_loop_logged(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
    faults: Option<&LoopFaults>,
) -> Result<(ClosedLoopReport, Vec<Event>), EngineError> {
    let mut log = EventLog::new();
    let report = run_dense(strategies, cfg, seed, faults, Some(&mut log))?;
    Ok((report, log.into_events()))
}
