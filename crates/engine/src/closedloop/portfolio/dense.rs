//! The frozen dense portfolio fleet — the §5h oracle.
//!
//! This is the original dense implementation of the portfolio closed
//! loop, kept verbatim as the equivalence oracle for the event-driven
//! wakeup fleet behind [`super::run_portfolio_loop`], exactly as
//! [`crate::closedloop::dense`] freezes the single-market fleet: every
//! tenant is re-evaluated every slot — O(N) report walks per slot
//! regardless of activity — so it stays simple enough to audit and slow
//! enough to be worth replacing. `tests/portfolio_wakeup_equiv.rs` holds
//! the two bit-identical across price regimes, faults, and mixed
//! [`spotbid_market::sim::Supply`] members.

use super::{run_session, PortfolioLoopConfig, PortfolioReport, PortfolioSource, TenantFinal};
use crate::billing::{LineItem, UsageKind};
use crate::closedloop::dense::SHARD_SIZE;
use crate::closedloop::LoopFaults;
use crate::event::Event;
use crate::kernel::{DriverStatus, JobDriver};
use crate::observer::EventLog;
use crate::EngineError;
use spotbid_core::portfolio::{PortfolioPlan, PortfolioStrategy};
use spotbid_core::{BidDecision, CoreError, JobSpec};
use spotbid_market::sim::{BidId, BidKind, BidRequest, SlotReport, WorkModel};
use spotbid_market::units::{Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};

/// One live spot position of a tenant.
#[derive(Debug, Clone, Copy)]
struct Leg {
    market: u32,
    bid_id: BidId,
    /// Slots of work this leg was submitted for.
    assigned: u32,
    /// Slots it has run so far.
    ran: u32,
    running: bool,
}

/// One strategy-driven portfolio tenant: re-plans against the per-market
/// histories whenever it must (re-)bid, and tracks every live leg through
/// its market's slot report.
#[derive(Debug)]
struct PortfolioTenant {
    strategy: PortfolioStrategy,
    tag: u32,
    /// Slots of work awaiting (re-)submission.
    pending: u64,
    /// Live spot legs, in plan (ascending-market) submission order.
    legs: Vec<Leg>,
    /// On-demand work already charged (contract legs and od decisions).
    od_charged: Hours,
    slots_run: u64,
    interruptions: u32,
    resubmissions: u32,
    completed: bool,
    done_pending: bool,
    needs_submit: bool,
    /// Lost work whose resubmission budget ran out is abandoned.
    gave_up: bool,
}

impl PortfolioTenant {
    fn new(strategy: PortfolioStrategy, cfg: &PortfolioLoopConfig, tag: u32) -> Self {
        PortfolioTenant {
            strategy,
            tag,
            pending: cfg.job.slots_needed(),
            legs: Vec::new(),
            od_charged: Hours::ZERO,
            slots_run: 0,
            interruptions: 0,
            resubmissions: 0,
            completed: false,
            done_pending: false,
            needs_submit: true,
            gave_up: false,
        }
    }

    /// Execution work still uncovered by spot slots run and on-demand
    /// charges.
    fn remaining_work(&self, job: &JobSpec) -> Hours {
        (job.execution - job.slot * self.slots_run as f64 - self.od_charged).max(Hours::ZERO)
    }

    /// Acts on a resolved plan: charges on-demand legs and submits spot
    /// legs, scaling each leg's assignment down to the work still pending.
    /// Serial per tenant — per-market bid ids are assigned here, so call
    /// order must be tenant order.
    fn apply_plan(
        &mut self,
        plan: &PortfolioPlan,
        job: &JobSpec,
        slot: u64,
        source: &mut PortfolioSource,
        live: &mut [u32],
        emit: &mut dyn FnMut(Event),
    ) {
        for leg in &plan.legs {
            if self.pending == 0 {
                break;
            }
            // A re-plan covers only the lost work: cap each leg at what is
            // still pending (the first plan partitions exactly, so this is
            // the identity there — and `max(1)` mirrors the single-market
            // fleet's defensive floor).
            let assigned = leg.slots.min(self.pending).max(1);
            match leg.decision {
                BidDecision::OnDemand { price } => {
                    let work = (job.slot * assigned as f64).min(self.remaining_work(job));
                    if work > Hours::ZERO {
                        emit(Event::Charged {
                            item: LineItem {
                                slot,
                                price,
                                duration: work,
                                kind: UsageKind::OnDemand,
                                tag: self.tag,
                            },
                        });
                        self.od_charged += work;
                    }
                    self.pending -= assigned;
                }
                BidDecision::Spot { price, persistent } => {
                    let id = source.set.submit(
                        leg.market,
                        BidRequest {
                            price,
                            kind: if persistent {
                                BidKind::Persistent
                            } else {
                                BidKind::OneTime
                            },
                            work: WorkModel::FixedSlots(assigned as u32),
                        },
                    );
                    self.legs.push(Leg {
                        market: leg.market as u32,
                        bid_id: id,
                        assigned: assigned as u32,
                        ran: 0,
                        running: false,
                    });
                    live[leg.market] += 1;
                    self.pending -= assigned;
                    emit(Event::BidSubmitted {
                        slot,
                        tenant: self.tag,
                        price,
                        persistent,
                    });
                }
            }
        }
        if !self.completed && self.pending == 0 && self.legs.is_empty() {
            // Everything was covered on demand: the job is done before the
            // market even clears (same shape as the single-market
            // on-demand decision).
            self.completed = true;
            self.done_pending = true;
            emit(Event::Completed {
                slot,
                tenant: self.tag,
            });
        }
    }

    /// Advances the tenant one slot against every market's report. Legs
    /// are processed in submission order; event vectors are id-sorted, so
    /// each membership test is a binary search.
    fn slot_update(
        &mut self,
        slot: u64,
        reports: &[SlotReport],
        job: &JobSpec,
        max_resubmissions: u32,
        live: &mut [u32],
        emit: &mut dyn FnMut(Event),
    ) -> DriverStatus {
        if self.done_pending {
            return DriverStatus::Done;
        }
        let mut k = 0;
        while k < self.legs.len() {
            let leg = &mut self.legs[k];
            let report = &reports[leg.market as usize];
            let id = leg.bid_id;
            let started = report.started.binary_search(&id).is_ok();
            let interrupted = report.interrupted.binary_search(&id).is_ok();
            let finished = report.finished.binary_search(&id).is_ok();
            let terminated = report.terminated.binary_search(&id).is_ok();
            let ran = started || (leg.running && !interrupted && !terminated);
            if started {
                leg.running = true;
                emit(Event::BidAccepted {
                    slot,
                    tenant: self.tag,
                });
            }
            if interrupted {
                self.interruptions += 1;
                emit(Event::Interrupted {
                    slot,
                    tenant: self.tag,
                });
            }
            if ran {
                leg.ran += 1;
                self.slots_run += 1;
                emit(Event::Charged {
                    item: LineItem {
                        slot,
                        price: report.price,
                        duration: job.slot,
                        kind: UsageKind::Spot,
                        tag: self.tag,
                    },
                });
            }
            if interrupted || terminated || finished {
                leg.running = false;
            }
            if finished {
                live[leg.market as usize] -= 1;
                self.legs.remove(k);
                continue;
            }
            if terminated {
                emit(Event::Rejected {
                    slot,
                    tenant: self.tag,
                });
                let lost = u64::from(leg.assigned - leg.ran);
                live[leg.market as usize] -= 1;
                self.legs.remove(k);
                self.pending += lost;
                if self.resubmissions < max_resubmissions {
                    self.resubmissions += 1;
                    self.needs_submit = true;
                    // Cross-zone fallback: the next plan's home market is
                    // the next zone over.
                    if let PortfolioStrategy::ZoneFallback { home, base } = self.strategy {
                        self.strategy = PortfolioStrategy::ZoneFallback {
                            home: (home + 1) % reports.len(),
                            base,
                        };
                    }
                } else {
                    self.gave_up = true;
                }
                continue;
            }
            k += 1;
        }
        if !self.completed && self.legs.is_empty() && self.pending == 0 {
            self.completed = true;
            emit(Event::Completed {
                slot,
                tenant: self.tag,
            });
            return DriverStatus::Done;
        }
        if self.gave_up && self.legs.is_empty() && !self.needs_submit {
            return DriverStatus::Done;
        }
        DriverStatus::Active
    }
}

/// Every portfolio tenant as one kernel driver, with sharded plan
/// resolution — the multi-market counterpart of the dense fleet, same
/// §5e/§5f contract: pure decisions fan out, market-visible side effects
/// stay serial in ascending tenant order.
struct PortfolioFleet {
    tenants: Vec<PortfolioTenant>,
    done: Vec<bool>,
    shard_rngs: Vec<Rng>,
    job: JobSpec,
    on_demand: Price,
    max_resubmissions: u32,
    /// Live spot legs per market (the kernel's per-market demand signal).
    live: Vec<u32>,
    /// Scratch: indices of tenants that must (re-)plan this slot.
    needy: Vec<u32>,
}

impl PortfolioFleet {
    fn new(tenants: Vec<PortfolioTenant>, cfg: &PortfolioLoopConfig, streams: &RngStreams) -> Self {
        let m = cfg.markets.len();
        let max_shards = tenants.len().div_ceil(SHARD_SIZE);
        // Shard streams live after the market/arrival/shared block.
        let mut chain = streams.streams(2 * m + 1 + max_shards);
        let shard_rngs = chain.split_off(2 * m + 1);
        let done = vec![false; tenants.len()];
        PortfolioFleet {
            tenants,
            done,
            shard_rngs,
            job: cfg.job,
            on_demand: cfg.on_demand,
            max_resubmissions: cfg.max_resubmissions,
            live: vec![0; m],
            needy: Vec::new(),
        }
    }
}

impl JobDriver<PortfolioSource> for PortfolioFleet {
    fn demand(&self) -> usize {
        self.live.iter().map(|&n| n as usize).sum()
    }

    fn demand_in(&self, market: usize) -> usize {
        self.live[market] as usize
    }

    fn before_slot(
        &mut self,
        slot: u64,
        source: &mut PortfolioSource,
        emit: &mut dyn FnMut(Event),
    ) -> Result<(), EngineError> {
        self.needy.clear();
        for (i, t) in self.tenants.iter_mut().enumerate() {
            if !self.done[i] && t.needs_submit && !t.done_pending {
                t.needs_submit = false;
                self.needy.push(i as u32);
            }
        }
        if self.needy.is_empty() {
            return Ok(());
        }
        // One per-market history snapshot for the whole slot.
        let histories = source.observed()?;
        let inputs: Vec<PortfolioStrategy> = self
            .needy
            .iter()
            .map(|&i| self.tenants[i as usize].strategy)
            .collect();
        let shards = inputs.len().div_ceil(SHARD_SIZE);
        let shard_rngs = &self.shard_rngs;
        let (job, on_demand) = (self.job, self.on_demand);
        let plans: Vec<Vec<Result<PortfolioPlan, CoreError>>> =
            spotbid_exec::par_map(shards, |s| {
                let mut _rng = shard_rngs[s].clone(); // reserved, see module docs
                let lo = s * SHARD_SIZE;
                let hi = (lo + SHARD_SIZE).min(inputs.len());
                inputs[lo..hi]
                    .iter()
                    .map(|strat| strat.decide(&histories, &job, on_demand))
                    .collect()
            });
        // Serial, ordered apply: per-market bid ids and events come out
        // exactly as if each tenant had planned in turn.
        let mut flat = plans.into_iter().flatten();
        for k in 0..self.needy.len() {
            let i = self.needy[k] as usize;
            let plan = flat
                .next()
                .expect("one plan per needy tenant")
                .map_err(EngineError::Core)?;
            self.tenants[i].apply_plan(&plan, &job, slot, source, &mut self.live, emit);
        }
        Ok(())
    }

    fn on_slot(
        &mut self,
        slot: u64,
        reports: &Vec<SlotReport>,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError> {
        let mut all_done = true;
        for i in 0..self.tenants.len() {
            if self.done[i] {
                continue;
            }
            let status = self.tenants[i].slot_update(
                slot,
                reports,
                &self.job,
                self.max_resubmissions,
                &mut self.live,
                emit,
            );
            if status == DriverStatus::Done {
                self.done[i] = true;
            } else {
                all_done = false;
            }
        }
        if all_done {
            Ok(DriverStatus::Done)
        } else {
            Ok(DriverStatus::Active)
        }
    }
}

fn run(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
    log: Option<&mut EventLog>,
) -> Result<PortfolioReport, EngineError> {
    let (report, _) = run_session(
        strategies,
        cfg,
        seed,
        faults,
        log,
        |streams| {
            let tenants: Vec<PortfolioTenant> = strategies
                .iter()
                .enumerate()
                .map(|(i, s)| PortfolioTenant::new(*s, cfg, i as u32))
                .collect();
            PortfolioFleet::new(tenants, cfg, streams)
        },
        |fleet| {
            fleet
                .tenants
                .iter()
                .map(|t| TenantFinal {
                    tag: t.tag,
                    strategy: t.strategy,
                    completed: t.completed,
                    spot_slots: t.slots_run,
                    interruptions: t.interruptions,
                    resubmissions: t.resubmissions,
                    remaining: t.remaining_work(&cfg.job),
                })
                .collect()
        },
    )?;
    Ok(report)
}

/// As [`super::run_portfolio_loop`], but over the frozen dense fleet —
/// the oracle side of the portfolio equivalence walls.
///
/// # Errors
///
/// As [`super::run_portfolio_loop`].
pub fn run_portfolio_loop(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
) -> Result<PortfolioReport, EngineError> {
    run(strategies, cfg, seed, None, None)
}

/// As [`super::run_portfolio_loop_logged`], but over the frozen dense
/// fleet.
///
/// # Errors
///
/// As [`super::run_portfolio_loop_logged`].
pub fn run_portfolio_loop_logged(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
) -> Result<(PortfolioReport, Vec<Event>), EngineError> {
    let mut log = EventLog::new();
    let report = run(strategies, cfg, seed, faults, Some(&mut log))?;
    Ok((report, log.into_events()))
}
