//! The event-driven portfolio fleet: touch a tenant only when one of its
//! markets does something it cares about (DESIGN.md §5j).
//!
//! The dense portfolio fleet walks every tenant's legs against every
//! market report every slot. This fleet generalizes the single-market
//! wakeup machinery ([`crate::closedloop::wakeup`]) to M markets:
//!
//! - **one price-indexed wakeup book per member market** — the same
//!   512-bucket classifier and ulp-repair walk as §5f, but registering
//!   *leg handles* (a tenant can hold several pending legs in one
//!   market), each mapping back to its owner;
//! - **one shared pooled calendar** for expected leg finishes and the
//!   unconditional re-wakes armed while a bid sits parked in some
//!   market — after that market's reclamation outage, or after its
//!   finite-supply capacity pass named the bid in
//!   [`SlotReport::evicted`];
//! - **fresh** tenants whose plan was applied this slot, and **running**
//!   tenants (≥ 1 running leg accrues a charge every slot by §3.2);
//! - a slot where no market's wake set fires and nothing runs is
//!   *skipped in O(1)* ([`PortfolioFleetStats::skipped_slots`]).
//!
//! Wakeups are processed in ascending tenant order with each tenant's
//! legs in plan order, plans fan out over the same 64-tenant shards with
//! the same reserved RNG substreams, and bid submission stays serial — so
//! per-market bid ids, event order, bills, and RNG draws are
//! **bit-identical** to the frozen [`super::dense`] oracle at any
//! `SPOTBID_THREADS` (`tests/portfolio_wakeup_equiv.rs`).

use super::{run_session, PortfolioLoopConfig, PortfolioReport, PortfolioSource, TenantFinal};
use crate::billing::{LineItem, UsageKind};
use crate::closedloop::dense::SHARD_SIZE;
use crate::closedloop::LoopFaults;
use crate::event::Event;
use crate::kernel::{DriverStatus, JobDriver};
use crate::observer::EventLog;
use crate::EngineError;
use spotbid_core::portfolio::{PortfolioPlan, PortfolioStrategy};
use spotbid_core::{BidDecision, CoreError, JobSpec};
use spotbid_market::params::MarketParams;
use spotbid_market::sim::{BidId, BidKind, BidRequest, SlotReport, WorkModel};
use spotbid_market::units::{Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};
use std::collections::BTreeMap;

/// Wakeup-bucket count per market book — matches the market bid-book
/// resolution, same as the single-market fleet.
const WAKE_BUCKETS: usize = 512;

/// `pos_of` sentinel: leg handle not registered in any bucket.
const NO_POS: u32 = u32::MAX;
/// Calendar-entry flag bit: wake unconditionally. Tenant indices are
/// asserted `< 2^31`, so the bit never collides.
const UNCOND: u32 = 1 << 31;

/// Wakeup accounting for one portfolio session — the multi-market
/// sibling of [`crate::closedloop::FleetStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortfolioFleetStats {
    /// Slots the fleet was asked to advance.
    pub slots: u64,
    /// Slots skipped in O(1): no market's wake set fired and no leg was
    /// running anywhere.
    pub skipped_slots: u64,
    /// Total tenant wakeups processed across all slots.
    pub woken: u64,
    /// Per-market wakeups produced by that market's price-fall sweep.
    pub swept: Vec<u64>,
}

/// Price-indexed wakeup buckets over one market's *pending* legs. Unlike
/// the single-market book (tenant-keyed), entries are stable leg
/// *handles* from a slab free-list — a tenant may hold several pending
/// legs in the same market — and a sweep yields each crossed leg's
/// owner. Same bucket classifier as the market bid-book, including the
/// ulp-repair walk.
#[derive(Debug)]
struct LegBook {
    buckets: Vec<Vec<u32>>,
    lo: f64,
    w: f64,
    /// Bid price per handle (written at alloc, read at registration and
    /// sweep filtering).
    threshold: Vec<f64>,
    /// Owning tenant per handle.
    owner: Vec<u32>,
    bucket_of: Vec<u32>,
    /// Position in the bucket list, [`NO_POS`] when unregistered.
    pos_of: Vec<u32>,
    /// Released handles awaiting reuse.
    free: Vec<u32>,
}

impl LegBook {
    fn new(params: &MarketParams) -> Self {
        LegBook {
            buckets: vec![Vec::new(); WAKE_BUCKETS],
            lo: params.pi_min.as_f64(),
            w: params.spread().as_f64() / WAKE_BUCKETS as f64,
            threshold: Vec::new(),
            owner: Vec::new(),
            bucket_of: Vec::new(),
            pos_of: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Claims a handle for a new leg (unregistered until the owner's
    /// first slot update sees it pending).
    fn alloc(&mut self, owner: u32, threshold: f64) -> u32 {
        if let Some(h) = self.free.pop() {
            let hu = h as usize;
            self.threshold[hu] = threshold;
            self.owner[hu] = owner;
            self.pos_of[hu] = NO_POS;
            h
        } else {
            let h = self.threshold.len() as u32;
            self.threshold.push(threshold);
            self.owner.push(owner);
            self.bucket_of.push(0);
            self.pos_of.push(NO_POS);
            h
        }
    }

    /// Returns a finished/terminated leg's handle to the free list.
    fn release(&mut self, h: u32) {
        if self.registered(h) {
            self.unregister(h);
        }
        self.free.push(h);
    }

    fn registered(&self, h: u32) -> bool {
        self.pos_of[h as usize] != NO_POS
    }

    fn register(&mut self, h: u32) {
        let hu = h as usize;
        debug_assert!(!self.registered(h), "leg handle {h} already registered");
        let b = self.bucket_index(self.threshold[hu]);
        self.bucket_of[hu] = b as u32;
        self.pos_of[hu] = self.buckets[b].len() as u32;
        self.buckets[b].push(h);
    }

    fn unregister(&mut self, h: u32) {
        let hu = h as usize;
        let b = self.bucket_of[hu] as usize;
        let p = self.pos_of[hu] as usize;
        let list = &mut self.buckets[b];
        debug_assert_eq!(list[p], h);
        list.swap_remove(p);
        if let Some(&moved) = list.get(p) {
            self.pos_of[moved as usize] = p as u32;
        }
        self.pos_of[hu] = NO_POS;
    }

    /// Pushes the *owner* of every registered leg whose threshold lies in
    /// `[pf, pp)`-or-above within the crossed bucket range — the only
    /// pending legs this market's own sweep can have started. Owners may
    /// repeat (several crossed legs); the caller dedups.
    fn sweep_fall(&self, pf: f64, pp: f64, out: &mut Vec<u32>) {
        let k_lo = self.bucket_index(pf);
        let k_hi = self.bucket_index(pp);
        for &h in &self.buckets[k_lo] {
            if self.threshold[h as usize] >= pf {
                out.push(self.owner[h as usize]);
            }
        }
        for b in (k_lo + 1)..=k_hi {
            for &h in &self.buckets[b] {
                out.push(self.owner[h as usize]);
            }
        }
    }

    /// Bucket for price `p` — same classifier as the market bid-book:
    /// clamped linear index plus an exact repair walk, so float error in
    /// the division can never misfile a boundary price.
    fn bucket_index(&self, p: f64) -> usize {
        let raw = (p - self.lo) / self.w;
        let mut i = if raw.is_finite() {
            if raw <= 0.0 {
                0
            } else {
                (raw as usize).min(WAKE_BUCKETS - 1)
            }
        } else if raw == f64::INFINITY {
            WAKE_BUCKETS - 1
        } else {
            0
        };
        while i > 0 && p < self.lo + i as f64 * self.w {
            i -= 1;
        }
        while i + 1 < WAKE_BUCKETS && p >= self.lo + (i + 1) as f64 * self.w {
            i += 1;
        }
        i
    }
}

/// One live spot position — the dense fleet's `Leg` plus the wakeup
/// bookkeeping (book handle, scheduled finish).
#[derive(Debug, Clone, Copy)]
struct WLeg {
    market: u32,
    bid_id: BidId,
    /// Slots of work this leg was submitted for.
    assigned: u32,
    /// Slots it has run so far.
    ran: u32,
    running: bool,
    /// Handle in `books[market]`, valid for the leg's lifetime.
    handle: u32,
    /// Expected finish slot of the current run streak (valid while
    /// `running`; stale calendar entries are validated on pop).
    due: u64,
}

/// One portfolio tenant — the dense fleet's `PortfolioTenant` plus a
/// running-leg count for run-list membership. The tenant's tag is its
/// fleet index. Legs stay a per-tenant vector (plan order is part of the
/// determinism contract and M is small); the wake-hot columns — done,
/// armed_until, run-leg membership — live struct-of-arrays in the fleet.
#[derive(Debug)]
struct WTenant {
    strategy: PortfolioStrategy,
    /// Slots of work awaiting (re-)submission.
    pending: u64,
    /// Live spot legs, in plan (ascending-market) submission order.
    legs: Vec<WLeg>,
    /// On-demand work already charged (contract legs and od decisions).
    od_charged: Hours,
    slots_run: u64,
    interruptions: u32,
    resubmissions: u32,
    completed: bool,
    done_pending: bool,
    needs_submit: bool,
    /// Lost work whose resubmission budget ran out is abandoned.
    gave_up: bool,
    /// Legs currently running (tenant is in the run list iff > 0).
    run_legs: u32,
}

impl WTenant {
    fn new(strategy: PortfolioStrategy, cfg: &PortfolioLoopConfig) -> Self {
        WTenant {
            strategy,
            pending: cfg.job.slots_needed(),
            legs: Vec::new(),
            od_charged: Hours::ZERO,
            slots_run: 0,
            interruptions: 0,
            resubmissions: 0,
            completed: false,
            done_pending: false,
            needs_submit: true,
            gave_up: false,
            run_legs: 0,
        }
    }

    /// Execution work still uncovered by spot slots run and on-demand
    /// charges.
    fn remaining_work(&self, job: &JobSpec) -> Hours {
        (job.execution - job.slot * self.slots_run as f64 - self.od_charged).max(Hours::ZERO)
    }
}

/// Appends a wake entry to a slot's calendar list, recycling spent
/// vectors through the pool.
fn calendar_push(
    calendar: &mut BTreeMap<u64, Vec<u32>>,
    pool: &mut Vec<Vec<u32>>,
    slot: u64,
    entry: u32,
) {
    calendar
        .entry(slot)
        .or_insert_with(|| pool.pop().unwrap_or_default())
        .push(entry);
}

/// The event-driven portfolio fleet. See the module docs for the
/// wake-set contract.
struct PortfolioWakeupFleet {
    // Session-wide configuration.
    job: JobSpec,
    on_demand: Price,
    max_resubmissions: u32,

    // Tenant state (tag = index).
    tenants: Vec<WTenant>,
    done: Vec<bool>,
    /// Target slot of each tenant's last unconditional calendar arm —
    /// the already-armed guard against duplicate wake entries.
    armed_until: Vec<u64>,

    // Wakeup machinery.
    /// One price-indexed book of pending legs per member market.
    books: Vec<LegBook>,
    /// Shared calendar: slot → wake entries (tenant index, optionally
    /// [`UNCOND`]-flagged), pooled like the single-market fleet's.
    calendar: BTreeMap<u64, Vec<u32>>,
    cal_pool: Vec<Vec<u32>>,
    /// Tenants with ≥ 1 running leg, ascending (rebuilt by sorted merge).
    running: Vec<u32>,
    /// Tenants whose plan was applied this `before_slot`.
    fresh: Vec<u32>,
    /// Tenants queued to (re-)plan at the next `before_slot`.
    needy: Vec<u32>,
    /// Tenants not yet done — drives the kernel Done check.
    active: usize,
    /// Last posted price per market (∞ before the first tenant-visible
    /// slot, exactly the market's own pre-first-step posted price).
    prev_price: Vec<f64>,
    /// Per-market kernel-slot-indexed reclamation outages (warmup offset
    /// already applied). Empty when fault-free.
    reclaim_masks: Vec<Vec<bool>>,
    shard_rngs: Vec<Rng>,
    /// Live spot legs per market (the kernel's per-market demand signal).
    live: Vec<u32>,
    stats: PortfolioFleetStats,

    // Scratch buffers (steady state allocates nothing per slot).
    sc_woken: Vec<u32>,
    sc_order: Vec<u32>,
    sc_started: Vec<u32>,
    sc_removed: Vec<u32>,
    sc_run_next: Vec<u32>,
    sc_outage: Vec<bool>,
}

impl PortfolioWakeupFleet {
    fn new(
        strategies: &[PortfolioStrategy],
        cfg: &PortfolioLoopConfig,
        streams: &RngStreams,
        reclaim_masks: Vec<Vec<bool>>,
    ) -> Self {
        let n = strategies.len();
        assert!(
            n < (1 << 31),
            "portfolio wakeup fleet supports < 2^31 tenants"
        );
        let m = cfg.markets.len();
        // Identical substream reservation to the dense portfolio fleet:
        // 0..2M+1 belong to the markets, arrivals, and the shared shock;
        // the rest to decision shards.
        let max_shards = n.div_ceil(SHARD_SIZE);
        let mut chain = streams.streams(2 * m + 1 + max_shards);
        let shard_rngs = chain.split_off(2 * m + 1);
        PortfolioWakeupFleet {
            job: cfg.job,
            on_demand: cfg.on_demand,
            max_resubmissions: cfg.max_resubmissions,
            tenants: strategies.iter().map(|&s| WTenant::new(s, cfg)).collect(),
            done: vec![false; n],
            armed_until: vec![0; n],
            books: cfg
                .markets
                .iter()
                .map(|mk| LegBook::new(&mk.params))
                .collect(),
            calendar: BTreeMap::new(),
            cal_pool: Vec::new(),
            running: Vec::new(),
            fresh: Vec::new(),
            needy: (0..n as u32).collect(),
            active: n,
            prev_price: vec![f64::INFINITY; m],
            reclaim_masks,
            shard_rngs,
            live: vec![0; m],
            stats: PortfolioFleetStats {
                swept: vec![0; m],
                ..PortfolioFleetStats::default()
            },
            sc_woken: Vec::new(),
            sc_order: Vec::new(),
            sc_started: Vec::new(),
            sc_removed: Vec::new(),
            sc_run_next: Vec::new(),
            sc_outage: Vec::new(),
        }
    }

    /// Arms an unconditional wake at `slot`, at most once per tenant per
    /// target slot (kernel slots start at 0, so armed targets are ≥ 1 and
    /// the zero-initialized column never aliases a real arm).
    fn arm_uncond(&mut self, slot: u64, t: u32) {
        let tu = t as usize;
        if self.armed_until[tu] != slot {
            self.armed_until[tu] = slot;
            calendar_push(&mut self.calendar, &mut self.cal_pool, slot, t | UNCOND);
        }
    }

    /// Acts on a resolved plan — byte-for-byte the dense fleet's
    /// `apply_plan`, plus the wakeup bookkeeping (leg-handle allocation;
    /// the caller queues the fresh wake).
    #[allow(clippy::too_many_arguments)]
    fn apply_plan(
        tenant: &mut WTenant,
        t: u32,
        plan: &PortfolioPlan,
        job: &JobSpec,
        slot: u64,
        source: &mut PortfolioSource,
        books: &mut [LegBook],
        live: &mut [u32],
        emit: &mut dyn FnMut(Event),
    ) {
        for leg in &plan.legs {
            if tenant.pending == 0 {
                break;
            }
            // A re-plan covers only the lost work: cap each leg at what is
            // still pending (the first plan partitions exactly, so this is
            // the identity there — and `max(1)` mirrors the single-market
            // fleet's defensive floor).
            let assigned = leg.slots.min(tenant.pending).max(1);
            match leg.decision {
                BidDecision::OnDemand { price } => {
                    let work = (job.slot * assigned as f64).min(tenant.remaining_work(job));
                    if work > Hours::ZERO {
                        emit(Event::Charged {
                            item: LineItem {
                                slot,
                                price,
                                duration: work,
                                kind: UsageKind::OnDemand,
                                tag: t,
                            },
                        });
                        tenant.od_charged += work;
                    }
                    tenant.pending -= assigned;
                }
                BidDecision::Spot { price, persistent } => {
                    let id = source.set.submit(
                        leg.market,
                        BidRequest {
                            price,
                            kind: if persistent {
                                BidKind::Persistent
                            } else {
                                BidKind::OneTime
                            },
                            work: WorkModel::FixedSlots(assigned as u32),
                        },
                    );
                    let handle = books[leg.market].alloc(t, price.as_f64());
                    tenant.legs.push(WLeg {
                        market: leg.market as u32,
                        bid_id: id,
                        assigned: assigned as u32,
                        ran: 0,
                        running: false,
                        handle,
                        due: 0,
                    });
                    live[leg.market] += 1;
                    tenant.pending -= assigned;
                    emit(Event::BidSubmitted {
                        slot,
                        tenant: t,
                        price,
                        persistent,
                    });
                }
            }
        }
        if !tenant.completed && tenant.pending == 0 && tenant.legs.is_empty() {
            // Everything was covered on demand: the job is done before the
            // market even clears (same shape as the single-market
            // on-demand decision).
            tenant.completed = true;
            tenant.done_pending = true;
            emit(Event::Completed { slot, tenant: t });
        }
    }

    /// Advances one woken tenant against every market's report — the
    /// dense fleet's `slot_update` plus wakeup maintenance: started legs
    /// leave their book and schedule their expected finish, removed legs
    /// release their handle, idle pending legs (re-)register, and
    /// termination re-plans queue into `needy` (guarded against
    /// duplicates by the `needs_submit` flag). The caller tracks run-list
    /// membership through `run_legs`.
    #[allow(clippy::too_many_arguments)]
    fn update_tenant(
        tenant: &mut WTenant,
        t: u32,
        slot: u64,
        reports: &[SlotReport],
        books: &mut [LegBook],
        calendar: &mut BTreeMap<u64, Vec<u32>>,
        cal_pool: &mut Vec<Vec<u32>>,
        live: &mut [u32],
        needy: &mut Vec<u32>,
        job: &JobSpec,
        max_resubmissions: u32,
        emit: &mut dyn FnMut(Event),
    ) -> DriverStatus {
        if tenant.done_pending {
            return DriverStatus::Done;
        }
        let mut k = 0;
        while k < tenant.legs.len() {
            let leg = &mut tenant.legs[k];
            let report = &reports[leg.market as usize];
            let id = leg.bid_id;
            let started = report.started.binary_search(&id).is_ok();
            let interrupted = report.interrupted.binary_search(&id).is_ok();
            let finished = report.finished.binary_search(&id).is_ok();
            let terminated = report.terminated.binary_search(&id).is_ok();
            let ran = started || (leg.running && !interrupted && !terminated);
            if started {
                leg.running = true;
                tenant.run_legs += 1;
                emit(Event::BidAccepted { slot, tenant: t });
                // Leave the wakeup book and schedule the expected finish:
                // the bid needs `assigned − ran` more running slots
                // starting with this one — exactly the market's own
                // finish calendar. An interruption strands the entry; it
                // is validated against the legs' `due` on pop.
                let m = leg.market as usize;
                let rem = u64::from(leg.assigned - leg.ran);
                let due = slot + rem - 1;
                leg.due = due;
                let h = leg.handle;
                if books[m].registered(h) {
                    books[m].unregister(h);
                }
                if due > slot {
                    calendar_push(calendar, cal_pool, due, t);
                }
            }
            if interrupted {
                tenant.interruptions += 1;
                emit(Event::Interrupted { slot, tenant: t });
            }
            if ran {
                leg.ran += 1;
                tenant.slots_run += 1;
                emit(Event::Charged {
                    item: LineItem {
                        slot,
                        price: report.price,
                        duration: job.slot,
                        kind: UsageKind::Spot,
                        tag: t,
                    },
                });
            }
            if interrupted || terminated || finished {
                if leg.running {
                    tenant.run_legs -= 1;
                }
                leg.running = false;
            }
            if finished {
                let m = leg.market as usize;
                let h = leg.handle;
                live[m] -= 1;
                tenant.legs.remove(k);
                books[m].release(h);
                continue;
            }
            if terminated {
                emit(Event::Rejected { slot, tenant: t });
                let lost = u64::from(leg.assigned - leg.ran);
                let m = leg.market as usize;
                let h = leg.handle;
                live[m] -= 1;
                tenant.legs.remove(k);
                books[m].release(h);
                tenant.pending += lost;
                if tenant.resubmissions < max_resubmissions {
                    tenant.resubmissions += 1;
                    // Several legs may terminate in one slot; the flag
                    // keeps the tenant queued at most once.
                    if !tenant.needs_submit {
                        tenant.needs_submit = true;
                        needy.push(t);
                    }
                    // Cross-zone fallback: the next plan's home market is
                    // the next zone over.
                    if let PortfolioStrategy::ZoneFallback { home, base } = tenant.strategy {
                        tenant.strategy = PortfolioStrategy::ZoneFallback {
                            home: (home + 1) % reports.len(),
                            base,
                        };
                    }
                } else {
                    tenant.gave_up = true;
                }
                continue;
            }
            k += 1;
        }
        if !tenant.completed && tenant.legs.is_empty() && tenant.pending == 0 {
            tenant.completed = true;
            emit(Event::Completed { slot, tenant: t });
            return DriverStatus::Done;
        }
        if tenant.gave_up && tenant.legs.is_empty() && !tenant.needs_submit {
            return DriverStatus::Done;
        }
        // Every live pending leg must sit in its market's wakeup book:
        // fresh pends, re-pended persistents after an interruption, and
        // parked bids waiting out an outage all land here;
        // already-registered handles pass.
        for leg in &tenant.legs {
            if !leg.running {
                let b = &mut books[leg.market as usize];
                if !b.registered(leg.handle) {
                    b.register(leg.handle);
                }
            }
        }
        DriverStatus::Active
    }

    /// Rebuilds the sorted running list from this slot's membership
    /// changes: a three-pointer merge of the old list with `sc_started`,
    /// dropping `sc_removed` (all three ascending; a start-and-finish in
    /// the same slot appears in both deltas and nets out).
    fn merge_running(&mut self) {
        if self.sc_started.is_empty() && self.sc_removed.is_empty() {
            return;
        }
        let old = &self.running;
        let added = &self.sc_started;
        let removed = &self.sc_removed;
        let mut out = std::mem::take(&mut self.sc_run_next);
        out.clear();
        out.reserve(old.len() + added.len());
        let (mut i, mut j, mut r) = (0, 0, 0);
        while i < old.len() || j < added.len() {
            let x = if j >= added.len() || (i < old.len() && old[i] < added[j]) {
                let v = old[i];
                i += 1;
                v
            } else {
                let v = added[j];
                j += 1;
                v
            };
            while r < removed.len() && removed[r] < x {
                r += 1;
            }
            if r < removed.len() && removed[r] == x {
                r += 1;
            } else {
                out.push(x);
            }
        }
        self.sc_run_next = std::mem::replace(&mut self.running, out);
    }

    fn status(&self) -> DriverStatus {
        if self.active == 0 {
            DriverStatus::Done
        } else {
            DriverStatus::Active
        }
    }
}

impl JobDriver<PortfolioSource> for PortfolioWakeupFleet {
    fn demand(&self) -> usize {
        self.live.iter().map(|&n| n as usize).sum()
    }

    fn demand_in(&self, market: usize) -> usize {
        self.live[market] as usize
    }

    fn before_slot(
        &mut self,
        slot: u64,
        source: &mut PortfolioSource,
        emit: &mut dyn FnMut(Event),
    ) -> Result<(), EngineError> {
        self.fresh.clear();
        if self.needy.is_empty() {
            return Ok(());
        }
        // The queue holds exactly the tenants the dense fleet's full scan
        // would select (queued ascending, drained every slot); the filter
        // mirrors its `!done && needs_submit && !done_pending` guard.
        let mut needy = std::mem::take(&mut self.needy);
        needy.retain(|&i| {
            let tu = i as usize;
            let t = &mut self.tenants[tu];
            if !self.done[tu] && t.needs_submit && !t.done_pending {
                t.needs_submit = false;
                true
            } else {
                false
            }
        });
        if needy.is_empty() {
            self.needy = needy;
            return Ok(());
        }
        // One per-market history snapshot for the whole slot, identical
        // sharded fan-out to the dense fleet: same shard cuts, same
        // reserved RNG substreams, same order-stable merge.
        let histories = source.observed()?;
        let inputs: Vec<PortfolioStrategy> = needy
            .iter()
            .map(|&i| self.tenants[i as usize].strategy)
            .collect();
        let shards = inputs.len().div_ceil(SHARD_SIZE);
        let shard_rngs = &self.shard_rngs;
        let (job, on_demand) = (self.job, self.on_demand);
        let plans: Vec<Vec<Result<PortfolioPlan, CoreError>>> =
            spotbid_exec::par_map(shards, |s| {
                let mut _rng = shard_rngs[s].clone(); // reserved, see dense
                let lo = s * SHARD_SIZE;
                let hi = (lo + SHARD_SIZE).min(inputs.len());
                inputs[lo..hi]
                    .iter()
                    .map(|strat| strat.decide(&histories, &job, on_demand))
                    .collect()
            });
        // Serial, ordered apply: per-market bid ids and events come out
        // exactly as if each tenant had planned in turn.
        let mut flat = plans.into_iter().flatten();
        for &i in &needy {
            let plan = flat
                .next()
                .expect("one plan per needy tenant")
                .map_err(EngineError::Core)?;
            Self::apply_plan(
                &mut self.tenants[i as usize],
                i,
                &plan,
                &job,
                slot,
                source,
                &mut self.books,
                &mut self.live,
                emit,
            );
            self.fresh.push(i);
        }
        needy.clear();
        self.needy = needy;
        Ok(())
    }

    fn on_slot(
        &mut self,
        slot: u64,
        reports: &Vec<SlotReport>,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError> {
        self.stats.slots += 1;

        // Collect this slot's wake set: fresh plans, calendar hits, then
        // every market's price-fall sweep.
        let mut woken = std::mem::take(&mut self.sc_woken);
        woken.clear();
        woken.extend_from_slice(&self.fresh);
        self.fresh.clear();
        if let Some(mut list) = self.calendar.remove(&slot) {
            for &e in &list {
                let t = e & !UNCOND;
                // Plain entries are expected leg finishes: valid only if
                // some leg is still running the streak that scheduled
                // them (any due leg makes the wake genuine).
                if e & UNCOND != 0
                    || self.tenants[t as usize]
                        .legs
                        .iter()
                        .any(|l| l.running && l.due == slot)
                {
                    woken.push(t);
                }
            }
            list.clear();
            self.cal_pool.push(list);
        }
        for (m, report) in reports.iter().enumerate() {
            let pf = report.price.as_f64();
            let pp = self.prev_price[m];
            self.prev_price[m] = pf;
            if pf < pp {
                let before = woken.len();
                self.books[m].sweep_fall(pf, pp, &mut woken);
                self.stats.swept[m] += (woken.len() - before) as u64;
            }
        }

        if woken.is_empty() && self.running.is_empty() {
            // No market's wake set fired and nothing is running: the
            // dense fleet would have walked every tenant and changed
            // nothing.
            self.stats.skipped_slots += 1;
            self.sc_woken = woken;
            return Ok(self.status());
        }

        // Process in ascending tenant order — the dense fleet's scan
        // order — via a dedup merge of the (sorted) wake set with the
        // (sorted) running list.
        woken.sort_unstable();
        woken.dedup();
        let mut order = std::mem::take(&mut self.sc_order);
        order.clear();
        {
            let run = &self.running;
            order.reserve(woken.len() + run.len());
            let (mut i, mut j) = (0, 0);
            while i < woken.len() && j < run.len() {
                let (a, b) = (woken[i], run[j]);
                if a <= b {
                    order.push(a);
                    i += 1;
                    j += usize::from(a == b);
                } else {
                    order.push(b);
                    j += 1;
                }
            }
            order.extend_from_slice(&woken[i..]);
            order.extend_from_slice(&run[j..]);
        }
        self.stats.woken += order.len() as u64;

        let mut started_add = std::mem::take(&mut self.sc_started);
        let mut removed = std::mem::take(&mut self.sc_removed);
        started_add.clear();
        removed.clear();
        for &t in &order {
            let tu = t as usize;
            if self.done[tu] {
                continue;
            }
            let had_running = self.tenants[tu].run_legs > 0;
            let status = Self::update_tenant(
                &mut self.tenants[tu],
                t,
                slot,
                reports,
                &mut self.books,
                &mut self.calendar,
                &mut self.cal_pool,
                &mut self.live,
                &mut self.needy,
                &self.job,
                self.max_resubmissions,
                emit,
            );
            let now_running = self.tenants[tu].run_legs > 0;
            if now_running && !had_running {
                started_add.push(t);
            }
            if had_running && !now_running {
                removed.push(t);
            }
            if status == DriverStatus::Done {
                self.done[tu] = true;
                self.active -= 1;
            }
        }
        self.sc_started = started_add;
        self.sc_removed = removed;
        self.merge_running();

        // Parked bids resolve at their market's next individual
        // re-auction — which a price sweep cannot predict — so their
        // owners are armed unconditionally for the next slot. Two things
        // park a bid in market m:
        //
        // - market m's reclamation outage (every displaced and incoming
        //   bid): every woken tenant still holding a live non-running leg
        //   there re-arms, chaining across back-to-back outages;
        // - market m's finite-supply capacity pass: the market names the
        //   exact victim set in `reports[m].evicted`, so only those legs'
        //   owners re-arm — every victim's owner is awake this slot
        //   (running victims were in the running list; would-be starters
        //   were swept, fresh, or parked-armed), so scanning `order` is
        //   complete. Quiet slots stay skippable under `Supply::Finite`.
        self.sc_outage.clear();
        let mut any_outage = false;
        for m in 0..reports.len() {
            let o = self
                .reclaim_masks
                .get(m)
                .and_then(|mask| mask.get(slot as usize))
                .copied()
                .unwrap_or(false);
            any_outage |= o;
            self.sc_outage.push(o);
        }
        if any_outage || reports.iter().any(|r| !r.evicted.is_empty()) {
            for &t in &order {
                let tu = t as usize;
                if self.done[tu] {
                    continue;
                }
                let mut arm = false;
                for leg in &self.tenants[tu].legs {
                    let m = leg.market as usize;
                    if (self.sc_outage[m] && !leg.running)
                        || reports[m].evicted.binary_search(&leg.bid_id).is_ok()
                    {
                        arm = true;
                        break;
                    }
                }
                if arm {
                    self.arm_uncond(slot + 1, t);
                }
            }
        }

        self.sc_woken = woken;
        self.sc_order = order;
        Ok(self.status())
    }
}

/// Runs the wakeup portfolio fleet under the shared session shell (the
/// parent module's public `run_portfolio_loop*` entry points delegate
/// here).
pub(super) fn run(
    strategies: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
    log: Option<&mut EventLog>,
) -> Result<(PortfolioReport, PortfolioFleetStats), EngineError> {
    // The fleet sees kernel slots (0-based after warmup); shift each
    // market's absolute-slot fault plan accordingly.
    let reclaim_masks: Vec<Vec<bool>> = match faults {
        Some(fs) => fs
            .iter()
            .map(|f| {
                (0..cfg.horizon_slots)
                    .map(|s| f.reclaim_at(cfg.warmup_slots + s))
                    .collect()
            })
            .collect(),
        None => Vec::new(),
    };
    let (report, fleet) = run_session(
        strategies,
        cfg,
        seed,
        faults,
        log,
        |streams| PortfolioWakeupFleet::new(strategies, cfg, streams, reclaim_masks),
        |fleet| {
            fleet
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| TenantFinal {
                    tag: i as u32,
                    strategy: t.strategy,
                    completed: t.completed,
                    spot_slots: t.slots_run,
                    interruptions: t.interruptions,
                    resubmissions: t.resubmissions,
                    remaining: t.remaining_work(&cfg.job),
                })
                .collect()
        },
    )?;
    Ok((report, fleet.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> LegBook {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap();
        LegBook::new(&params)
    }

    /// A hostile threshold for the slab audit: boundary-exact grid
    /// points, below-floor, above-cap, and plain uniform values.
    fn threshold(b: &LegBook, rng: &mut Rng) -> f64 {
        match rng.range_f64(0.0, 4.0) as usize {
            0 => {
                let k = rng.range_f64(0.0, WAKE_BUCKETS as f64 + 1.0).floor();
                b.lo + k * b.w
            }
            1 => rng.range_f64(-0.05, b.lo),
            2 => rng.range_f64(b.lo + WAKE_BUCKETS as f64 * b.w, 1.0),
            _ => rng.range_f64(b.lo, b.lo + WAKE_BUCKETS as f64 * b.w),
        }
    }

    /// Full structural audit: every bucket position agrees with
    /// `pos_of`/`bucket_of`, every member's bucket is its threshold's
    /// classifier bucket, no freed handle lingers in a bucket, and
    /// membership matches the reference set.
    fn audit(b: &LegBook, registered: &[Option<u32>]) {
        let mut seen = 0;
        for (k, list) in b.buckets.iter().enumerate() {
            for (p, &h) in list.iter().enumerate() {
                let hu = h as usize;
                let owner = registered[hu].expect("freed handle still in a bucket");
                assert_eq!(b.owner[hu], owner);
                assert_eq!(b.bucket_of[hu] as usize, k);
                assert_eq!(b.pos_of[hu] as usize, p);
                assert_eq!(b.bucket_index(b.threshold[hu]), k, "misfiled threshold");
                seen += 1;
            }
        }
        let expect = registered.iter().filter(|r| r.is_some()).count();
        assert_eq!(seen, expect, "bucket membership drifted from the reference");
    }

    #[test]
    fn leg_slab_survives_alloc_release_churn() {
        // Handles are allocated, registered, unregistered, and released
        // in arbitrary order; the slab's free list must recycle them
        // without ever corrupting bucket membership.
        let mut b = book();
        let mut rng = Rng::seed_from_u64(0x1E6B);
        let mut live: Vec<u32> = Vec::new(); // registered handles
        let mut registered: Vec<Option<u32>> = Vec::new(); // by handle
        let mut allocs = 0u32;
        for step in 0..20_000 {
            if live.is_empty() || rng.chance(0.55) {
                let owner = rng.range_f64(0.0, 1000.0) as u32;
                let thr = threshold(&b, &mut rng);
                let h = b.alloc(owner, thr);
                allocs += 1;
                b.register(h);
                if h as usize >= registered.len() {
                    registered.resize(h as usize + 1, None);
                }
                registered[h as usize] = Some(owner);
                live.push(h);
            } else {
                let k = rng.range_f64(0.0, live.len() as f64) as usize % live.len();
                let h = live.swap_remove(k);
                b.release(h);
                registered[h as usize] = None;
            }
            if step % 997 == 0 {
                audit(&b, &registered);
            }
        }
        audit(&b, &registered);
        assert!(
            (b.threshold.len() as u32) < allocs,
            "churn must have recycled handles through the free list"
        );
    }

    #[test]
    fn sweep_yields_owners_of_every_crossed_leg() {
        let mut b = book();
        let mut rng = Rng::seed_from_u64(0x0E5B);
        // Two legs per owner so duplicate owner pushes are exercised.
        let mut legs: Vec<(u32, u32)> = Vec::new(); // (handle, owner)
        for owner in 0..200u32 {
            for _ in 0..2 {
                let h = b.alloc(owner, threshold(&b, &mut rng));
                b.register(h);
                legs.push((h, owner));
            }
        }
        for _ in 0..2_000 {
            let a = threshold(&b, &mut rng).max(0.0);
            let c = threshold(&b, &mut rng).max(0.0);
            let (pf, pp) = if a < c { (a, c) } else { (c, a) };
            let mut out = Vec::new();
            b.sweep_fall(pf, pp, &mut out);
            out.sort_unstable();
            // Completeness: every crossed leg's owner is woken.
            for &(h, owner) in &legs {
                let thr = b.threshold[h as usize];
                if thr >= pf && thr < pp {
                    assert!(
                        out.binary_search(&owner).is_ok(),
                        "owner {owner} of threshold {thr} in [{pf}, {pp}) slept"
                    );
                }
            }
        }
    }
}
