//! Multi-tenant closed-loop bidding: the capability none of the old loops
//! had.
//!
//! The paper's two halves never meet: Sections 5–7 bidders are price-takers
//! replaying recorded traces, and the Section-4 equilibrium market is only
//! exercised with synthetic uniform bids. Here they are joined — N
//! strategy-driven tenants observe the prices an endogenous [`SpotMarket`]
//! has posted *so far*, resolve their `BiddingStrategy` online, and submit
//! real bids whose demand moves the very price process they are bidding
//! against (the regime studied by feedback-control bidding, arXiv:1708.01391,
//! and strategic multi-bidder interaction, arXiv:2305.19578).
//!
//! Background load keeps the market alive: each slot, `Poisson(λ)` one-time
//! bidders with geometric work arrive, bidding uniformly over
//! `[π_min, π̄]` — the paper's §4 uniform-bid assumption. Everything is
//! deterministic from one `u64` seed via [`RngStreams`] substreams: stream
//! 0 drives market departures, stream 1 the background arrivals, and
//! streams 2+ are reserved one-per-decision-shard; tenants themselves draw
//! no randomness.
//!
//! Two tenant fleets share this contract, mirroring the market's own
//! naive/bid-book split:
//!
//! - [`dense`] — the frozen per-slot fleet: every slot it scans every
//!   tenant and binary-searches every live bid against the report. O(N)
//!   per slot, obviously correct, retained verbatim as the behavioral
//!   oracle.
//! - the **wakeup fleet** (default, behind [`run_closed_loop`]) — a
//!   struct-of-arrays fleet with price-indexed wakeup buckets and a
//!   calendar queue: a tenant is touched only when the posted price
//!   crosses *its* threshold, a scheduled event (expected finish, fresh
//!   submission) fires, or it is running. A slot where nothing fires
//!   costs O(1). Bit-identical to [`dense`] — same `BidId`s, events,
//!   bills, and RNG stream reservations at any thread count — per the
//!   DESIGN.md §5f contract, held by `tests/wakeup_equiv.rs`.

use crate::billing::Bill;
use crate::event::Event;
use crate::observer::EventLog;
use crate::source::PriceSource;
use crate::EngineError;
use spotbid_core::{BiddingStrategy, JobSpec};
use spotbid_market::params::MarketParams;
use spotbid_market::sim::{
    BidKind, BidRequest, ProviderReport, SlotReport, SpotMarket, Supply, WorkModel,
};
use spotbid_market::units::{Cost, Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};
use spotbid_trace::SpotPriceHistory;

pub mod dense;
pub mod portfolio;
mod wakeup;

pub use wakeup::FleetStats;

/// Configuration of one closed-loop session.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopConfig {
    /// The provider's market parameters (Eq. 3 pricing).
    pub params: MarketParams,
    /// Pricing-slot length (5 minutes on EC2).
    pub slot_len: Hours,
    /// The on-demand price — every tenant's outside option.
    pub on_demand: Price,
    /// The job each tenant needs to run.
    pub job: JobSpec,
    /// Background-only slots simulated before tenants may bid, so their
    /// strategies have an observed history to fit. Must be ≥ 1.
    pub warmup_slots: usize,
    /// Slots simulated with tenants in the market.
    pub horizon_slots: usize,
    /// Mean background arrivals per slot (`Poisson(λ)` one-time bidders
    /// with geometric work, bidding uniformly over `[π_min, π̄]`).
    pub background_arrivals: f64,
    /// Times a tenant whose bid was rejected/terminated may re-bid before
    /// giving up on spot.
    pub max_resubmissions: u32,
    /// The market's supply model: unbounded Eq. 3 pricing (the default
    /// regime, bit-identical to the pre-supply loop) or a finite provider
    /// whose on-demand pool competes with the spot book for servers.
    pub supply: Supply,
    /// Mean on-demand instance requests per slot (`Poisson`); drawn from
    /// a reserved substream, only under finite supply.
    pub od_arrivals: f64,
    /// Per-slot departure probability of each active on-demand instance
    /// (geometric holding times); only under finite supply.
    pub od_departure: f64,
}

/// What happened to one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantOutcome {
    /// The tenant's billing tag (its index in the strategy slice).
    pub tenant: u32,
    /// The strategy it bid with.
    pub strategy: BiddingStrategy,
    /// Whether its job's work was completed (on spot or on demand).
    pub completed: bool,
    /// Slots it ran on spot instances.
    pub spot_slots: u64,
    /// Interruptions suffered.
    pub interruptions: u32,
    /// Times it re-bid after a rejection/termination.
    pub resubmissions: u32,
    /// Total cost, including the on-demand completion of any work left
    /// unfinished when the horizon closed.
    pub cost: Cost,
    /// Savings vs. running the whole job on demand: `1 − cost/(π̄·T_s)`.
    pub savings: f64,
}

/// Aggregate result of one closed-loop session.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopReport {
    /// Per-tenant accounting, in tag order.
    pub tenants: Vec<TenantOutcome>,
    /// Tenants whose work completed.
    pub completed: usize,
    /// Mean savings across tenants.
    pub mean_savings: f64,
    /// Mean posted price over the tenant-visible horizon.
    pub mean_price: Price,
    /// Peak posted price over the tenant-visible horizon.
    pub peak_price: Price,
    /// Slots simulated after warmup.
    pub slots: u64,
    /// The provider's side of the session — revenue, utilization,
    /// reclamations, on-demand rejections over the **whole** run (warmup
    /// included). `None` under unbounded supply.
    pub provider: Option<ProviderReport>,
}

/// A fault plan for one closed-loop session, indexed by **absolute** slot
/// (warmup slots included). Both fleets consume faults through the shared
/// `ClosedLoopSource`, so a faulted wakeup run stays bit-identical to
/// the faulted dense run. Slots beyond a vector's length are fault-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopFaults {
    /// Feed gaps: the slot's posted price never reaches the tenants'
    /// observed history (the market itself is unaffected).
    pub gap: Vec<bool>,
    /// Capacity reclamations: the provider takes every instance back this
    /// slot regardless of bids (see `SpotMarket::reclaim_next_slot`).
    pub reclaim: Vec<bool>,
}

impl LoopFaults {
    fn gap_at(&self, slot: usize) -> bool {
        self.gap.get(slot).copied().unwrap_or(false)
    }

    fn reclaim_at(&self, slot: usize) -> bool {
        self.reclaim.get(slot).copied().unwrap_or(false)
    }
}

/// An endogenous market as a kernel price source: each slot, background
/// bidders arrive, then the market clears, and the posted price is
/// appended to the history tenants observe (unless a feed gap swallows
/// it).
#[derive(Debug)]
struct ClosedLoopSource {
    market: SpotMarket,
    /// Geometric departures inside `SpotMarket::step`.
    market_rng: Rng,
    /// Background arrival process — a separate substream so tenant demand
    /// never shifts the background draws.
    bg_rng: Rng,
    arrivals: f64,
    slot_len: Hours,
    /// On-demand churn process — its own reserved substream (placed after
    /// the decision shards), present only under finite supply so the
    /// unbounded stream layout is untouched.
    od_rng: Option<Rng>,
    od_arrivals: f64,
    od_departure: f64,
    /// Every price the market posted, in slot order (ground truth).
    posted: Vec<Price>,
    /// The prices that reached the tenants' feed (gap slots omitted).
    observed: Vec<Price>,
    faults: Option<LoopFaults>,
}

impl ClosedLoopSource {
    fn new(
        cfg: &ClosedLoopConfig,
        streams: &RngStreams,
        faults: Option<&LoopFaults>,
        n_tenants: usize,
    ) -> Self {
        // Streams 0/1 belong to the market and the background process and
        // 2.. to the decision shards; the on-demand process reserves the
        // next index after the shards, so it exists at any tenant count
        // without shifting any pre-existing stream.
        let od_rng = match cfg.supply {
            Supply::Unbounded => None,
            Supply::Finite { .. } => {
                Some(streams.stream(2 + n_tenants.div_ceil(dense::SHARD_SIZE) as u64))
            }
        };
        ClosedLoopSource {
            market: SpotMarket::with_supply(cfg.params, cfg.slot_len, cfg.supply),
            market_rng: streams.stream(0),
            bg_rng: streams.stream(1),
            arrivals: cfg.background_arrivals,
            slot_len: cfg.slot_len,
            od_rng,
            od_arrivals: cfg.od_arrivals,
            od_departure: cfg.od_departure,
            posted: Vec::new(),
            observed: Vec::new(),
            faults: faults.cloned(),
        }
    }

    fn advance(&mut self) -> SlotReport {
        let slot = self.posted.len();
        let (gap, reclaim) = match &self.faults {
            Some(f) => (f.gap_at(slot), f.reclaim_at(slot)),
            None => (false, false),
        };
        if reclaim {
            self.market.reclaim_next_slot();
        }
        if let Some(od_rng) = self.od_rng.as_mut() {
            // On-demand churn: each active instance departs with
            // probability `od_departure`, then `Poisson(od_arrivals)` new
            // requests contend for the pool — admissions shrink the spot
            // share the market clears this slot, and may force it to
            // reclaim running spot instances.
            let mut departed = 0u32;
            for _ in 0..self.market.od_active() {
                if od_rng.chance(self.od_departure) {
                    departed += 1;
                }
            }
            self.market.release_on_demand(departed);
            let requested = od_rng.poisson(self.od_arrivals).min(u64::from(u32::MAX)) as u32;
            if requested > 0 {
                self.market.request_on_demand(requested);
            }
        }
        let n = self.bg_rng.poisson(self.arrivals);
        let (lo, hi) = (
            self.market.params().pi_min.as_f64(),
            self.market.params().pi_bar.as_f64(),
        );
        for _ in 0..n {
            let price = Price::new(self.bg_rng.range_f64(lo, hi));
            self.market.submit(BidRequest {
                price,
                kind: BidKind::OneTime,
                work: WorkModel::Geometric,
            });
        }
        let report = self.market.step(&mut self.market_rng);
        self.posted.push(report.price);
        if !gap {
            self.observed.push(report.price);
        }
        report
    }

    fn warmup(&mut self, slots: usize) {
        for _ in 0..slots {
            let report = self.advance();
            self.market.recycle(report);
        }
    }

    /// The history a tenant may observe (every price that reached the
    /// feed so far).
    fn observed(&self) -> Result<SpotPriceHistory, EngineError> {
        SpotPriceHistory::new(self.slot_len, self.observed.clone()).map_err(|e| {
            EngineError::InvalidConfig {
                what: format!("observed history: {e}"),
            }
        })
    }
}

impl PriceSource for ClosedLoopSource {
    type Quote = SlotReport;

    fn post(&mut self, _slot: u64, _demand: usize) -> Option<SlotReport> {
        Some(self.advance())
    }

    fn quote_events(&self, slot: u64, quote: &SlotReport, emit: &mut dyn FnMut(Event)) {
        emit(Event::PricePosted {
            slot,
            price: quote.price,
        });
    }

    fn reclaim(&mut self, quote: SlotReport) {
        // Return the spent report's buffers to the market's arena, so the
        // closed loop steps without per-slot event allocation.
        self.market.recycle(quote);
    }
}

/// Per-tenant final state, as both fleets hand it to the shared report
/// assembly. Field-for-field what [`TenantOutcome`] needs before costs.
struct TenantFinal {
    tag: u32,
    strategy: BiddingStrategy,
    completed: bool,
    slots_run: u64,
    interruptions: u32,
    resubmissions: u32,
}

fn validate(strategies: &[BiddingStrategy], cfg: &ClosedLoopConfig) -> Result<(), EngineError> {
    if strategies.is_empty() {
        return Err(EngineError::InvalidConfig {
            what: "no tenants".into(),
        });
    }
    if cfg.warmup_slots == 0 || cfg.horizon_slots == 0 {
        return Err(EngineError::InvalidConfig {
            what: "warmup_slots and horizon_slots must be ≥ 1".into(),
        });
    }
    if !cfg.background_arrivals.is_finite() || cfg.background_arrivals < 0.0 {
        return Err(EngineError::InvalidConfig {
            what: format!(
                "background_arrivals {} must be finite and ≥ 0",
                cfg.background_arrivals
            ),
        });
    }
    if !cfg.od_arrivals.is_finite() || cfg.od_arrivals < 0.0 {
        return Err(EngineError::InvalidConfig {
            what: format!("od_arrivals {} must be finite and ≥ 0", cfg.od_arrivals),
        });
    }
    if !(0.0..=1.0).contains(&cfg.od_departure) {
        return Err(EngineError::InvalidConfig {
            what: format!("od_departure {} must be in [0, 1]", cfg.od_departure),
        });
    }
    if let Supply::Finite { capacity, .. } = cfg.supply {
        if capacity == 0 {
            return Err(EngineError::InvalidConfig {
                what: "finite supply needs capacity ≥ 1".into(),
            });
        }
    }
    cfg.job.validate().map_err(EngineError::Core)?;
    if cfg.job.slot != cfg.slot_len {
        return Err(EngineError::InvalidConfig {
            what: "job slot length must equal the market slot length".into(),
        });
    }
    Ok(())
}

/// §5.1 fallback plus aggregation, shared by both fleets: incomplete
/// tenants finish their remaining work on demand (charged at the horizon
/// close, in tag order — the float accumulation order is part of the
/// bit-equivalence contract), then per-tenant outcomes and the price-path
/// summary are folded into the report.
fn assemble_report(
    finals: &[TenantFinal],
    bill: &mut Bill,
    source: &ClosedLoopSource,
    cfg: &ClosedLoopConfig,
) -> Result<ClosedLoopReport, EngineError> {
    for f in finals {
        if !f.completed {
            let work = (cfg.job.execution - cfg.slot_len * f.slots_run as f64).max(Hours::ZERO);
            if work > Hours::ZERO {
                bill.try_charge_on_demand(
                    (cfg.warmup_slots + cfg.horizon_slots) as u64,
                    cfg.on_demand,
                    work,
                    f.tag,
                )?;
            }
        }
    }
    let od_cost = (cfg.on_demand * cfg.job.execution).as_f64();
    // One pass over the bill instead of a scan per tenant (tags are tenant
    // indices here); per-tag accumulation order is unchanged, so costs stay
    // bit-identical to the per-tag scans.
    let totals = bill.totals_by_tag(finals.len());
    let outcomes: Vec<TenantOutcome> = finals
        .iter()
        .map(|f| {
            let cost = totals[f.tag as usize];
            TenantOutcome {
                tenant: f.tag,
                strategy: f.strategy,
                completed: f.completed,
                spot_slots: f.slots_run,
                interruptions: f.interruptions,
                resubmissions: f.resubmissions,
                cost,
                savings: 1.0 - cost.as_f64() / od_cost,
            }
        })
        .collect();
    let visible = &source.posted[cfg.warmup_slots..];
    let mean_price =
        Price::new(visible.iter().map(|p| p.as_f64()).sum::<f64>() / visible.len().max(1) as f64);
    let peak_price = visible
        .iter()
        .copied()
        .fold(Price::ZERO, |a, b| if b > a { b } else { a });
    Ok(ClosedLoopReport {
        completed: outcomes.iter().filter(|o| o.completed).count(),
        mean_savings: outcomes.iter().map(|o| o.savings).sum::<f64>() / outcomes.len() as f64,
        tenants: outcomes,
        mean_price,
        peak_price,
        slots: visible.len() as u64,
        provider: source.market.provider_report(),
    })
}

/// Runs one closed-loop session on the event-driven wakeup fleet: warms
/// the market up with background load, then lets one tenant per strategy
/// bid into it for `horizon_slots`. Deterministic from `seed`, and
/// bit-identical to [`dense::run_closed_loop`] at any thread count.
///
/// Tenants left incomplete at the horizon finish their remaining work on
/// demand (the §5.1 fallback), so every reported cost is for a completed
/// job and savings are comparable across tenant counts.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] for empty strategy lists, zero warmup or
/// horizon, or a non-finite arrival rate; [`EngineError::Core`] if a
/// strategy fails to resolve.
pub fn run_closed_loop(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
) -> Result<ClosedLoopReport, EngineError> {
    wakeup::run(strategies, cfg, seed, None, None).map(|(report, _)| report)
}

/// As [`run_closed_loop`], optionally fault-injected, also returning the
/// fleet's wakeup statistics (processed/skipped slots, wakeup counts).
///
/// # Errors
///
/// As [`run_closed_loop`].
pub fn run_closed_loop_with_stats(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
    faults: Option<&LoopFaults>,
) -> Result<(ClosedLoopReport, FleetStats), EngineError> {
    wakeup::run(strategies, cfg, seed, faults, None)
}

/// As [`run_closed_loop`], optionally fault-injected, also returning the
/// full event stream and the fleet's wakeup statistics — the equivalence
/// suite's view of a run.
///
/// # Errors
///
/// As [`run_closed_loop`].
pub fn run_closed_loop_logged(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
    faults: Option<&LoopFaults>,
) -> Result<(ClosedLoopReport, Vec<Event>, FleetStats), EngineError> {
    let mut log = EventLog::new();
    let (report, stats) = wakeup::run(strategies, cfg, seed, faults, Some(&mut log))?;
    Ok((report, log.into_events(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClosedLoopConfig {
        ClosedLoopConfig {
            params: MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap(),
            slot_len: Hours::from_minutes(5.0),
            on_demand: Price::new(0.35),
            job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
            warmup_slots: 100,
            horizon_slots: 400,
            background_arrivals: 3.0,
            max_resubmissions: 4,
            supply: Supply::Unbounded,
            od_arrivals: 0.0,
            od_departure: 0.0,
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let strategies = [
            BiddingStrategy::OptimalPersistent,
            BiddingStrategy::Percentile(0.95),
            BiddingStrategy::FixedBid(Price::new(0.30)),
        ];
        let cfg = config();
        let a = run_closed_loop(&strategies, &cfg, 0xC105ED).unwrap();
        let b = run_closed_loop(&strategies, &cfg, 0xC105ED).unwrap();
        assert_eq!(a, b);
        let c = run_closed_loop(&strategies, &cfg, 0xC105ED + 1).unwrap();
        assert_ne!(
            a.mean_price, c.mean_price,
            "different seed, different market"
        );
    }

    #[test]
    fn tenants_complete_and_save() {
        let strategies = [BiddingStrategy::FixedBid(Price::new(0.34)); 4];
        let cfg = config();
        let report = run_closed_loop(&strategies, &cfg, 7).unwrap();
        assert_eq!(report.tenants.len(), 4);
        // Every cost is finite and every tenant's job is accounted for:
        // completed on spot, or topped up on demand.
        for t in &report.tenants {
            assert!(t.cost.as_f64().is_finite() && t.cost.as_f64() > 0.0);
            assert!(t.savings <= 1.0);
        }
        // A near-π̄ persistent bid in this quiet market should complete.
        assert!(report.completed > 0, "{report:?}");
        assert!(report.mean_price > Price::ZERO);
        assert!(report.peak_price >= report.mean_price);
    }

    #[test]
    fn on_demand_strategy_charges_full_job() {
        let cfg = config();
        let report = run_closed_loop(&[BiddingStrategy::OnDemand], &cfg, 11).unwrap();
        let t = &report.tenants[0];
        assert!(t.completed);
        assert_eq!(t.spot_slots, 0);
        assert!((t.cost.as_f64() - 0.35).abs() < 1e-12, "od × 1h job");
        assert!(t.savings.abs() < 1e-12);
    }

    #[test]
    fn demand_moves_the_price() {
        // More tenants → more accepted demand → higher posted prices
        // (Eq. 3's price rises with L). Compare 1 vs 24 aggressive
        // persistent bidders on the same seed.
        let cfg = ClosedLoopConfig {
            background_arrivals: 1.0,
            ..config()
        };
        let lone =
            run_closed_loop(&[BiddingStrategy::FixedBid(Price::new(0.34))], &cfg, 99).unwrap();
        let crowd_strats = vec![BiddingStrategy::FixedBid(Price::new(0.34)); 24];
        let crowd = run_closed_loop(&crowd_strats, &cfg, 99).unwrap();
        assert!(
            crowd.mean_price > lone.mean_price,
            "crowd {} vs lone {}",
            crowd.mean_price,
            lone.mean_price
        );
    }

    #[test]
    fn invalid_configs_are_refused() {
        let cfg = config();
        assert!(matches!(
            run_closed_loop(&[], &cfg, 1),
            Err(EngineError::InvalidConfig { .. })
        ));
        let bad = ClosedLoopConfig {
            warmup_slots: 0,
            ..cfg
        };
        assert!(run_closed_loop(&[BiddingStrategy::OnDemand], &bad, 1).is_err());
        let bad = ClosedLoopConfig {
            background_arrivals: f64::NAN,
            ..cfg
        };
        assert!(run_closed_loop(&[BiddingStrategy::OnDemand], &bad, 1).is_err());
        let bad = ClosedLoopConfig {
            slot_len: Hours::from_minutes(10.0),
            ..cfg
        };
        assert!(run_closed_loop(&[BiddingStrategy::OnDemand], &bad, 1).is_err());
    }

    #[test]
    fn wakeup_matches_dense_on_a_small_session() {
        // The in-crate smoke version of tests/wakeup_equiv.rs: identical
        // reports, events, and skip accounting on one mixed session.
        let strategies = [
            BiddingStrategy::OptimalPersistent,
            BiddingStrategy::Percentile(0.95),
            BiddingStrategy::FixedBid(Price::new(0.30)),
            BiddingStrategy::OptimalOneTime,
            BiddingStrategy::OnDemand,
        ];
        let cfg = config();
        let (wr, we, stats) = run_closed_loop_logged(&strategies, &cfg, 0xBEEF, None).unwrap();
        let (dr, de) = dense::run_closed_loop_logged(&strategies, &cfg, 0xBEEF, None).unwrap();
        assert_eq!(wr, dr);
        assert_eq!(we, de);
        assert!(
            stats.skipped_slots > 0,
            "a 400-slot tail should have quiet slots"
        );
    }

    #[test]
    fn faulted_wakeup_matches_faulted_dense() {
        let strategies = [
            BiddingStrategy::FixedBid(Price::new(0.30)),
            BiddingStrategy::OptimalPersistent,
        ];
        let cfg = config();
        let total = cfg.warmup_slots + cfg.horizon_slots;
        let mut faults = LoopFaults {
            gap: vec![false; total],
            reclaim: vec![false; total],
        };
        for s in (0..total).step_by(17) {
            faults.gap[s] = true;
        }
        // Jobs need 12 slots; an outage every 4th slot interrupts every
        // tenant mid-run repeatedly.
        for s in ((cfg.warmup_slots + 3)..total).step_by(4) {
            faults.reclaim[s] = true;
        }
        let (wr, we, _) = run_closed_loop_logged(&strategies, &cfg, 0xFA17, Some(&faults)).unwrap();
        let (dr, de) =
            dense::run_closed_loop_logged(&strategies, &cfg, 0xFA17, Some(&faults)).unwrap();
        assert_eq!(wr, dr);
        assert_eq!(we, de);
        // Reclamations actually bit: somebody was interrupted.
        assert!(wr.tenants.iter().any(|t| t.interruptions > 0), "{wr:?}");
    }
}
