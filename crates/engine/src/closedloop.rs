//! Multi-tenant closed-loop bidding: the capability none of the old loops
//! had.
//!
//! The paper's two halves never meet: Sections 5–7 bidders are price-takers
//! replaying recorded traces, and the Section-4 equilibrium market is only
//! exercised with synthetic uniform bids. Here they are joined — N
//! strategy-driven tenants observe the prices an endogenous [`SpotMarket`]
//! has posted *so far*, resolve their `BiddingStrategy` online, and submit
//! real bids whose demand moves the very price process they are bidding
//! against (the regime studied by feedback-control bidding, arXiv:1708.01391,
//! and strategic multi-bidder interaction, arXiv:2305.19578).
//!
//! Background load keeps the market alive: each slot, `Poisson(λ)` one-time
//! bidders with geometric work arrive, bidding uniformly over
//! `[π_min, π̄]` — the paper's §4 uniform-bid assumption. Everything is
//! deterministic from one `u64` seed via [`RngStreams`] substreams: stream
//! 0 drives market departures, stream 1 the background arrivals, and
//! streams 2+ are reserved one-per-decision-shard (see below); tenants
//! themselves draw no randomness.
//!
//! Tenant evaluation is **sharded**: all tenants live in one
//! [`TenantFleet`](self) kernel driver whose per-slot strategy decisions
//! fan out across `spotbid-exec` workers in fixed 64-tenant shards
//! (order-stable merge, one reserved RNG substream per shard), while bid
//! submission and report processing stay serial in tenant order — so bid
//! ids, event order, and results are identical to the legacy
//! one-driver-per-tenant loop at any thread count, but a 10k-tenant slot
//! resolves its decisions in parallel.

use crate::billing::{LineItem, UsageKind};
use crate::event::Event;
use crate::kernel::{DriverStatus, JobDriver, Kernel};
use crate::observer::BillingObserver;
use crate::source::PriceSource;
use crate::EngineError;
use spotbid_core::{BidDecision, BiddingStrategy, CoreError, JobSpec};
use spotbid_market::params::MarketParams;
use spotbid_market::sim::{BidId, BidKind, BidRequest, SlotReport, SpotMarket, WorkModel};
use spotbid_market::units::{Cost, Hours, Price};
use spotbid_numerics::rng::{Rng, RngStreams};
use spotbid_trace::SpotPriceHistory;

/// Configuration of one closed-loop session.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopConfig {
    /// The provider's market parameters (Eq. 3 pricing).
    pub params: MarketParams,
    /// Pricing-slot length (5 minutes on EC2).
    pub slot_len: Hours,
    /// The on-demand price — every tenant's outside option.
    pub on_demand: Price,
    /// The job each tenant needs to run.
    pub job: JobSpec,
    /// Background-only slots simulated before tenants may bid, so their
    /// strategies have an observed history to fit. Must be ≥ 1.
    pub warmup_slots: usize,
    /// Slots simulated with tenants in the market.
    pub horizon_slots: usize,
    /// Mean background arrivals per slot (`Poisson(λ)` one-time bidders
    /// with geometric work, bidding uniformly over `[π_min, π̄]`).
    pub background_arrivals: f64,
    /// Times a tenant whose bid was rejected/terminated may re-bid before
    /// giving up on spot.
    pub max_resubmissions: u32,
}

/// What happened to one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantOutcome {
    /// The tenant's billing tag (its index in the strategy slice).
    pub tenant: u32,
    /// The strategy it bid with.
    pub strategy: BiddingStrategy,
    /// Whether its job's work was completed (on spot or on demand).
    pub completed: bool,
    /// Slots it ran on spot instances.
    pub spot_slots: u64,
    /// Interruptions suffered.
    pub interruptions: u32,
    /// Times it re-bid after a rejection/termination.
    pub resubmissions: u32,
    /// Total cost, including the on-demand completion of any work left
    /// unfinished when the horizon closed.
    pub cost: Cost,
    /// Savings vs. running the whole job on demand: `1 − cost/(π̄·T_s)`.
    pub savings: f64,
}

/// Aggregate result of one closed-loop session.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopReport {
    /// Per-tenant accounting, in tag order.
    pub tenants: Vec<TenantOutcome>,
    /// Tenants whose work completed.
    pub completed: usize,
    /// Mean savings across tenants.
    pub mean_savings: f64,
    /// Mean posted price over the tenant-visible horizon.
    pub mean_price: Price,
    /// Peak posted price over the tenant-visible horizon.
    pub peak_price: Price,
    /// Slots simulated after warmup.
    pub slots: u64,
}

/// An endogenous market as a kernel price source: each slot, background
/// bidders arrive, then the market clears, and the posted price is
/// appended to the history tenants observe.
#[derive(Debug)]
struct ClosedLoopSource {
    market: SpotMarket,
    /// Geometric departures inside `SpotMarket::step`.
    market_rng: Rng,
    /// Background arrival process — a separate substream so tenant demand
    /// never shifts the background draws.
    bg_rng: Rng,
    arrivals: f64,
    slot_len: Hours,
    posted: Vec<Price>,
}

impl ClosedLoopSource {
    fn advance(&mut self) -> SlotReport {
        let n = self.bg_rng.poisson(self.arrivals);
        let (lo, hi) = (
            self.market.params().pi_min.as_f64(),
            self.market.params().pi_bar.as_f64(),
        );
        for _ in 0..n {
            let price = Price::new(self.bg_rng.range_f64(lo, hi));
            self.market.submit(BidRequest {
                price,
                kind: BidKind::OneTime,
                work: WorkModel::Geometric,
            });
        }
        let report = self.market.step(&mut self.market_rng);
        self.posted.push(report.price);
        report
    }

    fn warmup(&mut self, slots: usize) {
        for _ in 0..slots {
            let report = self.advance();
            self.market.recycle(report);
        }
    }

    /// The history a tenant may observe (every price posted so far).
    fn observed(&self) -> Result<SpotPriceHistory, EngineError> {
        SpotPriceHistory::new(self.slot_len, self.posted.clone()).map_err(|e| {
            EngineError::InvalidConfig { what: format!("observed history: {e}") }
        })
    }
}

impl PriceSource for ClosedLoopSource {
    type Quote = SlotReport;

    fn post(&mut self, _slot: u64, _demand: usize) -> Option<SlotReport> {
        Some(self.advance())
    }

    fn quote_events(&self, slot: u64, quote: &SlotReport, emit: &mut dyn FnMut(Event)) {
        emit(Event::PricePosted { slot, price: quote.price });
    }

    fn reclaim(&mut self, quote: SlotReport) {
        // Return the spent report's buffers to the market's arena, so the
        // closed loop steps without per-slot event allocation.
        self.market.recycle(quote);
    }
}

/// One strategy-driven tenant: re-resolves its strategy against the
/// observed history whenever it must (re-)bid, and tracks its bid through
/// the market's per-slot reports.
#[derive(Debug)]
struct TenantBidder {
    strategy: BiddingStrategy,
    job: JobSpec,
    on_demand: Price,
    tag: u32,
    slots_needed: u64,
    slots_run: u64,
    running: bool,
    bid_id: Option<BidId>,
    needs_submit: bool,
    resubmissions: u32,
    max_resubmissions: u32,
    interruptions: u32,
    completed: bool,
    /// Set when the strategy resolved to on-demand: charged in
    /// `before_slot`, reported done at the next `on_slot`.
    done_pending: bool,
}

impl TenantBidder {
    fn new(strategy: BiddingStrategy, cfg: &ClosedLoopConfig, tag: u32) -> Self {
        TenantBidder {
            strategy,
            job: cfg.job,
            on_demand: cfg.on_demand,
            tag,
            slots_needed: cfg.job.slots_needed(),
            slots_run: 0,
            running: false,
            bid_id: None,
            needs_submit: true,
            resubmissions: 0,
            max_resubmissions: cfg.max_resubmissions,
            interruptions: 0,
            completed: false,
            done_pending: false,
        }
    }

    /// Execution work still undone, given the slots run so far.
    fn remaining_work(&self, slot_len: Hours) -> Hours {
        (self.job.execution - slot_len * self.slots_run as f64).max(Hours::ZERO)
    }

    fn outcome(&self, cost: Cost) -> TenantOutcome {
        let od_cost = (self.on_demand * self.job.execution).as_f64();
        TenantOutcome {
            tenant: self.tag,
            strategy: self.strategy,
            completed: self.completed,
            spot_slots: self.slots_run,
            interruptions: self.interruptions,
            resubmissions: self.resubmissions,
            cost,
            savings: 1.0 - cost.as_f64() / od_cost,
        }
    }
}

impl TenantBidder {
    /// Acts on a resolved strategy decision: charges the on-demand path or
    /// submits the spot bid. Serial per tenant — this is where bid ids are
    /// assigned, so call order must be tenant order.
    fn apply_decision(
        &mut self,
        decision: BidDecision,
        slot: u64,
        source: &mut ClosedLoopSource,
        emit: &mut dyn FnMut(Event),
    ) {
        match decision {
            BidDecision::OnDemand { price } => {
                let work = self.remaining_work(source.slot_len);
                if work > Hours::ZERO {
                    emit(Event::Charged {
                        item: LineItem {
                            slot,
                            price,
                            duration: work,
                            kind: UsageKind::OnDemand,
                            tag: self.tag,
                        },
                    });
                }
                self.completed = true;
                self.done_pending = true;
                emit(Event::Completed { slot, tenant: self.tag });
            }
            BidDecision::Spot { price, persistent } => {
                let remaining = (self.slots_needed - self.slots_run).max(1) as u32;
                let id = source.market.submit(BidRequest {
                    price,
                    kind: if persistent { BidKind::Persistent } else { BidKind::OneTime },
                    work: WorkModel::FixedSlots(remaining),
                });
                self.bid_id = Some(id);
                emit(Event::BidSubmitted { slot, tenant: self.tag, price, persistent });
            }
        }
    }

    /// Advances the tenant one slot against the market's report. Event
    /// vectors are id-sorted (the market's determinism contract), so each
    /// membership test is a binary search, not a scan.
    fn slot_update(
        &mut self,
        slot: u64,
        report: &SlotReport,
        emit: &mut dyn FnMut(Event),
    ) -> DriverStatus {
        if self.done_pending {
            return DriverStatus::Done;
        }
        let Some(id) = self.bid_id else {
            return DriverStatus::Active;
        };
        let started = report.started.binary_search(&id).is_ok();
        let interrupted = report.interrupted.binary_search(&id).is_ok();
        let finished = report.finished.binary_search(&id).is_ok();
        let terminated = report.terminated.binary_search(&id).is_ok();
        let ran = started || (self.running && !interrupted && !terminated);
        if started {
            self.running = true;
            emit(Event::BidAccepted { slot, tenant: self.tag });
        }
        if interrupted {
            self.interruptions += 1;
            emit(Event::Interrupted { slot, tenant: self.tag });
        }
        if ran {
            // The provider charges running bids the posted price per slot
            // (§3.2); mirror the market's internal `charged` accrual in
            // this tenant's own ledger.
            self.slots_run += 1;
            emit(Event::Charged {
                item: LineItem {
                    slot,
                    price: report.price,
                    duration: self.job.slot,
                    kind: UsageKind::Spot,
                    tag: self.tag,
                },
            });
        }
        if interrupted || terminated || finished {
            self.running = false;
        }
        if finished {
            self.completed = true;
            emit(Event::Completed { slot, tenant: self.tag });
            return DriverStatus::Done;
        }
        if terminated {
            emit(Event::Rejected { slot, tenant: self.tag });
            self.bid_id = None;
            if self.resubmissions < self.max_resubmissions {
                self.resubmissions += 1;
                self.needs_submit = true;
            } else {
                return DriverStatus::Done;
            }
        }
        DriverStatus::Active
    }
}

/// Tenants per decision shard. Small enough that a partial last shard
/// doesn't idle workers, large enough that shard overhead amortizes.
const SHARD_SIZE: usize = 64;

/// Every tenant as one kernel driver, with sharded decision evaluation.
///
/// Strategy resolution (`BiddingStrategy::decide`) is the per-slot hot
/// spot at large N and is a pure function of the shared price history, so
/// the fleet fans it out across `spotbid-exec` workers in fixed
/// [`SHARD_SIZE`] shards and merges the decisions order-stably. Everything
/// with market-visible side effects — bid submission (which assigns
/// [`BidId`]s), event emission, report processing — stays serial in tenant
/// order, so the fleet is bit-identical to the legacy
/// one-driver-per-tenant loop at any `SPOTBID_THREADS`.
///
/// Each shard owns a reserved [`RngStreams`] substream (`2 + shard`; 0 and
/// 1 belong to the market and the background process). Current strategies
/// draw nothing from it — it exists so a future randomized strategy can
/// draw per-shard without perturbing streams 0/1 or the merge order.
struct TenantFleet {
    tenants: Vec<TenantBidder>,
    done: Vec<bool>,
    shard_rngs: Vec<Rng>,
    /// Scratch: indices of tenants that must (re-)bid this slot.
    needy: Vec<u32>,
}

impl TenantFleet {
    fn new(tenants: Vec<TenantBidder>, streams: &RngStreams) -> Self {
        let max_shards = tenants.len().div_ceil(SHARD_SIZE);
        let mut chain = streams.streams(2 + max_shards);
        let shard_rngs = chain.split_off(2);
        let done = vec![false; tenants.len()];
        TenantFleet { tenants, done, shard_rngs, needy: Vec::new() }
    }
}

impl JobDriver<ClosedLoopSource> for TenantFleet {
    fn demand(&self) -> usize {
        self.done.iter().filter(|&&d| !d).count()
    }

    fn before_slot(
        &mut self,
        slot: u64,
        source: &mut ClosedLoopSource,
        emit: &mut dyn FnMut(Event),
    ) -> Result<(), EngineError> {
        self.needy.clear();
        for (i, t) in self.tenants.iter_mut().enumerate() {
            if !self.done[i] && t.needs_submit && !t.done_pending {
                t.needs_submit = false;
                self.needy.push(i as u32);
            }
        }
        if self.needy.is_empty() {
            return Ok(());
        }
        // One history snapshot for the whole slot: `posted` only grows in
        // `post`, so every tenant would observe the same prices anyway.
        let history = source.observed()?;
        let inputs: Vec<(BiddingStrategy, JobSpec, Price)> = self
            .needy
            .iter()
            .map(|&i| {
                let t = &self.tenants[i as usize];
                (t.strategy, t.job, t.on_demand)
            })
            .collect();
        let shards = inputs.len().div_ceil(SHARD_SIZE);
        let shard_rngs = &self.shard_rngs;
        let decisions: Vec<Vec<Result<BidDecision, CoreError>>> =
            spotbid_exec::par_map(shards, |s| {
                let mut _rng = shard_rngs[s].clone(); // reserved, see above
                let lo = s * SHARD_SIZE;
                let hi = (lo + SHARD_SIZE).min(inputs.len());
                inputs[lo..hi]
                    .iter()
                    .map(|(strat, job, od)| strat.decide(&history, job, *od))
                    .collect()
            });
        // Serial, ordered apply: bid ids and events come out exactly as if
        // each tenant had decided in turn.
        let mut flat = decisions.into_iter().flatten();
        for k in 0..self.needy.len() {
            let i = self.needy[k] as usize;
            let decision = flat
                .next()
                .expect("one decision per needy tenant")
                .map_err(EngineError::Core)?;
            self.tenants[i].apply_decision(decision, slot, source, emit);
        }
        Ok(())
    }

    fn on_slot(
        &mut self,
        slot: u64,
        report: &SlotReport,
        emit: &mut dyn FnMut(Event),
    ) -> Result<DriverStatus, EngineError> {
        let mut all_done = true;
        for i in 0..self.tenants.len() {
            if self.done[i] {
                continue;
            }
            if self.tenants[i].slot_update(slot, report, emit) == DriverStatus::Done {
                self.done[i] = true;
            } else {
                all_done = false;
            }
        }
        if all_done {
            Ok(DriverStatus::Done)
        } else {
            Ok(DriverStatus::Active)
        }
    }
}

/// Runs one closed-loop session: warms the market up with background load,
/// then lets one tenant per strategy bid into it for `horizon_slots`.
/// Deterministic from `seed` (two [`RngStreams`] substreams: market
/// departures and background arrivals).
///
/// Tenants left incomplete at the horizon finish their remaining work on
/// demand (the §5.1 fallback), so every reported cost is for a completed
/// job and savings are comparable across tenant counts.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] for empty strategy lists, zero warmup or
/// horizon, or a non-finite arrival rate; [`EngineError::Core`] if a
/// strategy fails to resolve.
pub fn run_closed_loop(
    strategies: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
) -> Result<ClosedLoopReport, EngineError> {
    if strategies.is_empty() {
        return Err(EngineError::InvalidConfig { what: "no tenants".into() });
    }
    if cfg.warmup_slots == 0 || cfg.horizon_slots == 0 {
        return Err(EngineError::InvalidConfig {
            what: "warmup_slots and horizon_slots must be ≥ 1".into(),
        });
    }
    if !cfg.background_arrivals.is_finite() || cfg.background_arrivals < 0.0 {
        return Err(EngineError::InvalidConfig {
            what: format!("background_arrivals {} must be finite and ≥ 0", cfg.background_arrivals),
        });
    }
    cfg.job.validate().map_err(EngineError::Core)?;
    if cfg.job.slot != cfg.slot_len {
        return Err(EngineError::InvalidConfig {
            what: "job slot length must equal the market slot length".into(),
        });
    }

    let streams = RngStreams::new(seed);
    let mut source = ClosedLoopSource {
        market: SpotMarket::new(cfg.params, cfg.slot_len),
        market_rng: streams.stream(0),
        bg_rng: streams.stream(1),
        arrivals: cfg.background_arrivals,
        slot_len: cfg.slot_len,
        posted: Vec::new(),
    };
    source.warmup(cfg.warmup_slots);

    let tenants: Vec<TenantBidder> = strategies
        .iter()
        .enumerate()
        .map(|(i, s)| TenantBidder::new(*s, cfg, i as u32))
        .collect();
    let mut fleet = TenantFleet::new(tenants, &streams);
    let mut billing = BillingObserver::validated();
    {
        let mut kernel = Kernel::new(cfg.slot_len, source);
        kernel.run(&mut [&mut fleet], &mut [&mut billing], Some(cfg.horizon_slots as u64))?;
        source = kernel.into_source();
    }
    let tenants = fleet.tenants;
    let mut bill = billing.into_bill();

    // §5.1 fallback: finish incomplete tenants on demand so costs compare.
    for t in &tenants {
        if !t.completed {
            let work = t.remaining_work(cfg.slot_len);
            if work > Hours::ZERO {
                bill.try_charge_on_demand(
                    (cfg.warmup_slots + cfg.horizon_slots) as u64,
                    cfg.on_demand,
                    work,
                    t.tag,
                )?;
            }
        }
    }

    let outcomes: Vec<TenantOutcome> = tenants
        .iter()
        .map(|t| t.outcome(bill.total_for_tag(t.tag)))
        .collect();
    let visible = &source.posted[cfg.warmup_slots..];
    let mean_price = Price::new(
        visible.iter().map(|p| p.as_f64()).sum::<f64>() / visible.len().max(1) as f64,
    );
    let peak_price = visible
        .iter()
        .copied()
        .fold(Price::ZERO, |a, b| if b > a { b } else { a });
    Ok(ClosedLoopReport {
        completed: outcomes.iter().filter(|o| o.completed).count(),
        mean_savings: outcomes.iter().map(|o| o.savings).sum::<f64>() / outcomes.len() as f64,
        tenants: outcomes,
        mean_price,
        peak_price,
        slots: visible.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClosedLoopConfig {
        ClosedLoopConfig {
            params: MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap(),
            slot_len: Hours::from_minutes(5.0),
            on_demand: Price::new(0.35),
            job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
            warmup_slots: 100,
            horizon_slots: 400,
            background_arrivals: 3.0,
            max_resubmissions: 4,
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let strategies = [
            BiddingStrategy::OptimalPersistent,
            BiddingStrategy::Percentile(0.95),
            BiddingStrategy::FixedBid(Price::new(0.30)),
        ];
        let cfg = config();
        let a = run_closed_loop(&strategies, &cfg, 0xC105ED).unwrap();
        let b = run_closed_loop(&strategies, &cfg, 0xC105ED).unwrap();
        assert_eq!(a, b);
        let c = run_closed_loop(&strategies, &cfg, 0xC105ED + 1).unwrap();
        assert_ne!(a.mean_price, c.mean_price, "different seed, different market");
    }

    #[test]
    fn tenants_complete_and_save() {
        let strategies = [BiddingStrategy::FixedBid(Price::new(0.34)); 4];
        let cfg = config();
        let report = run_closed_loop(&strategies, &cfg, 7).unwrap();
        assert_eq!(report.tenants.len(), 4);
        // Every cost is finite and every tenant's job is accounted for:
        // completed on spot, or topped up on demand.
        for t in &report.tenants {
            assert!(t.cost.as_f64().is_finite() && t.cost.as_f64() > 0.0);
            assert!(t.savings <= 1.0);
        }
        // A near-π̄ persistent bid in this quiet market should complete.
        assert!(report.completed > 0, "{report:?}");
        assert!(report.mean_price > Price::ZERO);
        assert!(report.peak_price >= report.mean_price);
    }

    #[test]
    fn on_demand_strategy_charges_full_job() {
        let cfg = config();
        let report = run_closed_loop(&[BiddingStrategy::OnDemand], &cfg, 11).unwrap();
        let t = &report.tenants[0];
        assert!(t.completed);
        assert_eq!(t.spot_slots, 0);
        assert!((t.cost.as_f64() - 0.35).abs() < 1e-12, "od × 1h job");
        assert!(t.savings.abs() < 1e-12);
    }

    #[test]
    fn demand_moves_the_price() {
        // More tenants → more accepted demand → higher posted prices
        // (Eq. 3's price rises with L). Compare 1 vs 24 aggressive
        // persistent bidders on the same seed.
        let cfg = ClosedLoopConfig { background_arrivals: 1.0, ..config() };
        let lone = run_closed_loop(&[BiddingStrategy::FixedBid(Price::new(0.34))], &cfg, 99)
            .unwrap();
        let crowd_strats = vec![BiddingStrategy::FixedBid(Price::new(0.34)); 24];
        let crowd = run_closed_loop(&crowd_strats, &cfg, 99).unwrap();
        assert!(
            crowd.mean_price > lone.mean_price,
            "crowd {} vs lone {}",
            crowd.mean_price,
            lone.mean_price
        );
    }

    #[test]
    fn invalid_configs_are_refused() {
        let cfg = config();
        assert!(matches!(
            run_closed_loop(&[], &cfg, 1),
            Err(EngineError::InvalidConfig { .. })
        ));
        let bad = ClosedLoopConfig { warmup_slots: 0, ..cfg };
        assert!(run_closed_loop(&[BiddingStrategy::OnDemand], &bad, 1).is_err());
        let bad = ClosedLoopConfig { background_arrivals: f64::NAN, ..cfg };
        assert!(run_closed_loop(&[BiddingStrategy::OnDemand], &bad, 1).is_err());
        let bad = ClosedLoopConfig { slot_len: Hours::from_minutes(10.0), ..cfg };
        assert!(run_closed_loop(&[BiddingStrategy::OnDemand], &bad, 1).is_err());
    }
}
