//! # spotbid-engine
//!
//! The discrete-time simulation kernel beneath every slot loop in the
//! workspace. Before this crate existed the repository had three disjoint
//! drivers — `market::SpotMarket::step` (the provider-side Figure-2 state
//! machine), `client::runtime::run_job*` (per-job replay over a price
//! trace), and `mapred::spot::run_on_spot` (its own loop over elapsed
//! slots). They now share one substrate:
//!
//! - [`clock::SimClock`] — the slot counter every session advances;
//! - [`source::PriceSource`] — where each slot's market signal comes from
//!   (trace replay, a degraded [`source::MarketView`], or the live
//!   Section-4 equilibrium market);
//! - [`kernel::JobDriver`] — a per-tenant component advanced one slot at a
//!   time (single spot jobs, MapReduce clusters, closed-loop bidders);
//! - [`observer::Observer`] — pluggable hooks fed the append-only
//!   [`event::Event`] stream (billing ledger, event log);
//! - [`policy::BidPolicy`] — how a tenant turns observed prices into a
//!   bid; `spotbid_core::BiddingStrategy` plugs in directly.
//!
//! The client and MapReduce runtimes are thin adapters over this kernel
//! (bit-identical to their pre-kernel implementations — see the parity
//! tests in `tests/`), and [`closedloop`] adds the capability none of the
//! old loops had: N strategy-driven bidders submitting into one endogenous
//! market whose posted price responds to their bids.

#![warn(missing_docs)]

pub mod billing;
pub mod clock;
pub mod closedloop;
pub mod cluster;
pub mod event;
pub mod job_monitor;
pub mod kernel;
pub mod observer;
pub mod policy;
pub mod session;
pub mod single;
pub mod source;

pub use billing::{Bill, LineItem, UsageKind};
pub use clock::SimClock;
pub use closedloop::portfolio::{
    run_portfolio_loop, run_portfolio_loop_logged, run_portfolio_loop_with_stats,
    PortfolioFleetStats, PortfolioLoopConfig, PortfolioMarket, PortfolioReport,
    PortfolioTenantOutcome,
};
pub use closedloop::{
    run_closed_loop, run_closed_loop_logged, run_closed_loop_with_stats, ClosedLoopConfig,
    ClosedLoopReport, FleetStats, LoopFaults, TenantOutcome,
};
pub use event::Event;
pub use kernel::{DriverStatus, JobDriver, Kernel, StopReason};
pub use observer::{BillingObserver, EventLog, Observer};
pub use policy::BidPolicy;
pub use session::run_market;
pub use single::{
    run_job, run_job_resilient, run_job_with_fallback, JobOutcome, RecoveryPolicy, RunStatus,
};
pub use source::{MarketView, PriceSource, SlotPrice, ViewSource};

use std::fmt;

/// Errors produced by the simulation kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A job/strategy error from `spotbid-core`.
    Core(spotbid_core::CoreError),
    /// A pathological charge (NaN/negative price or duration) was refused
    /// by the billing ledger instead of silently corrupting the bill.
    Billing {
        /// Description of the refused charge.
        what: String,
    },
    /// Invalid kernel or session configuration.
    InvalidConfig {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "core error: {e}"),
            EngineError::Billing { what } => write!(f, "billing error: {what}"),
            EngineError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Billing { .. } | EngineError::InvalidConfig { .. } => None,
        }
    }
}

impl From<spotbid_core::CoreError> for EngineError {
    fn from(e: spotbid_core::CoreError) -> Self {
        EngineError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = EngineError::Core(spotbid_core::CoreError::InvalidJob { what: "x".into() });
        assert!(e.to_string().contains("core error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::Billing { what: "y".into() };
        assert!(e.to_string().contains("billing error"));
        assert!(std::error::Error::source(&e).is_none());
        let e = EngineError::InvalidConfig { what: "z".into() };
        assert!(e.to_string().contains("invalid config"));
    }
}
