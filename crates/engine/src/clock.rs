//! The simulation clock: a slot counter with a fixed slot length.
//!
//! Every session in the workspace advances time in pricing slots (five
//! minutes on EC2, Table 1's `t_k`). The clock is deliberately dumb — a
//! counter plus a conversion to wall-clock hours — so that every layer
//! agrees on what "slot `t`" means and determinism never depends on a
//! hidden time source.

use spotbid_market::units::Hours;

/// A discrete-time clock counting pricing slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    slot: u64,
    slot_len: Hours,
}

impl SimClock {
    /// A clock at slot 0 with the given slot length.
    pub fn new(slot_len: Hours) -> Self {
        SimClock { slot: 0, slot_len }
    }

    /// The current slot index (number of completed ticks).
    pub fn now(&self) -> u64 {
        self.slot
    }

    /// The slot length.
    pub fn slot_len(&self) -> Hours {
        self.slot_len
    }

    /// Wall-clock time elapsed: `slot × slot_len`.
    pub fn elapsed(&self) -> Hours {
        self.slot_len * self.slot as f64
    }

    /// Advances to the next slot.
    pub fn tick(&mut self) {
        self.slot += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_and_elapsed() {
        let mut c = SimClock::new(Hours::from_minutes(5.0));
        assert_eq!(c.now(), 0);
        assert_eq!(c.elapsed(), Hours::ZERO);
        c.tick();
        c.tick();
        assert_eq!(c.now(), 2);
        assert!((c.elapsed().as_minutes() - 10.0).abs() < 1e-12);
        assert!((c.slot_len().as_minutes() - 5.0).abs() < 1e-12);
    }
}
