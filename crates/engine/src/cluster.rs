//! Cluster sessions: two-instance-type price sources and the shared
//! per-slot billing helper for master/slave clusters.
//!
//! The §6 MapReduce deployment bids on two markets at once — one
//! never-interrupted master and `m` slaves on a cheaper instance type —
//! so its kernel sessions quote a price *pair* per slot ([`ClusterQuote`]).
//! [`cluster_slot_events`] is the one place a cluster slot turns into
//! billing events; it replaces the two near-identical `for t in
//! 0..slots_elapsed` loops that used to live in `spotbid_mapred::spot`
//! (spot billing and on-demand billing differed only in where the prices
//! came from and whether nodes could be down).

use crate::billing::{LineItem, UsageKind};
use crate::event::Event;
use crate::source::PriceSource;
use spotbid_market::units::{Hours, Price};
use spotbid_trace::SpotPriceHistory;

/// One slot's prices for a master/slave cluster. `None` means that
/// instance type has no quote this slot (trace gap — the node is treated
/// as unavailable and nothing is billed for it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterQuote {
    /// The master instance type's price, if quoted.
    pub master: Option<Price>,
    /// The slave instance type's price, if quoted.
    pub slave: Option<Price>,
}

/// Replays two price traces in lock-step, one per instance type; exhausts
/// at the shorter trace's end.
#[derive(Debug)]
pub struct DualTraceSource<'a> {
    master: &'a SpotPriceHistory,
    slave: &'a SpotPriceHistory,
    horizon: usize,
}

impl<'a> DualTraceSource<'a> {
    /// Replays `master` and `slave` from their first slots.
    pub fn new(master: &'a SpotPriceHistory, slave: &'a SpotPriceHistory) -> Self {
        let horizon = master.len().min(slave.len());
        DualTraceSource {
            master,
            slave,
            horizon,
        }
    }

    /// Number of slots before the shorter trace runs out.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

impl PriceSource for DualTraceSource<'_> {
    type Quote = ClusterQuote;

    fn post(&mut self, slot: u64, _demand: usize) -> Option<ClusterQuote> {
        let i = slot as usize;
        if i >= self.horizon {
            return None;
        }
        Some(ClusterQuote {
            master: self.master.price_at_slot(i),
            slave: self.slave.price_at_slot(i),
        })
    }

    fn quote_events(&self, slot: u64, quote: &ClusterQuote, emit: &mut dyn FnMut(Event)) {
        if let Some(price) = quote.master {
            emit(Event::PricePosted { slot, price });
        }
    }
}

/// Fixed on-demand prices for both instance types, quoted forever — the
/// source behind all-on-demand baseline runs.
#[derive(Debug, Clone, Copy)]
pub struct ConstantClusterSource {
    /// The master instance type's on-demand price.
    pub master: Price,
    /// The slave instance type's on-demand price.
    pub slave: Price,
}

impl PriceSource for ConstantClusterSource {
    type Quote = ClusterQuote;

    fn post(&mut self, _slot: u64, _demand: usize) -> Option<ClusterQuote> {
        Some(ClusterQuote {
            master: Some(self.master),
            slave: Some(self.slave),
        })
    }
}

/// Emits the billing events for one cluster slot: one line item for the
/// master if it is up (and priced), then one aggregated item for the
/// `slaves_up` slaves (billed at `slave_price × slaves_up`, matching the
/// paper's per-slot accounting of `m` identical instances).
///
/// Pass `master_price: None` when the master is down (or unpriced) this
/// slot; no master item is emitted. Same for the slaves via
/// `slaves_up == 0` or `slave_price: None`.
#[allow(clippy::too_many_arguments)]
pub fn cluster_slot_events(
    slot: u64,
    duration: Hours,
    master_price: Option<Price>,
    slave_price: Option<Price>,
    slaves_up: u32,
    kind: UsageKind,
    master_tag: u32,
    slave_tag: u32,
    emit: &mut dyn FnMut(Event),
) {
    if let Some(price) = master_price {
        emit(Event::Charged {
            item: LineItem {
                slot,
                price,
                duration,
                kind,
                tag: master_tag,
            },
        });
    }
    if slaves_up > 0 {
        if let Some(price) = slave_price {
            emit(Event::Charged {
                item: LineItem {
                    slot,
                    price: price * slaves_up as f64,
                    duration,
                    kind,
                    tag: slave_tag,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotbid_market::units::Hours;

    fn history(prices: &[f64]) -> SpotPriceHistory {
        SpotPriceHistory::new(
            Hours::from_minutes(5.0),
            prices.iter().copied().map(Price::new).collect(),
        )
        .unwrap()
    }

    #[test]
    fn dual_trace_exhausts_at_shorter() {
        let m = history(&[0.10, 0.11, 0.12]);
        let s = history(&[0.03, 0.04]);
        let mut src = DualTraceSource::new(&m, &s);
        assert_eq!(src.horizon(), 2);
        let q = src.post(0, 1).unwrap();
        assert_eq!(q.master, Some(Price::new(0.10)));
        assert_eq!(q.slave, Some(Price::new(0.03)));
        assert!(src.post(2, 1).is_none());
    }

    #[test]
    fn constant_source_never_exhausts() {
        let mut src = ConstantClusterSource {
            master: Price::new(0.266),
            slave: Price::new(0.84),
        };
        let q = src.post(1_000_000, 33).unwrap();
        assert_eq!(q.master, Some(Price::new(0.266)));
        assert_eq!(q.slave, Some(Price::new(0.84)));
    }

    #[test]
    fn slot_events_bill_master_then_aggregated_slaves() {
        let mut seen = Vec::new();
        cluster_slot_events(
            4,
            Hours::from_minutes(5.0),
            Some(Price::new(0.10)),
            Some(Price::new(0.03)),
            3,
            UsageKind::Spot,
            0,
            1,
            &mut |e| seen.push(e),
        );
        assert_eq!(seen.len(), 2);
        let Event::Charged { item } = seen[0] else {
            panic!("{:?}", seen[0])
        };
        assert_eq!((item.tag, item.price), (0, Price::new(0.10)));
        let Event::Charged { item } = seen[1] else {
            panic!("{:?}", seen[1])
        };
        assert_eq!(item.tag, 1);
        assert!(
            (item.price.as_f64() - 0.09).abs() < 1e-12,
            "3 slaves aggregated"
        );
    }

    #[test]
    fn slot_events_skip_down_nodes() {
        let mut seen = Vec::new();
        cluster_slot_events(
            0,
            Hours::from_minutes(5.0),
            None,
            Some(Price::new(0.03)),
            0,
            UsageKind::Spot,
            0,
            1,
            &mut |e| seen.push(e),
        );
        assert!(seen.is_empty(), "down master + no slaves → nothing billed");
    }
}
