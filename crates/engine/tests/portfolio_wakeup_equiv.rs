//! The portfolio wakeup-fleet equivalence wall: event-driven portfolio
//! fleet ≡ frozen `closedloop::portfolio::dense` oracle, bit for bit
//! (DESIGN.md §5j).
//!
//! The contract mirrors the single-market wall (`tests/wakeup_equiv.rs`),
//! lifted to M markets: identical `PortfolioReport`s (same costs down to
//! float accumulation order), identical `Event` streams (same order, same
//! slots, same per-market prices), at any thread count. The threshold
//! regimes are the bid-book quartet — uniform, clustered,
//! exact-bucket-boundary, out-of-range — driven through the portfolio
//! strategy shells so every member market's wakeup book sees hostile
//! thresholds, plus per-market fault plans and mixed
//! `Supply::Finite`/`Supply::Unbounded` memberships.
//!
//! The degenerate corner is held down twice: an M=1 wakeup portfolio
//! must reproduce `run_closed_loop` — which the parity wall in
//! `tests/portfolio.rs` checks event-for-event — and here its *wakeup
//! accounting* (slots, skips, wakeups) must match the single-market
//! fleet's too: same machinery, same wake sets, one market.

use std::collections::BTreeMap;

use spotbid_core::portfolio::PortfolioStrategy;
use spotbid_core::strategy::BiddingStrategy;
use spotbid_core::JobSpec;
use spotbid_engine::closedloop::portfolio::dense;
use spotbid_engine::{
    run_closed_loop_logged, run_portfolio_loop_logged, run_portfolio_loop_with_stats,
    ClosedLoopConfig, Event, LoopFaults, PortfolioLoopConfig, PortfolioMarket, PortfolioReport,
};
use spotbid_exec::with_threads;
use spotbid_market::units::{Hours, Price};
use spotbid_market::{MarketParams, ProviderPolicy, Supply};
use spotbid_numerics::rng::Rng;

const BUCKETS: f64 = 512.0;

fn params(i: usize) -> MarketParams {
    MarketParams::new(
        Price::new(0.35),
        Price::new(0.02 + 0.004 * i as f64),
        0.05,
        0.05,
    )
    .unwrap()
}

fn config(horizon_slots: usize) -> PortfolioLoopConfig {
    PortfolioLoopConfig {
        markets: (0..3)
            .map(|i| PortfolioMarket {
                name: format!("zone-{i}"),
                params: params(i),
                idio_arrivals: 1.5,
                supply: Supply::Unbounded,
            })
            .collect(),
        shared_arrivals: 1.5,
        slot_len: Hours::from_minutes(5.0),
        on_demand: Price::new(0.35),
        job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
        warmup_slots: 40,
        horizon_slots,
        max_resubmissions: 3,
    }
}

/// A threshold regime, as in the single-market wall: maps a uniform draw
/// to a fixed-bid price placed where the bucket classifier hurts most.
type PriceGen = fn(&MarketParams, &mut Rng) -> Price;

fn uniform_price(p: &MarketParams, rng: &mut Rng) -> Price {
    Price::new(rng.range_f64(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Clusters around a few focal prices — deep buckets, heavy boundary work.
fn clustered_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let focals = [0.05, 0.12, 0.175, 0.21, 0.34];
    let f = focals[(rng.range_f64(0.0, focals.len() as f64) as usize).min(focals.len() - 1)];
    let jitter = rng.range_f64(-0.004, 0.004);
    Price::new((f + jitter).clamp(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Exact bucket-boundary grid of the *first* market; the staggered floors
/// of the other members turn the same prices into off-grid thresholds
/// there, so both edge cases run in one sweep.
fn boundary_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let k = rng.range_f64(0.0, BUCKETS + 1.0).floor().min(BUCKETS);
    Price::new(p.pi_min.as_f64() + k * (p.spread().as_f64() / BUCKETS))
}

/// Out-of-range thresholds: below every floor (a bid that parks in its
/// book forever) and above the cap (always accepted immediately).
fn extreme_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let u = rng.range_f64(0.0, 1.0);
    if u < 0.4 {
        Price::new(rng.range_f64(0.0, p.pi_min.as_f64()))
    } else if u < 0.8 {
        Price::new(rng.range_f64(p.pi_bar.as_f64(), 2.0 * p.pi_bar.as_f64()))
    } else {
        uniform_price(p, rng)
    }
}

/// Regime-placed thresholds wrapped in every portfolio shell: single-leg
/// zone fallback, M-leg even splits, and spot/on-demand contracts, salted
/// with the adaptive bases so their decision paths ride along.
fn portfolio_strategies(n: usize, gen: PriceGen, seed: u64) -> Vec<PortfolioStrategy> {
    let p = params(0);
    let mut rng = Rng::seed_from_u64(seed ^ 0x57A7E61E5);
    (0..n)
        .map(|i| {
            let base = match i % 13 {
                3 => BiddingStrategy::OptimalPersistent,
                7 => BiddingStrategy::Percentile(0.90),
                9 => BiddingStrategy::OptimalOneTime,
                11 => BiddingStrategy::OnDemand,
                _ => BiddingStrategy::FixedBid(gen(&p, &mut rng)),
            };
            match i % 3 {
                0 => PortfolioStrategy::ZoneFallback { home: i % 3, base },
                1 => PortfolioStrategy::SplitEven { base },
                _ => PortfolioStrategy::Contract {
                    spot_share: 0.5 + (i % 5) as f64 * 0.1,
                    base,
                },
            }
        })
        .collect()
}

/// Core assertion: the wakeup portfolio fleet reproduces the dense oracle
/// bit for bit — same report and same event stream.
fn assert_equivalent(
    strats: &[PortfolioStrategy],
    cfg: &PortfolioLoopConfig,
    seed: u64,
    faults: Option<&[LoopFaults]>,
) -> (PortfolioReport, Vec<Event>) {
    let (wr, we) = run_portfolio_loop_logged(strats, cfg, seed, faults).unwrap();
    let (dr, de) = dense::run_portfolio_loop_logged(strats, cfg, seed, faults).unwrap();
    assert_eq!(wr, dr, "seed {seed}: reports diverged");
    assert_eq!(we.len(), de.len(), "seed {seed}: event counts diverged");
    for (k, (w, d)) in we.iter().zip(&de).enumerate() {
        assert_eq!(w, d, "seed {seed}: event {k} diverged");
    }
    (wr, we)
}

fn sweep(gen: PriceGen, seeds: &[u64]) {
    for &seed in seeds {
        let strats = portfolio_strategies(60, gen, seed);
        let cfg = config(200);
        let (report, _) = assert_equivalent(&strats, &cfg, seed, None);
        assert_eq!(report.tenants.len(), 60);
        assert_eq!(report.mean_price.len(), 3);
    }
}

#[test]
fn equivalent_under_uniform_thresholds() {
    sweep(uniform_price, &[1, 2, 0xDEAD]);
}

#[test]
fn equivalent_under_clustered_thresholds() {
    sweep(clustered_price, &[7, 0xC0FFEE]);
}

#[test]
fn equivalent_on_exact_bucket_boundaries() {
    sweep(boundary_price, &[11, 17]);
}

#[test]
fn equivalent_under_out_of_range_thresholds() {
    sweep(extreme_price, &[23, 31]);
}

#[test]
fn equivalent_under_per_market_faults() {
    // Independent randomized fault plans per member market: scattered
    // feed gaps plus reclamation outages (including back-to-back ones),
    // across all four regimes.
    let regimes: [PriceGen; 4] = [
        uniform_price,
        clustered_price,
        boundary_price,
        extreme_price,
    ];
    let mut any_interrupted = false;
    for (r, gen) in regimes.into_iter().enumerate() {
        let seed = 0xFA17 + r as u64;
        let cfg = config(160);
        let total = cfg.warmup_slots + cfg.horizon_slots;
        let faults: Vec<LoopFaults> = (0..cfg.markets.len())
            .map(|m| {
                let mut frng = Rng::seed_from_u64(seed ^ (0xFA151 + m as u64));
                LoopFaults {
                    gap: (0..total).map(|_| frng.chance(0.05)).collect(),
                    reclaim: (0..total).map(|_| frng.chance(0.10)).collect(),
                }
            })
            .collect();
        let strats = portfolio_strategies(48, gen, seed);
        let (report, _) = assert_equivalent(&strats, &cfg, seed, Some(&faults));
        any_interrupted |= report.tenants.iter().any(|t| t.interruptions > 0);
    }
    assert!(
        any_interrupted,
        "no reclamation ever bit across the regimes"
    );
}

#[test]
fn equivalent_with_mixed_finite_supply_members() {
    // One unbounded zone next to two finite boxes small enough to bind:
    // provider evictions park victims and restart them on slots no price
    // sweep predicts, in some markets but not others. The capacity-delta
    // arming (`SlotReport::evicted`) must keep the fleets bit-identical.
    let mut reclaims = 0u64;
    for (gen, seed) in [
        (uniform_price as PriceGen, 211u64),
        (clustered_price as PriceGen, 0xF177),
    ] {
        let mut cfg = config(160);
        cfg.markets[1].supply = Supply::Finite {
            capacity: 12,
            policy: ProviderPolicy::StaticSplit { reserved: 4 },
        };
        cfg.markets[2].supply = Supply::Finite {
            capacity: 40,
            policy: ProviderPolicy::UtilizationTracking { od_cap: 24 },
        };
        let strats = portfolio_strategies(60, gen, seed);
        let (report, _) = assert_equivalent(&strats, &cfg, seed, None);
        assert!(
            report.provider[0].is_none(),
            "unbounded zone grew a provider"
        );
        for m in [1, 2] {
            let p = report.provider[m].expect("finite member reports its provider");
            reclaims += p.reclaims;
        }
    }
    assert!(
        reclaims > 0,
        "capacity never bound: the wall proved nothing"
    );
}

#[test]
fn degenerate_single_market_wakeup_accounting_matches() {
    // M=1 is not a new simulator: the parity wall in `tests/portfolio.rs`
    // pins the degenerate report and event stream to `run_closed_loop`;
    // here the wakeup *accounting* must agree too — same processed
    // slots, same O(1) skips, same total wakeups as the single-market
    // fleet on the identical session.
    let single = ClosedLoopConfig {
        params: params(0),
        slot_len: Hours::from_minutes(5.0),
        on_demand: Price::new(0.35),
        job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
        warmup_slots: 60,
        horizon_slots: 240,
        background_arrivals: 3.0,
        max_resubmissions: 3,
        supply: Supply::Unbounded,
        od_arrivals: 0.0,
        od_departure: 0.0,
    };
    let pcfg = PortfolioLoopConfig::single(&single, "solo");
    let mut rng = Rng::seed_from_u64(0xDE6E);
    let bases: Vec<BiddingStrategy> = (0..80)
        .map(|i| match i % 13 {
            3 => BiddingStrategy::OptimalPersistent,
            9 => BiddingStrategy::OptimalOneTime,
            _ => BiddingStrategy::FixedBid(uniform_price(&single.params, &mut rng)),
        })
        .collect();
    let ports: Vec<PortfolioStrategy> = bases
        .iter()
        .map(|&base| PortfolioStrategy::ZoneFallback { home: 0, base })
        .collect();
    let (_, _, sstats) = run_closed_loop_logged(&bases, &single, 0xDE6E, None).unwrap();
    let (_, pstats) = run_portfolio_loop_with_stats(&ports, &pcfg, 0xDE6E).unwrap();
    assert_eq!(pstats.slots, sstats.slots, "processed-slot counts diverged");
    assert_eq!(
        pstats.skipped_slots, sstats.skipped_slots,
        "skip accounting diverged from the single-market fleet"
    );
    assert_eq!(pstats.woken, sstats.woken, "wakeup counts diverged");
    assert_eq!(pstats.swept.len(), 1);
    assert!(pstats.skipped_slots > 0, "a 240-slot tail should go quiet");
}

#[test]
fn digest_identical_at_1_and_4_threads_with_stats() {
    // Thread-invariance of the wakeup path including its accounting: the
    // wake sets themselves must not depend on the worker count.
    let strats = portfolio_strategies(200, clustered_price, 0x907F);
    let cfg = config(160);
    let one = with_threads(1, || {
        run_portfolio_loop_with_stats(&strats, &cfg, 0x907F).unwrap()
    });
    let four = with_threads(4, || {
        run_portfolio_loop_with_stats(&strats, &cfg, 0x907F).unwrap()
    });
    assert_eq!(one.0, four.0, "thread count leaked into the report");
    assert_eq!(one.1, four.1, "thread count leaked into the wakeup stats");
    assert_eq!(one.1.swept.len(), 3);
    assert!(one.1.woken > 0);
}

#[test]
fn skip_count_equals_dense_zero_activity_slots() {
    // Fault-free and unbounded, a skipped slot is exactly a dense-run
    // slot whose only events are the M price postings: every tenant
    // state change emits at least one event in its slot.
    for (gen, seed) in [
        (uniform_price as PriceGen, 21u64),
        (clustered_price as PriceGen, 22u64),
        (extreme_price as PriceGen, 23u64),
    ] {
        let strats = portfolio_strategies(50, gen, seed);
        let cfg = config(200);
        let (_, events) = assert_equivalent(&strats, &cfg, seed, None);
        let (_, stats) = run_portfolio_loop_with_stats(&strats, &cfg, seed).unwrap();
        let mut active_slots: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::PricePosted { .. } => None,
                Event::Charged { item } => Some(item.slot),
                Event::BidSubmitted { slot, .. }
                | Event::BidAccepted { slot, .. }
                | Event::Interrupted { slot, .. }
                | Event::Reclaimed { slot, .. }
                | Event::Rejected { slot, .. }
                | Event::Completed { slot, .. }
                | Event::FeedOutage { slot, .. } => Some(*slot),
            })
            .collect();
        active_slots.sort_unstable();
        active_slots.dedup();
        assert_eq!(
            stats.skipped_slots,
            stats.slots - active_slots.len() as u64,
            "seed {seed}: skip accounting diverged from the event stream"
        );
        assert!(
            stats.skipped_slots > 0,
            "seed {seed}: a 200-slot tail should go quiet"
        );
    }
}

/// Paired wake chains under mixed finite supply: a BTreeMap audit that
/// the ordering of per-slot events is reproducible at a second thread
/// count even when evictions dominate (the mixed-supply analog of the
/// thread-invariance digest above).
#[test]
fn mixed_supply_thread_invariant() {
    let mut cfg = config(120);
    cfg.markets[0].supply = Supply::Finite {
        capacity: 16,
        policy: ProviderPolicy::StaticSplit { reserved: 4 },
    };
    let strats = portfolio_strategies(96, uniform_price, 0x51AB);
    let one = with_threads(1, || {
        run_portfolio_loop_logged(&strats, &cfg, 0x51AB, None).unwrap()
    });
    let four = with_threads(4, || {
        run_portfolio_loop_logged(&strats, &cfg, 0x51AB, None).unwrap()
    });
    assert_eq!(one.0, four.0);
    assert_eq!(one.1, four.1);
    let mut per_slot: BTreeMap<u64, usize> = BTreeMap::new();
    for e in &one.1 {
        if let Event::PricePosted { slot, .. } = e {
            *per_slot.entry(*slot).or_default() += 1;
        }
    }
    // Every simulated slot posts exactly M prices, in market order.
    assert!(per_slot.values().all(|&m| m == cfg.markets.len()));
}
