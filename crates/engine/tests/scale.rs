//! Scale determinism: the closed loop at 10k–1M tenants must be a pure
//! function of its seed, independent of the worker count.
//!
//! The wakeup fleet parallelizes only the pure decision stage; bid ids,
//! events, and reports are produced serially in tenant order. These tests
//! hold that contract at the target populations: identical
//! `ClosedLoopReport`s — and identical digests of the full per-tenant
//! outcome stream — at 1 and 4 `spotbid-exec` workers, at 10k and 100k
//! tenants (and 1M — single-market and 2-market portfolio — behind
//! `SPOTBID_SCALE_FULL=1`), plus a 32-seed chaos
//! sweep under `spotbid-faults` schedules (feed gaps, capacity
//! reclamations) pinning the wakeup fleet to the frozen dense oracle.

use spotbid_core::strategy::BiddingStrategy;
use spotbid_core::JobSpec;
use spotbid_engine::closedloop::dense;
use spotbid_engine::{
    run_closed_loop, run_closed_loop_logged, ClosedLoopConfig, ClosedLoopReport, LoopFaults,
};
use spotbid_exec::with_threads;
use spotbid_faults::{FaultConfig, FaultSchedule};
use spotbid_market::units::{Hours, Price};
use spotbid_market::{MarketParams, ProviderPolicy, Supply};

/// A short-horizon 10k-tenant session: FixedBid-heavy (cheap to decide in
/// debug builds) with a sprinkling of history-fitting strategies so the
/// sharded decision stage does real work.
fn config() -> ClosedLoopConfig {
    ClosedLoopConfig {
        params: MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap(),
        slot_len: Hours::from_minutes(5.0),
        on_demand: Price::new(0.35),
        job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
        warmup_slots: 10,
        horizon_slots: 40,
        background_arrivals: 3.0,
        max_resubmissions: 2,
        supply: Supply::Unbounded,
        od_arrivals: 0.0,
        od_departure: 0.0,
    }
}

fn strategies(n: usize) -> Vec<BiddingStrategy> {
    (0..n)
        .map(|i| match i % 97 {
            0 => BiddingStrategy::OptimalPersistent,
            1 => BiddingStrategy::Percentile(0.90),
            _ => BiddingStrategy::FixedBid(Price::new(0.05 + (i % 13) as f64 * 0.023)),
        })
        .collect()
}

/// FNV-1a over every field of every tenant outcome plus the aggregate
/// price path — a digest of the full report, not just its summary.
fn digest(report: &ClosedLoopReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(report.completed as u64);
    eat(report.slots);
    eat(report.mean_savings.to_bits());
    eat(report.mean_price.as_f64().to_bits());
    eat(report.peak_price.as_f64().to_bits());
    for t in &report.tenants {
        eat(u64::from(t.tenant));
        eat(u64::from(t.completed));
        eat(t.spot_slots);
        eat(u64::from(t.interruptions));
        eat(u64::from(t.resubmissions));
        eat(t.cost.as_f64().to_bits());
        eat(t.savings.to_bits());
    }
    if let Some(p) = &report.provider {
        eat(u64::from(p.capacity));
        eat(p.slots);
        eat(p.spot_revenue.as_f64().to_bits());
        eat(p.od_revenue.as_f64().to_bits());
        eat(p.reclaims);
        eat(p.od_admissions);
        eat(p.od_rejections);
        eat(p.mean_utilization.to_bits());
        eat(p.peak_price.as_f64().to_bits());
    }
    h
}

#[test]
fn ten_k_tenants_identical_digests_at_1_and_4_threads() {
    let strategies = strategies(10_000);
    let cfg = config();
    let one = with_threads(1, || run_closed_loop(&strategies, &cfg, 0x5CA1E).unwrap());
    let four = with_threads(4, || run_closed_loop(&strategies, &cfg, 0x5CA1E).unwrap());
    assert_eq!(
        digest(&one),
        digest(&four),
        "thread count leaked into the result"
    );
    assert_eq!(one, four);
    assert_eq!(one.tenants.len(), 10_000);
    // The market actually did something at this scale.
    assert!(one.mean_price > Price::ZERO);
    assert!(one.tenants.iter().any(|t| t.spot_slots > 0));
}

#[test]
fn small_fleet_matches_itself_across_thread_counts() {
    // Sub-shard population (needy < SHARD_SIZE): the single-shard path
    // must be just as thread-invariant.
    let strategies = strategies(17);
    let cfg = config();
    let a = with_threads(1, || run_closed_loop(&strategies, &cfg, 42).unwrap());
    let b = with_threads(3, || run_closed_loop(&strategies, &cfg, 42).unwrap());
    assert_eq!(a, b);
}

#[test]
fn hundred_k_tenants_identical_digests_at_1_and_4_threads() {
    let strategies = strategies(100_000);
    let cfg = config();
    let one = with_threads(1, || run_closed_loop(&strategies, &cfg, 0x1000).unwrap());
    let four = with_threads(4, || run_closed_loop(&strategies, &cfg, 0x1000).unwrap());
    assert_eq!(
        digest(&one),
        digest(&four),
        "thread count leaked into the result"
    );
    assert_eq!(one, four);
    assert_eq!(one.tenants.len(), 100_000);
    assert!(one.tenants.iter().any(|t| t.spot_slots > 0));
}

/// CI-budgeted million-tenant smoke: run with `SPOTBID_SCALE_FULL=1`.
/// Quiet-slot dominated (low fixed bids under a crowded market), so the
/// wakeup fleet's skip path carries almost the whole horizon.
#[test]
fn million_tenants_smoke_behind_env_gate() {
    if std::env::var("SPOTBID_SCALE_FULL").ok().as_deref() != Some("1") {
        eprintln!("skipped: set SPOTBID_SCALE_FULL=1 to run the 1M smoke");
        return;
    }
    let strategies = vec![BiddingStrategy::FixedBid(Price::new(0.03)); 1_000_000];
    let cfg = ClosedLoopConfig {
        horizon_slots: 80,
        ..config()
    };
    let one = with_threads(1, || {
        run_closed_loop(&strategies, &cfg, 0x1_000_000).unwrap()
    });
    let four = with_threads(4, || {
        run_closed_loop(&strategies, &cfg, 0x1_000_000).unwrap()
    });
    assert_eq!(digest(&one), digest(&four));
    assert_eq!(one.tenants.len(), 1_000_000);
}

/// Nightly million-tenant portfolio smoke: run with `SPOTBID_SCALE_FULL=1`.
/// Split-even legs across two correlated markets, quiet-slot dominated
/// like the single-market smoke above — the §5j wakeup fleet must stay a
/// pure function of its seed at this population too.
#[test]
fn million_tenant_portfolio_smoke_behind_env_gate() {
    use spotbid_core::portfolio::PortfolioStrategy;
    use spotbid_engine::{run_portfolio_loop, PortfolioLoopConfig, PortfolioMarket};

    if std::env::var("SPOTBID_SCALE_FULL").ok().as_deref() != Some("1") {
        eprintln!("skipped: set SPOTBID_SCALE_FULL=1 to run the 1M portfolio smoke");
        return;
    }
    let strategies = vec![
        PortfolioStrategy::SplitEven {
            base: BiddingStrategy::FixedBid(Price::new(0.03)),
        };
        1_000_000
    ];
    let cfg = PortfolioLoopConfig {
        markets: (0..2)
            .map(|i| PortfolioMarket {
                name: format!("zone-{i}"),
                params: MarketParams::new(
                    Price::new(0.35),
                    Price::new(0.02 + 0.004 * i as f64),
                    0.05,
                    0.05,
                )
                .unwrap(),
                idio_arrivals: 2.0,
                supply: Supply::Unbounded,
            })
            .collect(),
        shared_arrivals: 1.0,
        slot_len: Hours::from_minutes(5.0),
        on_demand: Price::new(0.35),
        job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
        warmup_slots: 10,
        horizon_slots: 60,
        max_resubmissions: 2,
    };
    let one = with_threads(1, || {
        run_portfolio_loop(&strategies, &cfg, 0x1_000_000).unwrap()
    });
    let four = with_threads(4, || {
        run_portfolio_loop(&strategies, &cfg, 0x1_000_000).unwrap()
    });
    assert_eq!(one, four, "thread count leaked into the portfolio result");
    assert_eq!(one.tenants.len(), 1_000_000);
}

/// The finite-capacity variant of `config()`: a box small enough that
/// capacity binds at these populations, with an on-demand churn process
/// competing for the same servers.
fn finite_config() -> ClosedLoopConfig {
    ClosedLoopConfig {
        supply: Supply::Finite {
            capacity: 600,
            policy: ProviderPolicy::UtilizationTracking { od_cap: 200 },
        },
        od_arrivals: 4.0,
        od_departure: 0.15,
        ..config()
    }
}

/// Bids packed just under π̄, well above the 10k-tenant clearing price —
/// accepted demand far exceeds the box, so the eviction path runs hot.
fn aggressive_strategies(n: usize) -> Vec<BiddingStrategy> {
    (0..n)
        .map(|i| match i % 97 {
            0 => BiddingStrategy::OptimalPersistent,
            1 => BiddingStrategy::Percentile(0.90),
            _ => BiddingStrategy::FixedBid(Price::new(0.30 + (i % 13) as f64 * 0.004)),
        })
        .collect()
}

#[test]
fn finite_supply_ten_k_tenants_identical_digests_at_1_and_4_threads() {
    // The finite-capacity closed loop — provider evictions, on-demand
    // churn, clearing-price spikes — is just as much a pure function of
    // its seed as the unbounded loop, at any worker count.
    let strategies = aggressive_strategies(10_000);
    let cfg = finite_config();
    let one = with_threads(1, || run_closed_loop(&strategies, &cfg, 0x5CA1E).unwrap());
    let four = with_threads(4, || run_closed_loop(&strategies, &cfg, 0x5CA1E).unwrap());
    assert_eq!(
        digest(&one),
        digest(&four),
        "thread count leaked into the finite-supply result"
    );
    assert_eq!(one, four);
    let p = one.provider.as_ref().expect("finite run has a provider");
    assert!(p.reclaims > 0, "capacity never bound at 10k tenants");
    assert!(p.mean_utilization > 0.5, "the box sat idle: {p:?}");
}

#[test]
fn finite_supply_quiet_session_still_skips_slots() {
    // 100k low bidders under a finite box: the clearing price sits far
    // above every bid, nothing ever starts, and the capacity pass evicts
    // nobody — so the wakeup fleet must skip the tail in O(1) exactly as
    // it does unbounded. (This is the regression wall for the old
    // finite-supply unconditional re-arm, which woke every tenant every
    // slot and zeroed `skipped_slots` the moment supply went finite.)
    let strategies = vec![BiddingStrategy::FixedBid(Price::new(0.021)); 100_000];
    let cfg = ClosedLoopConfig {
        horizon_slots: 50,
        ..finite_config()
    };
    let (report, stats) =
        spotbid_engine::run_closed_loop_with_stats(&strategies, &cfg, 0x5C1E7, None).unwrap();
    assert_eq!(stats.slots, 50);
    assert!(
        stats.skipped_slots > 0,
        "a quiet finite-supply session must still skip slots: {stats:?}"
    );
    let p = report.provider.expect("finite run reports the provider");
    assert_eq!(p.reclaims, 0, "nothing ran, so nothing was evicted");
    assert_eq!(report.completed, 0);
}

/// 32-seed chaos sweep over the finite-capacity closed loop: fault
/// schedules layered on top of provider evictions and on-demand churn.
/// No panics, wakeup ≡ dense throughout, billing stays sane, and the
/// zero-fault schedule reproduces the clean (fault-free) baseline.
#[test]
fn chaos_sweep_finite_supply_wakeup_matches_dense() {
    let chaos = FaultConfig {
        gap: 0.06,
        reclamation: 0.08,
        ..FaultConfig::NONE
    };
    let cfg = ClosedLoopConfig {
        horizon_slots: 120,
        supply: Supply::Finite {
            capacity: 20,
            policy: ProviderPolicy::UtilizationTracking { od_cap: 12 },
        },
        od_arrivals: 1.0,
        od_departure: 0.2,
        ..config()
    };
    let total = cfg.warmup_slots + cfg.horizon_slots;
    let strategies = strategies(48);
    let od_cost = 0.35;
    let mut any_reclaimed = false;
    for seed in 0..32u64 {
        let schedule = FaultSchedule::generate(seed ^ 0xFA17, total, 1, &chaos);
        let faults = LoopFaults {
            gap: (0..total).map(|s| schedule.gap(s)).collect(),
            reclaim: (0..total).map(|s| schedule.reclaimed(s)).collect(),
        };
        let (wr, we, _) = run_closed_loop_logged(&strategies, &cfg, seed, Some(&faults)).unwrap();
        let (dr, de) =
            dense::run_closed_loop_logged(&strategies, &cfg, seed, Some(&faults)).unwrap();
        assert_eq!(digest(&wr), digest(&dr), "seed {seed}: digests diverged");
        assert_eq!(wr, dr, "seed {seed}: reports diverged");
        assert_eq!(we, de, "seed {seed}: event streams diverged");
        // Billing sanity: every cost is finite and non-negative, and the
        // reported savings are exactly `1 − cost/(π̄·Ts)`.
        for t in &wr.tenants {
            let cost = t.cost.as_f64();
            assert!(cost.is_finite() && cost >= 0.0, "{t:?}");
            assert!((t.savings - (1.0 - cost / od_cost)).abs() < 1e-12, "{t:?}");
        }
        any_reclaimed |= wr.provider.as_ref().is_some_and(|p| p.reclaims > 0);
    }
    assert!(
        any_reclaimed,
        "no provider eviction ever bit across 32 seeds"
    );

    // The all-clear schedule is not a different world: it must reproduce
    // the fault-free baseline bit for bit.
    let clear = LoopFaults {
        gap: vec![false; total],
        reclaim: vec![false; total],
    };
    let (zr, ze, _) = run_closed_loop_logged(&strategies, &cfg, 7, Some(&clear)).unwrap();
    let (cr, ce, _) = run_closed_loop_logged(&strategies, &cfg, 7, None).unwrap();
    assert_eq!(zr, cr, "zero-fault run diverged from the clean baseline");
    assert_eq!(ze, ce);
}

/// 32-seed chaos sweep: `spotbid-faults` schedules (feed gaps + capacity
/// reclamations) driven through both fleets; the wakeup fleet must stay
/// bit-identical to the frozen dense oracle under every plan.
#[test]
fn chaos_sweep_wakeup_matches_dense_under_faults() {
    let chaos = FaultConfig {
        gap: 0.06,
        reclamation: 0.08,
        ..FaultConfig::NONE
    };
    let cfg = ClosedLoopConfig {
        horizon_slots: 120,
        ..config()
    };
    let total = cfg.warmup_slots + cfg.horizon_slots;
    let strategies = strategies(48);
    let mut any_interrupted = false;
    for seed in 0..32u64 {
        let schedule = FaultSchedule::generate(seed ^ 0xFA17, total, 1, &chaos);
        let faults = LoopFaults {
            gap: (0..total).map(|s| schedule.gap(s)).collect(),
            reclaim: (0..total).map(|s| schedule.reclaimed(s)).collect(),
        };
        let (wr, we, _) = run_closed_loop_logged(&strategies, &cfg, seed, Some(&faults)).unwrap();
        let (dr, de) =
            dense::run_closed_loop_logged(&strategies, &cfg, seed, Some(&faults)).unwrap();
        assert_eq!(digest(&wr), digest(&dr), "seed {seed}: digests diverged");
        assert_eq!(wr, dr, "seed {seed}: reports diverged");
        assert_eq!(we, de, "seed {seed}: event streams diverged");
        any_interrupted |= wr.tenants.iter().any(|t| t.interruptions > 0);
    }
    assert!(any_interrupted, "no reclamation ever bit across 32 seeds");
}
