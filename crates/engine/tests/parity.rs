//! Bit-for-bit parity of the kernel-backed runtimes against frozen copies
//! of the pre-kernel implementations.
//!
//! The `legacy` module below is the pre-refactor `spotbid_client::runtime`
//! replay loop, copied verbatim (modulo the billing/monitor types now
//! living in this crate) and never to be edited again: it is the ground
//! truth the kernel inversion must reproduce exactly — same statuses, same
//! line items, same monitor timings — across randomized traces, fault
//! scripts, and job shapes. The market-session half asserts the same for
//! `run_market` against `SpotMarket::run` (same reports, same RNG draws),
//! and the adapter half pins `spotbid_client::runtime` to the engine.

use spotbid_core::{BidDecision, JobSpec};
use spotbid_engine::billing::Bill;
use spotbid_engine::{EngineError, MarketView, RecoveryPolicy, RunStatus};
use spotbid_market::units::{Hours, Price};
use spotbid_numerics::rng::Rng;
use spotbid_trace::SpotPriceHistory;

/// Frozen pre-kernel implementations. Do not modify: parity against this
/// module is the refactor's acceptance criterion.
mod legacy {
    use spotbid_core::{BidDecision, JobSpec};
    use spotbid_engine::billing::Bill;
    use spotbid_engine::job_monitor::{JobMonitor, JobState};
    use spotbid_engine::{EngineError, JobOutcome, MarketView, RecoveryPolicy, RunStatus};
    use spotbid_market::units::{Hours, Price};
    use spotbid_trace::SpotPriceHistory;

    pub fn run_job(
        future: &SpotPriceHistory,
        decision: BidDecision,
        job: &JobSpec,
        tag: u32,
    ) -> Result<JobOutcome, EngineError> {
        job.validate()?;
        match decision {
            BidDecision::OnDemand { price } => {
                let mut bill = Bill::new();
                bill.charge_on_demand(0, price, job.execution, tag);
                Ok(JobOutcome {
                    status: RunStatus::OnDemand,
                    completion_time: job.execution,
                    running_time: job.execution,
                    idle_time: Hours::ZERO,
                    interruptions: 0,
                    cost: bill.total(),
                    bill,
                    bid: None,
                    remaining_work: Hours::ZERO,
                    reclamations: 0,
                    feed_outages: 0,
                })
            }
            BidDecision::Spot { price, persistent } => {
                run_spot(future, price, persistent, job, tag)
            }
        }
    }

    fn run_spot(
        future: &SpotPriceHistory,
        bid: Price,
        persistent: bool,
        job: &JobSpec,
        tag: u32,
    ) -> Result<JobOutcome, EngineError> {
        let mut monitor = JobMonitor::new(*job);
        let mut bill = Bill::new();
        let mut status = RunStatus::HistoryExhausted;
        for (slot, &spot) in future.prices().iter().enumerate() {
            let accepted = bid >= spot;
            let started = monitor.state() != JobState::Waiting;
            if !accepted && !persistent && started {
                monitor.advance(false);
                status = RunStatus::TerminatedEarly;
                break;
            }
            if !accepted && !persistent && !started {
                status = RunStatus::TerminatedEarly;
                break;
            }
            let event = monitor.advance(accepted);
            if event.used > Hours::ZERO {
                bill.charge_spot(slot as u64, spot, event.used, tag);
            }
            if event.finished {
                status = RunStatus::Completed;
                break;
            }
        }
        Ok(JobOutcome {
            status,
            completion_time: monitor.elapsed(),
            running_time: monitor.running_time(),
            idle_time: monitor.idle_time() + monitor.waiting_time(),
            interruptions: monitor.interruptions(),
            cost: bill.total(),
            bill,
            bid: Some(bid),
            remaining_work: monitor.remaining_work(),
            reclamations: 0,
            feed_outages: 0,
        })
    }

    pub fn run_job_with_fallback(
        future: &SpotPriceHistory,
        decision: BidDecision,
        job: &JobSpec,
        tag: u32,
        on_demand: Price,
    ) -> Result<JobOutcome, EngineError> {
        let mut out = run_job(future, decision, job, tag)?;
        if out.completed() {
            return Ok(out);
        }
        let started = out.running_time > Hours::ZERO;
        let fallback_work = out.remaining_work + if started { job.recovery } else { Hours::ZERO };
        out.bill
            .charge_on_demand(future.len() as u64, on_demand, fallback_work, tag);
        out.status = RunStatus::CompletedWithFallback;
        out.completion_time += fallback_work;
        out.running_time += fallback_work;
        out.cost = out.bill.total();
        out.remaining_work = Hours::ZERO;
        Ok(out)
    }

    pub fn run_job_resilient<M: MarketView>(
        view: &M,
        decision: BidDecision,
        job: &JobSpec,
        tag: u32,
        policy: &RecoveryPolicy,
    ) -> Result<JobOutcome, EngineError> {
        job.validate()?;
        let (bid, persistent) = match decision {
            BidDecision::OnDemand { price } => {
                let mut bill = Bill::new();
                bill.try_charge_on_demand(0, price, job.execution, tag)?;
                return Ok(JobOutcome {
                    status: RunStatus::OnDemand,
                    completion_time: job.execution,
                    running_time: job.execution,
                    idle_time: Hours::ZERO,
                    interruptions: 0,
                    cost: bill.total(),
                    bill,
                    bid: None,
                    remaining_work: Hours::ZERO,
                    reclamations: 0,
                    feed_outages: 0,
                });
            }
            BidDecision::Spot { price, persistent } => (price, persistent),
        };
        let mut monitor = JobMonitor::new(*job);
        let mut bill = Bill::new();
        let mut status = RunStatus::HistoryExhausted;
        let mut reclamations = 0u32;
        let mut feed_outages = 0u32;
        let mut consecutive_outages = 0u32;
        for slot in 0..view.len() {
            let truth = view.true_price(slot);
            let observed = view.observed_price(slot);
            let reclaimed = view.reclaimed(slot);
            if observed.is_none() {
                feed_outages += 1;
                consecutive_outages += 1;
                if consecutive_outages > policy.max_feed_outage_slots {
                    if policy.on_demand_fallback.is_none() {
                        status = RunStatus::FeedLost;
                    }
                    break;
                }
            } else {
                consecutive_outages = 0;
            }
            let started = monitor.state() != JobState::Waiting;
            if reclaimed && monitor.state() == JobState::Running {
                reclamations += 1;
            }
            let provider_ok = bid >= truth && !reclaimed;
            let accepted = if persistent {
                provider_ok && observed.is_none_or(|o| bid >= o)
            } else {
                provider_ok
            };
            if !accepted && !persistent && started {
                monitor.advance(false);
                status = RunStatus::TerminatedEarly;
                break;
            }
            if !accepted && !persistent && !started {
                status = RunStatus::TerminatedEarly;
                break;
            }
            let event = monitor.advance(accepted);
            if event.used > Hours::ZERO {
                bill.try_charge_spot(slot as u64, truth, event.used, tag)?;
            }
            if event.finished {
                status = RunStatus::Completed;
                break;
            }
            if policy.on_demand_fallback.is_some() && reclamations > policy.max_reclaims {
                break;
            }
        }
        let mut out = JobOutcome {
            status,
            completion_time: monitor.elapsed(),
            running_time: monitor.running_time(),
            idle_time: monitor.idle_time() + monitor.waiting_time(),
            interruptions: monitor.interruptions(),
            cost: bill.total(),
            bill,
            bid: Some(bid),
            remaining_work: monitor.remaining_work(),
            reclamations,
            feed_outages,
        };
        if !out.completed() && out.status != RunStatus::FeedLost {
            if let Some(od) = policy.on_demand_fallback {
                let started = out.running_time > Hours::ZERO;
                let fallback_work =
                    out.remaining_work + if started { job.recovery } else { Hours::ZERO };
                out.bill
                    .try_charge_on_demand(view.len() as u64, od, fallback_work, tag)?;
                out.status = RunStatus::DegradedToOnDemand;
                out.completion_time += fallback_work;
                out.running_time += fallback_work;
                out.cost = out.bill.total();
                out.remaining_work = Hours::ZERO;
            }
        }
        Ok(out)
    }
}

/// A scripted faulty market: randomized outages, reclamations, and
/// observation/truth divergence.
struct ScriptedView {
    truth: Vec<Price>,
    observed: Vec<Option<Price>>,
    reclaim: Vec<bool>,
}

impl MarketView for ScriptedView {
    fn len(&self) -> usize {
        self.truth.len()
    }
    fn observed_price(&self, slot: usize) -> Option<Price> {
        self.observed[slot]
    }
    fn true_price(&self, slot: usize) -> Price {
        self.truth[slot]
    }
    fn reclaimed(&self, slot: usize) -> bool {
        self.reclaim[slot]
    }
}

/// A random spot trace around a 0.10 bid: mostly cheap slots with
/// occasional spikes, so every status class gets exercised.
fn random_prices(rng: &mut Rng, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| {
            if rng.chance(0.2) {
                rng.range_f64(0.11, 0.50) // spike above the bid
            } else {
                rng.range_f64(0.01, 0.10)
            }
        })
        .collect()
}

fn history(prices: &[f64]) -> SpotPriceHistory {
    SpotPriceHistory::new(
        Hours::from_minutes(5.0),
        prices.iter().copied().map(Price::new).collect(),
    )
    .unwrap()
}

fn random_view(rng: &mut Rng, len: usize) -> ScriptedView {
    let truth = random_prices(rng, len);
    let observed = truth
        .iter()
        .map(|&p| {
            if rng.chance(0.15) {
                None // feed outage
            } else if rng.chance(0.1) {
                Some(Price::new(rng.range_f64(0.01, 0.50))) // stale/diverged
            } else {
                Some(Price::new(p))
            }
        })
        .collect();
    let reclaim = (0..len).map(|_| rng.chance(0.05)).collect();
    ScriptedView {
        truth: truth.into_iter().map(Price::new).collect(),
        observed,
        reclaim,
    }
}

fn job_shapes() -> Vec<JobSpec> {
    vec![
        JobSpec::builder(0.25).recovery_secs(30.0).build().unwrap(),
        JobSpec::builder(1.0).recovery_secs(120.0).build().unwrap(),
        JobSpec::builder(0.1).build().unwrap(),
        JobSpec::builder(3.0)
            .recovery_secs(300.0)
            .overhead_secs(60.0)
            .build()
            .unwrap(),
    ]
}

fn decisions() -> Vec<BidDecision> {
    vec![
        BidDecision::Spot {
            price: Price::new(0.10),
            persistent: true,
        },
        BidDecision::Spot {
            price: Price::new(0.10),
            persistent: false,
        },
        BidDecision::Spot {
            price: Price::new(0.02),
            persistent: true,
        },
        BidDecision::OnDemand {
            price: Price::new(0.35),
        },
    ]
}

#[test]
fn run_job_matches_legacy_on_random_traces() {
    let mut statuses = std::collections::BTreeSet::new();
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from_u64(0xFACE ^ seed);
        let h = history(&random_prices(&mut rng, 80));
        for job in &job_shapes() {
            for &decision in &decisions() {
                let new = spotbid_engine::run_job(&h, decision, job, 3).unwrap();
                let old = legacy::run_job(&h, decision, job, 3).unwrap();
                assert_eq!(new, old, "seed {seed}, job {job:?}, {decision:?}");
                statuses.insert(format!("{:?}", new.status));
            }
        }
    }
    // The sweep must actually exercise every non-fault status class.
    for s in [
        "Completed",
        "TerminatedEarly",
        "HistoryExhausted",
        "OnDemand",
    ] {
        assert!(statuses.contains(s), "sweep never produced {s}");
    }
}

#[test]
fn run_job_with_fallback_matches_legacy() {
    for seed in 0..25u64 {
        let mut rng = Rng::seed_from_u64(0xBEEF ^ seed);
        let h = history(&random_prices(&mut rng, 30));
        let od = Price::new(0.35);
        for job in &job_shapes() {
            for &decision in &decisions() {
                let new = spotbid_engine::run_job_with_fallback(&h, decision, job, 0, od).unwrap();
                let old = legacy::run_job_with_fallback(&h, decision, job, 0, od).unwrap();
                assert_eq!(new, old, "seed {seed}, job {job:?}, {decision:?}");
            }
        }
    }
}

#[test]
fn run_job_resilient_matches_legacy_on_random_fault_scripts() {
    let policies = [
        RecoveryPolicy::default(),
        RecoveryPolicy {
            max_feed_outage_slots: 1,
            max_reclaims: 0,
            on_demand_fallback: Some(Price::new(0.35)),
        },
        RecoveryPolicy {
            max_feed_outage_slots: 0,
            max_reclaims: 2,
            on_demand_fallback: None,
        },
    ];
    let mut statuses = std::collections::BTreeSet::new();
    for seed in 0..40u64 {
        let mut rng = Rng::seed_from_u64(0xD00D ^ seed);
        let view = random_view(&mut rng, 60);
        for job in &job_shapes() {
            for &decision in &decisions() {
                for policy in &policies {
                    let new =
                        spotbid_engine::run_job_resilient(&view, decision, job, 1, policy).unwrap();
                    let old = legacy::run_job_resilient(&view, decision, job, 1, policy).unwrap();
                    assert_eq!(
                        new, old,
                        "seed {seed}, job {job:?}, {decision:?}, {policy:?}"
                    );
                    statuses.insert(format!("{:?}", new.status));
                }
            }
        }
    }
    for s in [
        "Completed",
        "FeedLost",
        "DegradedToOnDemand",
        "TerminatedEarly",
    ] {
        assert!(statuses.contains(s), "fault sweep never produced {s}");
    }
}

#[test]
fn resilient_error_parity_on_pathological_views() {
    // A negative true price is accepted (any bid beats it) and must be
    // refused by validated billing in both implementations.
    let mut view = ScriptedView {
        truth: vec![Price::new(0.03); 4],
        observed: vec![Some(Price::new(0.03)); 4],
        reclaim: vec![false; 4],
    };
    view.truth[1] = Price::new(-0.5);
    let job = JobSpec::builder(0.25).build().unwrap();
    let decision = BidDecision::Spot {
        price: Price::new(0.10),
        persistent: true,
    };
    let new =
        spotbid_engine::run_job_resilient(&view, decision, &job, 0, &RecoveryPolicy::default());
    let old = legacy::run_job_resilient(&view, decision, &job, 0, &RecoveryPolicy::default());
    assert!(matches!(new, Err(EngineError::Billing { .. })), "{new:?}");
    match (new, old) {
        (Err(e_new), Err(e_old)) => assert_eq!(e_new.to_string(), e_old.to_string()),
        (a, b) => panic!("divergent results: {a:?} vs {b:?}"),
    }
}

#[test]
fn market_session_matches_plain_run_on_random_books() {
    use spotbid_market::params::MarketParams;
    use spotbid_market::sim::{BidKind, BidRequest, SpotMarket, WorkModel};

    for seed in 0..20u64 {
        let params = MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.02).unwrap();
        let mut plain_market = SpotMarket::new(params, Hours::from_minutes(5.0));
        let mut kernel_market = SpotMarket::new(params, Hours::from_minutes(5.0));
        let mut book_rng = Rng::seed_from_u64(0xABCD ^ seed);
        for _ in 0..book_rng.poisson(6.0) + 1 {
            let request = BidRequest {
                price: Price::new(book_rng.range_f64(0.02, 0.35)),
                kind: if book_rng.chance(0.5) {
                    BidKind::Persistent
                } else {
                    BidKind::OneTime
                },
                work: if book_rng.chance(0.5) {
                    WorkModel::Geometric
                } else {
                    WorkModel::FixedSlots(book_rng.poisson(4.0) as u32 + 1)
                },
            };
            plain_market.submit(request);
            kernel_market.submit(request);
        }
        let mut rng_plain = Rng::seed_from_u64(seed);
        let mut rng_kernel = Rng::seed_from_u64(seed);
        let plain = plain_market.run(120, &mut rng_plain);
        let kernel =
            spotbid_engine::run_market(&mut kernel_market, 120, &mut rng_kernel, &mut []).unwrap();
        assert_eq!(plain, kernel, "seed {seed}");
        assert_eq!(plain_market.records(), kernel_market.records());
        assert_eq!(rng_plain.next_u64(), rng_kernel.next_u64(), "RNG diverged");
    }
}

#[test]
fn client_adapters_delegate_to_engine() {
    // The client crate's public runtime is now a shim; its results must be
    // the engine's results, type-for-type.
    let mut rng = Rng::seed_from_u64(99);
    let h = history(&random_prices(&mut rng, 50));
    let job = JobSpec::builder(0.5).recovery_secs(60.0).build().unwrap();
    let decision = BidDecision::Spot {
        price: Price::new(0.10),
        persistent: true,
    };
    let via_client = spotbid_client::runtime::run_job(&h, decision, &job, 0).unwrap();
    let via_engine = spotbid_engine::run_job(&h, decision, &job, 0).unwrap();
    assert_eq!(via_client, via_engine);
    let via_client = spotbid_client::runtime::run_job_resilient(
        &h,
        decision,
        &job,
        0,
        &RecoveryPolicy::default(),
    )
    .unwrap();
    let via_engine =
        spotbid_engine::run_job_resilient(&h, decision, &job, 0, &RecoveryPolicy::default())
            .unwrap();
    assert_eq!(via_client, via_engine);
}

#[test]
fn zero_length_histories_are_benign() {
    // Both implementations treat an exhausted-from-the-start trace the
    // same way (no charge, HistoryExhausted) — the kernel stops on source
    // exhaustion before any driver hook runs.
    let h = history(&[0.05]);
    let short = h.slice(0, 0);
    // SpotPriceHistory refuses empty series at construction; slicing to
    // zero is the only way to observe the boundary, and it errors too.
    assert!(short.is_err());
    let job = JobSpec::builder(0.5).build().unwrap();
    let decision = BidDecision::Spot {
        price: Price::new(0.10),
        persistent: true,
    };
    let out = spotbid_engine::run_job(&h, decision, &job, 0).unwrap();
    let old = legacy::run_job(&h, decision, &job, 0).unwrap();
    assert_eq!(out, old);
    assert_eq!(out.status, RunStatus::HistoryExhausted);
}

#[test]
fn engine_bill_type_is_client_bill_type() {
    // One ledger type across layers: a Bill built by the engine is a Bill
    // the client hourly-billing rules accept (type identity, not mere
    // structural equality).
    let mut b: spotbid_client::billing::Bill = Bill::new();
    b.charge_spot(0, Price::new(0.05), Hours::from_minutes(5.0), 0);
    assert_eq!(b.items().len(), 1);
}
