//! The multi-market parity wall (DESIGN.md §5h).
//!
//! A one-market portfolio is not a new simulator — it is the *same*
//! simulator: `run_portfolio_loop` with M=1, a zero shared shock, and
//! [`PortfolioStrategy::ZoneFallback`] must reproduce the single-market
//! `run_closed_loop` path bit-for-bit — same per-tenant outcomes, same
//! aggregate report, same full event stream, clean and under fault
//! injection. That parity is what lets the M>1 code paths inherit the
//! single-market wall's trust.
//!
//! The second half of the contract: a genuinely multi-market portfolio
//! session is a pure function of its seed at any `SPOTBID_THREADS` —
//! identical full-report digests at 1 and 4 workers.

use spotbid_core::portfolio::PortfolioStrategy;
use spotbid_core::strategy::BiddingStrategy;
use spotbid_core::JobSpec;
use spotbid_engine::{
    run_closed_loop_logged, run_portfolio_loop, run_portfolio_loop_logged, ClosedLoopConfig,
    LoopFaults, PortfolioLoopConfig, PortfolioMarket, PortfolioReport,
};
use spotbid_exec::with_threads;
use spotbid_market::units::{Hours, Price};
use spotbid_market::{MarketParams, Supply};

fn single_config() -> ClosedLoopConfig {
    ClosedLoopConfig {
        params: MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap(),
        slot_len: Hours::from_minutes(5.0),
        on_demand: Price::new(0.35),
        job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
        warmup_slots: 60,
        horizon_slots: 240,
        background_arrivals: 3.0,
        max_resubmissions: 3,
        supply: Supply::Unbounded,
        od_arrivals: 0.0,
        od_departure: 0.0,
    }
}

/// A mixed fleet crossing the 64-tenant shard boundary, with every base
/// strategy family represented (history-fitting, percentile, fixed-ladder,
/// one-time, on-demand).
fn base_strategies(n: usize) -> Vec<BiddingStrategy> {
    (0..n)
        .map(|i| match i % 7 {
            0 => BiddingStrategy::OptimalPersistent,
            1 => BiddingStrategy::Percentile(0.90),
            2 => BiddingStrategy::OptimalOneTime,
            3 => BiddingStrategy::OnDemand,
            _ => BiddingStrategy::FixedBid(Price::new(0.05 + (i % 13) as f64 * 0.023)),
        })
        .collect()
}

/// Field-for-field comparison of a degenerate portfolio report against the
/// single-market report it must reproduce. Strategy enums differ in type,
/// so `PartialEq` on the whole struct is unavailable — everything else is
/// compared exactly (bit equality for the floats).
fn assert_single_market_parity(
    p: &PortfolioReport,
    s: &spotbid_engine::ClosedLoopReport,
    what: &str,
) {
    assert_eq!(p.tenants.len(), s.tenants.len(), "{what}: tenant count");
    for (pt, st) in p.tenants.iter().zip(&s.tenants) {
        assert_eq!(pt.tenant, st.tenant, "{what}: tag");
        assert_eq!(
            pt.completed, st.completed,
            "{what}: completed {}",
            pt.tenant
        );
        assert_eq!(
            pt.spot_slots, st.spot_slots,
            "{what}: spot_slots {}",
            pt.tenant
        );
        assert_eq!(
            pt.interruptions, st.interruptions,
            "{what}: interruptions {}",
            pt.tenant
        );
        assert_eq!(
            pt.resubmissions, st.resubmissions,
            "{what}: resubmissions {}",
            pt.tenant
        );
        assert_eq!(pt.cost, st.cost, "{what}: cost {}", pt.tenant);
        assert_eq!(
            pt.savings.to_bits(),
            st.savings.to_bits(),
            "{what}: savings {}",
            pt.tenant
        );
    }
    assert_eq!(p.completed, s.completed, "{what}: completed count");
    assert_eq!(
        p.mean_savings.to_bits(),
        s.mean_savings.to_bits(),
        "{what}: mean savings"
    );
    assert_eq!(p.mean_price, vec![s.mean_price], "{what}: mean price");
    assert_eq!(p.peak_price, vec![s.peak_price], "{what}: peak price");
    assert_eq!(p.slots, s.slots, "{what}: slots");
}

/// FNV-1a over every field of every portfolio outcome plus the per-market
/// price paths — the full-report digest for thread-invariance checks.
fn digest(report: &PortfolioReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(report.completed as u64);
    eat(report.slots);
    eat(report.mean_savings.to_bits());
    for p in &report.mean_price {
        eat(p.as_f64().to_bits());
    }
    for p in &report.peak_price {
        eat(p.as_f64().to_bits());
    }
    for t in &report.tenants {
        eat(u64::from(t.tenant));
        eat(u64::from(t.completed));
        eat(t.spot_slots);
        eat(u64::from(t.interruptions));
        eat(u64::from(t.resubmissions));
        eat(t.cost.as_f64().to_bits());
        eat(t.savings.to_bits());
    }
    h
}

#[test]
fn degenerate_portfolio_matches_single_market_loop() {
    let cfg = single_config();
    let pcfg = PortfolioLoopConfig::single(&cfg, "solo");
    let bases = base_strategies(130);
    let ports: Vec<PortfolioStrategy> = bases
        .iter()
        .map(|&base| PortfolioStrategy::ZoneFallback { home: 0, base })
        .collect();
    for seed in [0xC105ED, 0xBEEF, 7] {
        let (sr, se, _) = run_closed_loop_logged(&bases, &cfg, seed, None).unwrap();
        let (pr, pe) = run_portfolio_loop_logged(&ports, &pcfg, seed, None).unwrap();
        assert_single_market_parity(&pr, &sr, &format!("seed {seed}"));
        assert_eq!(pe, se, "seed {seed}: event streams diverged");
    }
}

#[test]
fn degenerate_portfolio_matches_single_market_loop_under_faults() {
    let cfg = single_config();
    let pcfg = PortfolioLoopConfig::single(&cfg, "solo");
    let bases = base_strategies(72);
    let ports: Vec<PortfolioStrategy> = bases
        .iter()
        .map(|&base| PortfolioStrategy::ZoneFallback { home: 0, base })
        .collect();
    let total = cfg.warmup_slots + cfg.horizon_slots;
    let mut faults = LoopFaults {
        gap: vec![false; total],
        reclaim: vec![false; total],
    };
    for s in (0..total).step_by(17) {
        faults.gap[s] = true;
    }
    for s in ((cfg.warmup_slots + 3)..total).step_by(4) {
        faults.reclaim[s] = true;
    }
    let (sr, se, _) = run_closed_loop_logged(&bases, &cfg, 0xFA17, Some(&faults)).unwrap();
    let (pr, pe) =
        run_portfolio_loop_logged(&ports, &pcfg, 0xFA17, Some(std::slice::from_ref(&faults)))
            .unwrap();
    assert_single_market_parity(&pr, &sr, "faulted");
    assert_eq!(pe, se, "faulted event streams diverged");
    // The schedule actually bit: reclamations interrupted somebody.
    assert!(
        pr.tenants.iter().any(|t| t.interruptions > 0),
        "no reclamation ever bit: {pr:?}"
    );
}

fn multi_config() -> PortfolioLoopConfig {
    PortfolioLoopConfig {
        markets: (0..3)
            .map(|i| PortfolioMarket {
                name: format!("zone-{i}"),
                params: MarketParams::new(
                    Price::new(0.35),
                    Price::new(0.02 + 0.004 * i as f64),
                    0.05,
                    0.05,
                )
                .unwrap(),
                idio_arrivals: 1.5,
                supply: Supply::Unbounded,
            })
            .collect(),
        shared_arrivals: 1.5,
        slot_len: Hours::from_minutes(5.0),
        on_demand: Price::new(0.35),
        job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
        warmup_slots: 40,
        horizon_slots: 160,
        max_resubmissions: 3,
    }
}

fn portfolio_strategies(n: usize) -> Vec<PortfolioStrategy> {
    (0..n)
        .map(|i| match i % 4 {
            0 => PortfolioStrategy::ZoneFallback {
                home: i % 3,
                base: BiddingStrategy::OptimalPersistent,
            },
            1 => PortfolioStrategy::SplitEven {
                base: BiddingStrategy::Percentile(0.90),
            },
            2 => PortfolioStrategy::Contract {
                spot_share: 0.5 + (i % 5) as f64 * 0.1,
                base: BiddingStrategy::OptimalOneTime,
            },
            _ => PortfolioStrategy::ZoneFallback {
                home: i % 3,
                base: BiddingStrategy::FixedBid(Price::new(0.05 + (i % 13) as f64 * 0.023)),
            },
        })
        .collect()
}

#[test]
fn portfolio_digest_identical_at_1_and_4_threads() {
    let strategies = portfolio_strategies(200);
    let cfg = multi_config();
    let one = with_threads(1, || run_portfolio_loop(&strategies, &cfg, 0x907F).unwrap());
    let four = with_threads(4, || run_portfolio_loop(&strategies, &cfg, 0x907F).unwrap());
    assert_eq!(
        digest(&one),
        digest(&four),
        "thread count leaked into the portfolio result"
    );
    assert_eq!(one, four);
    assert_eq!(one.tenants.len(), 200);
    assert!(one.tenants.iter().any(|t| t.spot_slots > 0));
}

/// Pearson correlation of two equal-length series.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let (va, vb): (f64, f64) = (
        a.iter().map(|x| (x - ma).powi(2)).sum(),
        b.iter().map(|y| (y - mb).powi(2)).sum(),
    );
    cov / (va * vb).sqrt()
}

#[test]
fn shared_shock_correlates_market_price_paths() {
    // With all arrivals in the shared shock, every market sees the same
    // background demand sequence each slot — so their posted price paths
    // co-move; with all arrivals idiosyncratic they draw independently.
    // The per-slot price series are reconstructed from the event log
    // (`PricePosted` comes M-per-slot in market order). The lone tenant
    // bids below π_min so it is never accepted and the kernel holds the
    // session open for the whole horizon without disturbing the market.
    let price_corr = |cfg: &PortfolioLoopConfig, seed: u64| {
        let (_, events) = run_portfolio_loop_logged(
            &[PortfolioStrategy::ZoneFallback {
                home: 0,
                base: BiddingStrategy::FixedBid(Price::new(0.001)),
            }],
            cfg,
            seed,
            None,
        )
        .unwrap();
        let posted: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                spotbid_engine::Event::PricePosted { price, .. } => Some(price.as_f64()),
                _ => None,
            })
            .collect();
        let m = cfg.markets.len();
        let per_market: Vec<Vec<f64>> = (0..m)
            .map(|k| posted.iter().skip(k).step_by(m).copied().collect())
            .collect();
        pearson(&per_market[0], &per_market[1])
    };
    let mut correlated = multi_config();
    let params = correlated.markets[0].params;
    for m in &mut correlated.markets {
        m.idio_arrivals = 0.0;
        m.params = params;
    }
    let mut independent = correlated.clone();
    correlated.shared_arrivals = 12.0;
    independent.shared_arrivals = 0.0;
    for m in &mut independent.markets {
        m.idio_arrivals = 12.0;
    }
    let (mut shared_sum, mut indep_sum) = (0.0, 0.0);
    for seed in 0..6u64 {
        shared_sum += price_corr(&correlated, 0x5A00 + seed);
        indep_sum += price_corr(&independent, 0x5A00 + seed);
    }
    assert!(
        shared_sum > indep_sum + 0.5,
        "a pure shared shock should visibly correlate the price paths: \
         shared Σr = {shared_sum:.3}, independent Σr = {indep_sum:.3}"
    );
}
