//! The wakeup-fleet equivalence wall: event-driven fleet ≡ frozen
//! `closedloop::dense` oracle, bit for bit.
//!
//! The contract (DESIGN.md §5f) is the tenant-side mirror of the market's
//! bid-book contract: identical `ClosedLoopReport`s (same costs down to
//! float accumulation order), identical `Event` streams (same order,
//! same slots, same prices), and identical RNG stream reservations at any
//! thread count. These tests drive both fleets over the four threshold
//! regimes of `market/tests/bidbook_equiv.rs` — uniform, clustered,
//! exact-bucket-boundary, out-of-range — plus fault plans with feed gaps
//! and capacity reclamations. The recycled-report arena path is always on
//! in the closed loop (the kernel hands every spent `SlotReport` back via
//! `PriceSource::reclaim`), so every run here exercises it.
//!
//! Two wakeup invariants are also checked directly against the wakeup
//! fleet's own event stream, independent of the oracle:
//!
//! - **no threshold skipped**: replaying the events slot by slot, every
//!   pending bid priced at-or-above the slot's posted price is accepted
//!   that slot — a tenant whose threshold lies between consecutive prices
//!   can never sleep through its crossing;
//! - **skip accounting**: `FleetStats::skipped_slots` equals the number
//!   of zero-activity slots in the dense run (slots whose only event is
//!   `PricePosted`).

use std::collections::BTreeMap;

use spotbid_core::{BiddingStrategy, JobSpec};
use spotbid_engine::closedloop::dense;
use spotbid_engine::{
    run_closed_loop_logged, ClosedLoopConfig, ClosedLoopReport, Event, FleetStats, LoopFaults,
};
use spotbid_market::units::{Hours, Price};
use spotbid_market::{MarketParams, ProviderPolicy, Supply};
use spotbid_numerics::rng::Rng;

const BUCKETS: f64 = 512.0;

fn params() -> MarketParams {
    MarketParams::new(Price::new(0.35), Price::new(0.02), 0.05, 0.05).unwrap()
}

fn config(horizon_slots: usize) -> ClosedLoopConfig {
    ClosedLoopConfig {
        params: params(),
        slot_len: Hours::from_minutes(5.0),
        on_demand: Price::new(0.35),
        job: JobSpec::builder(1.0).recovery_secs(60.0).build().unwrap(),
        warmup_slots: 60,
        horizon_slots,
        background_arrivals: 3.0,
        max_resubmissions: 4,
        supply: Supply::Unbounded,
        od_arrivals: 0.0,
        od_departure: 0.0,
    }
}

/// A threshold regime: maps a uniform draw to a fixed-bid price, placing
/// tenant wakeup thresholds where the bucket classifier hurts most.
type PriceGen = fn(&MarketParams, &mut Rng) -> Price;

fn uniform_price(p: &MarketParams, rng: &mut Rng) -> Price {
    Price::new(rng.range_f64(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Clusters around a few focal prices — deep buckets, heavy boundary work.
fn clustered_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let focals = [0.05, 0.12, 0.175, 0.21, 0.34];
    let f = focals[(rng.range_f64(0.0, focals.len() as f64) as usize).min(focals.len() - 1)];
    let jitter = rng.range_f64(-0.004, 0.004);
    Price::new((f + jitter).clamp(p.pi_min.as_f64(), p.pi_bar.as_f64()))
}

/// Exact bucket-boundary grid: `π_min + k·spread/512` — every threshold
/// sits on a wakeup-bucket edge, the worst case for the sweep filter.
fn boundary_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let k = rng.range_f64(0.0, BUCKETS + 1.0).floor().min(BUCKETS);
    Price::new(p.pi_min.as_f64() + k * (p.spread().as_f64() / BUCKETS))
}

/// Out-of-range thresholds: below the floor (a bid that never runs and
/// parks in the book forever) and above the cap (always accepted),
/// exercising the open-ended edge buckets.
fn extreme_price(p: &MarketParams, rng: &mut Rng) -> Price {
    let u = rng.range_f64(0.0, 1.0);
    if u < 0.4 {
        Price::new(rng.range_f64(0.0, p.pi_min.as_f64()))
    } else if u < 0.8 {
        Price::new(rng.range_f64(p.pi_bar.as_f64(), 2.0 * p.pi_bar.as_f64()))
    } else {
        uniform_price(p, rng)
    }
}

/// A strategy mix dominated by regime-placed fixed thresholds, salted
/// with every adaptive strategy so their decision paths ride along.
fn strategies(n: usize, gen: PriceGen, seed: u64) -> Vec<BiddingStrategy> {
    let p = params();
    let mut rng = Rng::seed_from_u64(seed ^ 0x57A7E61E5);
    (0..n)
        .map(|i| match i % 13 {
            3 => BiddingStrategy::OptimalPersistent,
            7 => BiddingStrategy::Percentile(0.90),
            9 => BiddingStrategy::OptimalOneTime,
            11 => BiddingStrategy::OnDemand,
            _ => BiddingStrategy::FixedBid(gen(&p, &mut rng)),
        })
        .collect()
}

/// Core assertion: the wakeup fleet reproduces the dense oracle bit for
/// bit — same report (costs, savings, price path) and same event stream.
fn assert_equivalent(
    strats: &[BiddingStrategy],
    cfg: &ClosedLoopConfig,
    seed: u64,
    faults: Option<&LoopFaults>,
) -> (ClosedLoopReport, Vec<Event>, FleetStats) {
    let (wr, we, stats) = run_closed_loop_logged(strats, cfg, seed, faults).unwrap();
    let (dr, de) = dense::run_closed_loop_logged(strats, cfg, seed, faults).unwrap();
    assert_eq!(wr, dr, "seed {seed}: reports diverged");
    assert_eq!(we.len(), de.len(), "seed {seed}: event counts diverged");
    for (k, (w, d)) in we.iter().zip(&de).enumerate() {
        assert_eq!(w, d, "seed {seed}: event {k} diverged");
    }
    (wr, we, stats)
}

fn sweep(gen: PriceGen, seeds: &[u64]) {
    for &seed in seeds {
        let strats = strategies(60, gen, seed);
        let cfg = config(300);
        let (report, _, stats) = assert_equivalent(&strats, &cfg, seed, None);
        assert_eq!(report.tenants.len(), 60);
        assert_eq!(
            stats.slots, report.slots,
            "every simulated slot was advanced"
        );
    }
}

#[test]
fn equivalent_under_uniform_thresholds() {
    sweep(uniform_price, &[1, 2, 42, 0xDEAD]);
}

#[test]
fn equivalent_under_clustered_thresholds() {
    sweep(clustered_price, &[7, 8, 0xC0FFEE]);
}

#[test]
fn equivalent_on_exact_bucket_boundaries() {
    sweep(boundary_price, &[11, 13, 17]);
}

#[test]
fn equivalent_under_out_of_range_thresholds() {
    sweep(extreme_price, &[23, 29, 31]);
}

#[test]
fn equivalent_under_faults_across_regimes() {
    // Randomized fault plans: scattered feed gaps plus reclamation
    // outages (including back-to-back ones), across all four regimes.
    let regimes: [PriceGen; 4] = [
        uniform_price,
        clustered_price,
        boundary_price,
        extreme_price,
    ];
    for (r, gen) in regimes.into_iter().enumerate() {
        for seed in [101u64 + r as u64, 0xFA17 + r as u64] {
            let cfg = config(200);
            let total = cfg.warmup_slots + cfg.horizon_slots;
            let mut frng = Rng::seed_from_u64(seed ^ 0xFA151);
            let faults = LoopFaults {
                gap: (0..total).map(|_| frng.chance(0.05)).collect(),
                reclaim: (0..total).map(|_| frng.chance(0.10)).collect(),
            };
            let strats = strategies(40, gen, seed);
            assert_equivalent(&strats, &cfg, seed, Some(&faults));
        }
    }
}

#[test]
fn equivalent_under_finite_supply() {
    // Finite-capacity provider: capacity evictions and on-demand churn
    // interrupt running winners and restart parked victims on slots whose
    // price path alone predicts neither — exactly the wakeups a pure
    // threshold sweep cannot see. The fleet's unconditional calendar
    // chain (DESIGN.md §5i) must keep it bit-identical to the dense
    // oracle anyway.
    let regimes: [PriceGen; 3] = [uniform_price, clustered_price, boundary_price];
    let mut reclaims = 0u64;
    for (r, gen) in regimes.into_iter().enumerate() {
        for seed in [211u64 + r as u64, 0xF177 + r as u64] {
            let cfg = ClosedLoopConfig {
                supply: Supply::Finite {
                    capacity: 40,
                    policy: ProviderPolicy::UtilizationTracking { od_cap: 24 },
                },
                od_arrivals: 1.5,
                od_departure: 0.25,
                ..config(200)
            };
            let strats = strategies(60, gen, seed);
            let (report, _, _) = assert_equivalent(&strats, &cfg, seed, None);
            let p = report.provider.expect("finite run reports the provider");
            assert_eq!(p.capacity, 40);
            reclaims += p.reclaims;
        }
    }
    assert!(
        reclaims > 0,
        "capacity never bound: the wall proved nothing"
    );
}

#[test]
fn equivalent_under_finite_supply_with_faults() {
    // The reclamation-heavy wall: provider-initiated evictions layered
    // under forced reclamation outages and feed gaps, on a tiny box so
    // capacity binds nearly every slot.
    for seed in [307u64, 0xFA57] {
        let cfg = ClosedLoopConfig {
            supply: Supply::Finite {
                capacity: 24,
                policy: ProviderPolicy::StaticSplit { reserved: 8 },
            },
            od_arrivals: 2.0,
            od_departure: 0.3,
            ..config(160)
        };
        let total = cfg.warmup_slots + cfg.horizon_slots;
        let mut frng = Rng::seed_from_u64(seed ^ 0xFA151);
        let faults = LoopFaults {
            gap: (0..total).map(|_| frng.chance(0.05)).collect(),
            reclaim: (0..total).map(|_| frng.chance(0.10)).collect(),
        };
        let strats = strategies(48, extreme_price, seed);
        assert_equivalent(&strats, &cfg, seed, Some(&faults));
    }
}

#[test]
fn equivalent_on_a_big_fleet_burst() {
    // One 2k-tenant session: deep buckets, large needy batches, the
    // sharded decision fan-out with many shards.
    let strats = strategies(2000, clustered_price, 0xB16);
    let cfg = config(120);
    assert_equivalent(&strats, &cfg, 0xB16, None);
}

/// Replays a wakeup event stream slot by slot and asserts the crossing
/// invariant: every bid pending at a slot whose posted price is at or
/// below its price must be accepted that very slot. A tenant whose
/// threshold lies between consecutive slot prices is exactly such a bid
/// at the crossing slot, so none can ever be skipped. (Fault-free only:
/// during a reclamation outage the market starts nothing.)
fn check_no_crossing_skipped(events: &[Event]) {
    // Group per slot; within one slot events are ordered: submissions
    // (before_slot), PricePosted, then per-tenant report processing.
    let mut by_slot: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in events {
        let slot = match e {
            Event::PricePosted { slot, .. }
            | Event::BidSubmitted { slot, .. }
            | Event::BidAccepted { slot, .. }
            | Event::Interrupted { slot, .. }
            | Event::Reclaimed { slot, .. }
            | Event::Rejected { slot, .. }
            | Event::Completed { slot, .. }
            | Event::FeedOutage { slot, .. } => *slot,
            Event::Charged { item } => item.slot,
        };
        by_slot.entry(slot).or_default().push(e);
    }
    // tenant → (bid price, running?) for tenants holding a live bid.
    let mut live: BTreeMap<u32, (f64, bool)> = BTreeMap::new();
    let mut crossings = 0u64;
    for (slot, evs) in &by_slot {
        let price = evs
            .iter()
            .find_map(|e| match e {
                Event::PricePosted { price, .. } => Some(price.as_f64()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("slot {slot} has no PricePosted"));
        for e in evs.iter() {
            match e {
                Event::BidSubmitted {
                    tenant, price: bid, ..
                } => {
                    live.insert(*tenant, (bid.as_f64(), false));
                }
                Event::BidAccepted { tenant, .. } => {
                    live.get_mut(tenant).expect("accepted bid is live").1 = true;
                }
                Event::Interrupted { tenant, .. } => {
                    if let Some(s) = live.get_mut(tenant) {
                        s.1 = false;
                    }
                }
                Event::Rejected { tenant, .. } | Event::Completed { tenant, .. } => {
                    live.remove(tenant);
                }
                _ => {}
            }
        }
        // After the slot settles: no pending bid at-or-above the posted
        // price may remain un-started — the market would have started it,
        // so a fleet that left it asleep has skipped a crossing.
        for (tenant, (bid, running)) in &live {
            assert!(
                *running || *bid < price,
                "slot {slot}: tenant {tenant} pending at {bid} ≥ posted {price} was skipped"
            );
            if *running {
                crossings += 1;
            }
        }
    }
    assert!(
        crossings > 0,
        "the session never started a bid — vacuous run"
    );
}

#[test]
fn no_threshold_between_consecutive_prices_is_skipped() {
    // Boundary thresholds are the hardest case for the sweep's bucket
    // filter; uniform gives broad coverage.
    for (gen, seed) in [
        (boundary_price as PriceGen, 5u64),
        (uniform_price as PriceGen, 6u64),
    ] {
        let strats = strategies(80, gen, seed);
        let cfg = config(300);
        let (_, events, _) = run_closed_loop_logged(&strats, &cfg, seed, None).unwrap();
        check_no_crossing_skipped(&events);
    }
}

#[test]
fn skip_count_equals_dense_zero_activity_slots() {
    // Fault-free, a skipped slot is exactly a dense-run slot whose only
    // event is the price posting: any tenant state change emits at least
    // one event in its slot (submission, acceptance, charge, rejection,
    // completion), and on-demand resolutions emit their Completed on
    // their decision slot.
    for (gen, seed) in [
        (uniform_price as PriceGen, 21u64),
        (clustered_price as PriceGen, 22u64),
        (extreme_price as PriceGen, 23u64),
    ] {
        let strats = strategies(50, gen, seed);
        let cfg = config(250);
        let (_, events, stats) = assert_equivalent(&strats, &cfg, seed, None);
        let mut active_slots: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::PricePosted { .. } => None,
                Event::Charged { item } => Some(item.slot),
                Event::BidSubmitted { slot, .. }
                | Event::BidAccepted { slot, .. }
                | Event::Interrupted { slot, .. }
                | Event::Reclaimed { slot, .. }
                | Event::Rejected { slot, .. }
                | Event::Completed { slot, .. }
                | Event::FeedOutage { slot, .. } => Some(*slot),
            })
            .collect();
        active_slots.sort_unstable();
        active_slots.dedup();
        assert_eq!(
            stats.skipped_slots,
            stats.slots - active_slots.len() as u64,
            "seed {seed}: skip accounting diverged from the event stream"
        );
        assert!(
            stats.skipped_slots > 0,
            "seed {seed}: a 250-slot tail should go quiet"
        );
    }
}
