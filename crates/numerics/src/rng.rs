//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the workspace must be reproducible from a single
//! `u64` seed (the paper repeats each EC2 experiment ten times; we repeat
//! each simulated experiment over ten seeds). This module implements
//! xoshiro256++ — a small, fast, well-tested generator — seeded through
//! SplitMix64 so that even adjacent integer seeds produce decorrelated
//! streams.

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; intended for simulation only.
///
/// # Example
///
/// ```
/// use spotbid_numerics::rng::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single `u64` seed into the four words
/// of xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where an exact 0 would map to the
    /// lower support bound (or `-inf` for unbounded distributions).
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite (internal misuse,
    /// not user input).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform `usize` in `[0, n)` using rejection to avoid modulo
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range_usize(0)");
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples a standard normal variate via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples an exponential variate with the given mean, via inversion.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.next_f64_open().ln()
    }

    /// Samples a Poisson variate with the given mean.
    ///
    /// Uses Knuth's product method for small means and a normal
    /// approximation (rounded, clamped at zero) for large means, which is
    /// accurate to well within simulation noise for `mean > 30`.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let x = mean + mean.sqrt() * self.normal();
            return x.round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64_open();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Forks an independent generator, advancing this one.
    ///
    /// Handy for giving each trial of an experiment its own stream while the
    /// harness keeps a master generator.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Advances the state by `2^128` steps of [`Rng::next_u64`], as if that
    /// many outputs had been drawn and discarded.
    ///
    /// This is the reference xoshiro256++ jump function: repeated jumps
    /// partition the generator's period of `2^256 − 1` into `2^128`
    /// non-overlapping subsequences of length `2^128`, so streams obtained
    /// by successive jumps from one seed can never collide. It is the
    /// seeding primitive behind [`RngStreams`].
    pub fn jump(&mut self) {
        self.polynomial_jump(&JUMP);
    }

    /// Advances the state by `2^192` steps — the reference long-jump.
    ///
    /// Useful for carving the period into `2^64` super-streams of `2^192`
    /// outputs each, e.g. one per distributed worker, each of which can
    /// then be subdivided further with [`Rng::jump`].
    pub fn long_jump(&mut self) {
        self.polynomial_jump(&LONG_JUMP);
    }

    /// Applies a jump polynomial: the new state is the linear combination
    /// of future states selected by the set bits of `poly` (xoshiro's state
    /// transition is F2-linear, so this computes the transition matrix
    /// raised to the jump distance).
    fn polynomial_jump(&mut self, poly: &[u64; 4]) {
        let mut s = [0u64; 4];
        for &word in poly {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

/// The reference xoshiro256++ jump polynomial (distance `2^128`), from the
/// authors' published implementation (Blackman & Vigna,
/// <https://prng.di.unimi.it/xoshiro256plusplus.c>).
pub const JUMP: [u64; 4] = [
    0x180E_C6D3_3CFD_0ABA,
    0xD5A6_1266_F0C9_392C,
    0xA958_2618_E03F_C9AA,
    0x39AB_DC45_29B1_661C,
];

/// The reference long-jump polynomial (distance `2^192`).
pub const LONG_JUMP: [u64; 4] = [
    0x76E1_5D3E_FEFD_CBBF,
    0xC500_4E44_1C52_2FB3,
    0x7771_0069_854E_E241,
    0x3910_9BB0_2ACB_E635,
];

/// Decorrelated per-trial substreams derived from one master seed.
///
/// Stream `i` is the master generator advanced by `i` jumps of `2^128`
/// outputs, so the streams are non-overlapping segments of the xoshiro
/// period: trial `i` may draw up to `2^128` variates without ever touching
/// trial `j`'s segment. This is what makes parallel Monte Carlo
/// deterministic — the variates a trial sees depend only on `(seed, i)`,
/// never on which thread runs it or in what order.
///
/// # Example
///
/// ```
/// use spotbid_numerics::rng::RngStreams;
/// let streams = RngStreams::new(42);
/// let mut a = streams.stream(3);
/// let mut b = RngStreams::new(42).stream(3);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct RngStreams {
    base: Rng,
}

impl RngStreams {
    /// Creates the stream family for a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngStreams {
            base: Rng::seed_from_u64(master_seed),
        }
    }

    /// The `i`-th substream.
    ///
    /// Costs `i` jumps; when handing streams to every trial of an
    /// experiment, prefer [`RngStreams::streams`], which walks the chain
    /// once.
    pub fn stream(&self, i: u64) -> Rng {
        let mut r = self.base.clone();
        for _ in 0..i {
            r.jump();
        }
        r
    }

    /// The first `n` substreams, in order, computed with `n − 1` jumps.
    pub fn streams(&self, n: usize) -> Vec<Rng> {
        let mut out = Vec::with_capacity(n);
        let mut cur = self.base.clone();
        for i in 0..n {
            if i + 1 == n {
                out.push(cur);
                break;
            }
            out.push(cur.clone());
            cur.jump();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.range_usize(7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.range_f64(-2.0, 3.5);
            assert!((-2.0..3.5).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from_u64(23);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = Rng::seed_from_u64(29);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = Rng::seed_from_u64(31);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.poisson(100.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var - 100.0).abs() < 5.0, "var {var}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = Rng::seed_from_u64(37);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(41);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from_u64(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn jump_constants_match_the_reference_polynomials() {
        // Blackman & Vigna's xoshiro256plusplus.c, verbatim.
        assert_eq!(
            JUMP,
            [
                0x180ec6d33cfd0aba,
                0xd5a61266f0c9392c,
                0xa9582618e03fc9aa,
                0x39abdc4529b1661c
            ]
        );
        assert_eq!(
            LONG_JUMP,
            [
                0x76e15d3efefdcbbf,
                0xc5004e441c522fb3,
                0x77710069854ee241,
                0x39109bb02acbe635
            ]
        );
    }

    #[test]
    fn polynomial_jump_selects_future_states() {
        // The jump machinery computes a linear combination of future
        // states: the polynomial with only bit k set must land exactly on
        // the state reached by k plain steps. Checked for several k over
        // several seeds — this validates the engine the reference
        // constants plug into.
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            for k in [0u32, 1, 2, 5, 63, 64, 70, 200] {
                let mut jumped = Rng::seed_from_u64(seed);
                let mut poly = [0u64; 4];
                poly[(k / 64) as usize] = 1u64 << (k % 64);
                jumped.polynomial_jump(&poly);
                let mut stepped = Rng::seed_from_u64(seed);
                for _ in 0..k {
                    stepped.next_u64();
                }
                assert_eq!(jumped, stepped, "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn jump_moves_to_a_disjoint_subsequence() {
        let mut base = Rng::seed_from_u64(99);
        let mut jumped = base.clone();
        jumped.jump();
        let near: Vec<u64> = (0..4096).map(|_| base.next_u64()).collect();
        let far: Vec<u64> = (0..4096).map(|_| jumped.next_u64()).collect();
        // The jumped stream is 2^128 steps ahead: no aligned collisions.
        assert!(near.iter().zip(&far).all(|(a, b)| a != b));
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = a.clone();
        a.jump();
        b.long_jump();
        assert_ne!(a, b);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_match_individually_jumped_streams() {
        let fam = RngStreams::new(0xC10D);
        let all = fam.streams(6);
        assert_eq!(all.len(), 6);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(*s, fam.stream(i as u64), "stream {i}");
        }
        assert!(fam.streams(0).is_empty());
        assert_eq!(fam.streams(1)[0], fam.stream(0));
    }

    #[test]
    fn streams_are_pairwise_decorrelated_and_never_equal() {
        // Property sweep over master seeds: no two substreams share state,
        // their outputs never collide position-wise over a window, and the
        // empirical correlation between paired uniform draws is tiny.
        for seed in [0u64, 1, 7, 0xC10D, u64::MAX] {
            let fam = RngStreams::new(seed);
            let streams = fam.streams(5);
            for i in 0..streams.len() {
                for j in (i + 1)..streams.len() {
                    assert_ne!(streams[i], streams[j], "seed {seed}: {i} vs {j}");
                    let mut a = streams[i].clone();
                    let mut b = streams[j].clone();
                    let n = 2048;
                    let mut dot = 0.0;
                    for _ in 0..n {
                        let (x, y) = (a.next_f64() - 0.5, b.next_f64() - 0.5);
                        assert!(x != y, "aligned collision between streams");
                        dot += x * y;
                    }
                    // Var of the sample correlation of independent
                    // uniforms is 1/n; 6 sigma ≈ 0.13 at n = 2048.
                    let corr = dot / n as f64 / (1.0 / 12.0);
                    assert!(corr.abs() < 0.13, "seed {seed}: corr({i},{j}) = {corr}");
                }
            }
        }
    }

    #[test]
    fn same_master_seed_same_streams() {
        let a = RngStreams::new(314);
        let b = RngStreams::new(314);
        for i in 0..4 {
            let mut x = a.stream(i);
            let mut y = b.stream(i);
            for _ in 0..64 {
                assert_eq!(x.next_u64(), y.next_u64());
            }
        }
    }
}
