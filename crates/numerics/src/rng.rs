//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the workspace must be reproducible from a single
//! `u64` seed (the paper repeats each EC2 experiment ten times; we repeat
//! each simulated experiment over ten seeds). This module implements
//! xoshiro256++ — a small, fast, well-tested generator — seeded through
//! SplitMix64 so that even adjacent integer seeds produce decorrelated
//! streams.

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; intended for simulation only.
///
/// # Example
///
/// ```
/// use spotbid_numerics::rng::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single `u64` seed into the four words
/// of xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where an exact 0 would map to the
    /// lower support bound (or `-inf` for unbounded distributions).
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite (internal misuse,
    /// not user input).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform `usize` in `[0, n)` using rejection to avoid modulo
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range_usize(0)");
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples a standard normal variate via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples an exponential variate with the given mean, via inversion.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.next_f64_open().ln()
    }

    /// Samples a Poisson variate with the given mean.
    ///
    /// Uses Knuth's product method for small means and a normal
    /// approximation (rounded, clamped at zero) for large means, which is
    /// accurate to well within simulation noise for `mean > 30`.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson mean must be non-negative");
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let x = mean + mean.sqrt() * self.normal();
            return x.round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64_open();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Forks an independent generator, advancing this one.
    ///
    /// Handy for giving each trial of an experiment its own stream while the
    /// harness keeps a master generator.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.range_usize(7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.range_f64(-2.0, 3.5);
            assert!((-2.0..3.5).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from_u64(23);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = Rng::seed_from_u64(29);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = Rng::seed_from_u64(31);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.poisson(100.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        assert!((var - 100.0).abs() < 5.0, "var {var}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = Rng::seed_from_u64(37);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(41);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from_u64(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
