//! # spotbid-numerics
//!
//! Probability and numerical substrate for the `spotbid` workspace, the
//! reproduction of *How to Bid the Cloud* (SIGCOMM 2015).
//!
//! The paper's bidding strategies are driven entirely by the spot-price
//! distribution: they need PDFs, CDFs, quantiles, conditional expectations,
//! distribution fitting (Figure 3), root finding (the `ψ⁻¹` inversion of
//! Proposition 5), numerical integration (Eq. 9's conditional mean for
//! analytic models), and statistical tests (the Kolmogorov–Smirnov day/night
//! stationarity check in §4.3). The Rust ecosystem's numeric crates are thin
//! in this area, so this crate implements exactly the pieces the paper needs,
//! from scratch, with no dependencies.
//!
//! ## Modules
//!
//! - [`rng`] — a small, deterministic, seedable PRNG (xoshiro256++) so every
//!   experiment in the workspace is reproducible from a `u64` seed.
//! - [`dist`] — analytic continuous distributions (Pareto, exponential,
//!   uniform, log-normal, Weibull) behind the [`ContinuousDist`] trait.
//! - [`empirical`] — empirical distributions built from samples: ECDF,
//!   quantiles, histograms, conditional means.
//! - [`sliding`] — a bounded sliding window maintaining an [`empirical`]
//!   distribution incrementally (O(log k) insert/evict, bit-equivalent
//!   snapshots), for long-running streaming consumers.
//! - [`backoff`] — seeded bounded-exponential-backoff + jitter schedules,
//!   shared by every retry loop in the workspace.
//! - [`integrate`] — trapezoid and adaptive Simpson quadrature.
//! - [`roots`] — bisection and Brent root finding.
//! - [`optimize`] — golden-section search, refining grid search, and
//!   Nelder–Mead, used for least-squares distribution fitting.
//! - [`fit`] — histogram least-squares fitting and maximum-likelihood
//!   estimators.
//! - [`stats`] — descriptive statistics, mean-squared error, autocorrelation,
//!   and the two-sample Kolmogorov–Smirnov test.
//!
//! ## Example
//!
//! ```
//! use spotbid_numerics::dist::{ContinuousDist, Pareto};
//! use spotbid_numerics::rng::Rng;
//!
//! let d = Pareto::new(1.0, 5.0).unwrap();
//! let mut rng = Rng::seed_from_u64(7);
//! let xs: Vec<f64> = (0..1000).map(|_| d.sample(&mut rng)).collect();
//! let mean = xs.iter().sum::<f64>() / xs.len() as f64;
//! // Pareto(x_min = 1, alpha = 5) has mean alpha/(alpha-1) = 1.25.
//! assert!((mean - 1.25).abs() < 0.05);
//! ```

#![warn(missing_docs)]
// Parameter validation deliberately uses negated comparisons like
// `!(x > 0.0)` so that NaN fails validation; the suggested `x <= 0.0`
// would let NaN through.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod backoff;
pub mod dist;
pub mod empirical;
pub mod fit;
pub mod integrate;
pub mod optimize;
pub mod rng;
pub mod roots;
pub mod sliding;
pub mod stats;

pub use dist::ContinuousDist;
pub use empirical::Empirical;
pub use rng::Rng;

use std::fmt;

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A distribution parameter was out of its valid domain.
    InvalidParameter {
        /// Human-readable parameter name, e.g. `"alpha"`.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// What the parameter must satisfy, e.g. `"must be > 0"`.
        requirement: &'static str,
    },
    /// A bracketing root finder was called on an interval whose endpoints do
    /// not bracket a sign change.
    NoBracket {
        /// Left endpoint of the attempted bracket.
        a: f64,
        /// Right endpoint of the attempted bracket.
        b: f64,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An input slice was empty where at least one element is required.
    EmptyInput {
        /// Name of the routine that received the empty input.
        routine: &'static str,
    },
    /// A probability argument was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// An interval `[a, b]` was invalid (e.g. `a >= b` or non-finite).
    InvalidInterval {
        /// Left endpoint.
        a: f64,
        /// Right endpoint.
        b: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
            NumericsError::NoBracket { a, b } => {
                write!(f, "no sign change on [{a}, {b}]: cannot bracket a root")
            }
            NumericsError::NoConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} failed to converge after {iterations} iterations"
            ),
            NumericsError::EmptyInput { routine } => {
                write!(f, "{routine} requires at least one input value")
            }
            NumericsError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            NumericsError::InvalidInterval { a, b } => {
                write!(f, "invalid interval [{a}, {b}]")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NumericsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = NumericsError::InvalidParameter {
            name: "alpha",
            value: -1.0,
            requirement: "must be > 0",
        };
        assert!(e.to_string().contains("alpha"));
        assert!(e.to_string().contains("-1"));

        let e = NumericsError::NoBracket { a: 0.0, b: 1.0 };
        assert!(e.to_string().contains("[0, 1]"));

        let e = NumericsError::NoConvergence {
            routine: "brent",
            iterations: 100,
        };
        assert!(e.to_string().contains("brent"));

        let e = NumericsError::EmptyInput { routine: "ecdf" };
        assert!(e.to_string().contains("ecdf"));

        let e = NumericsError::InvalidProbability { value: 2.0 };
        assert!(e.to_string().contains('2'));

        let e = NumericsError::InvalidInterval { a: 3.0, b: 1.0 };
        assert!(e.to_string().contains("[3, 1]"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&NumericsError::EmptyInput { routine: "x" });
    }
}
