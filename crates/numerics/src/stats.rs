//! Descriptive statistics and hypothesis tests.
//!
//! §4.3 of the paper uses a Kolmogorov–Smirnov test to check that daytime
//! and nighttime spot prices come from similar distributions (p > 0.01,
//! supporting the i.i.d. arrival assumption), reports fit quality as
//! mean-squared error (< 1e-6), and cites the rapid decay of the spot
//! price autocorrelation as the reason to predict with the marginal
//! distribution rather than a time-series model.

use crate::{NumericsError, Result};

/// Arithmetic mean.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::EmptyInput { routine: "mean" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divisor `n`).
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty slice.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Mean squared error between two equally long series.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] if empty or lengths mismatch.
pub fn mse(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() || a.len() != b.len() {
        return Err(NumericsError::EmptyInput { routine: "mse" });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / a.len() as f64)
}

/// Sample autocorrelation at the given lag.
///
/// Returns 0 for a constant series (zero variance) — the convention that
/// suits "is there temporal structure?" checks.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] if `lag >= len`.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64> {
    if xs.len() <= lag {
        return Err(NumericsError::EmptyInput {
            routine: "autocorrelation",
        });
    }
    let m = mean(xs)?;
    let denom: f64 = xs.iter().map(|x| (x - m).powi(2)).sum();
    if denom == 0.0 {
        return Ok(0.0);
    }
    let num: f64 = xs.windows(lag + 1).map(|w| (w[0] - m) * (w[lag] - m)).sum();
    Ok(num / denom)
}

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic: the supremum distance between the two ECDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Tests the null hypothesis that both samples are drawn from the same
/// continuous distribution. The p-value uses the asymptotic Kolmogorov
/// series, accurate for sample sizes above a few dozen — the paper applies
/// this to thousands of five-minute price observations.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<KsTest> {
    if a.is_empty() || b.is_empty() {
        return Err(NumericsError::EmptyInput {
            routine: "ks_two_sample",
        });
    }
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    xb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let (na, nb) = (xa.len(), xb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while ia < na && ib < nb {
        let va = xa[ia];
        let vb = xb[ib];
        let x = va.min(vb);
        while ia < na && xa[ia] <= x {
            ia += 1;
        }
        while ib < nb && xb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let n_eff = (na as f64 * nb as f64) / (na + nb) as f64;
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * d;
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    })
}

/// One-sample Kolmogorov–Smirnov test against an analytic CDF.
///
/// Tests whether `samples` are drawn from the continuous distribution
/// whose CDF is `cdf`. Used by the workspace's distribution coherence
/// checks to validate samplers against their own CDFs.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] for an empty sample.
pub fn ks_one_sample<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Result<KsTest> {
    if samples.is_empty() {
        return Err(NumericsError::EmptyInput {
            routine: "ks_one_sample",
        });
    }
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²)`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64 * lambda).powi(2)).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Percentile of a slice (nearest-rank, `q` in `[0, 1]`), without requiring
/// an [`crate::Empirical`] (one-shot use).
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty slice, or
/// [`NumericsError::InvalidProbability`] for `q` outside `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::EmptyInput {
            routine: "percentile",
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(NumericsError::InvalidProbability { value: q });
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let k = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Ok(v[k - 1])
}

/// Bootstrap percentile confidence interval for the mean of a sample.
///
/// Resamples with replacement `resamples` times and returns the
/// `(lo, hi)` percentile interval at the given confidence level. More
/// honest than the normal-approximation `ci95` for the small (n = 10),
/// skewed trial sets the paper's experiments produce.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty sample or zero resamples;
/// [`NumericsError::InvalidProbability`] for a confidence outside (0, 1).
pub fn bootstrap_mean_ci(
    xs: &[f64],
    confidence: f64,
    resamples: usize,
    rng: &mut crate::rng::Rng,
) -> Result<(f64, f64)> {
    if xs.is_empty() || resamples == 0 {
        return Err(NumericsError::EmptyInput {
            routine: "bootstrap_mean_ci",
        });
    }
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(NumericsError::InvalidProbability { value: confidence });
    }
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += xs[rng.range_usize(n)];
        }
        means.push(acc / n as f64);
    }
    let alpha = (1.0 - confidence) / 2.0;
    let lo = percentile(&means, alpha)?;
    let hi = percentile(&means, 1.0 - alpha)?;
    Ok((lo, hi))
}

/// Summary statistics for a set of experiment trials: mean, standard
/// deviation, and a 95% normal-approximation confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (divisor `n − 1`; 0 for a single trial).
    pub std_dev: f64,
    /// 95% confidence half-width `1.96·s/√n`.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Summarizes a set of trial outcomes (the paper repeats each experiment
/// ten times and reports averages).
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty slice.
pub fn summarize(xs: &[f64]) -> Result<Summary> {
    if xs.is_empty() {
        return Err(NumericsError::EmptyInput {
            routine: "summarize",
        });
    }
    let n = xs.len();
    let m = mean(xs)?;
    let var = if n > 1 {
        xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let s = var.sqrt();
    let (mut lo, mut hi) = (xs[0], xs[0]);
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok(Summary {
        n,
        mean: m,
        std_dev: s,
        ci95: 1.96 * s / (n as f64).sqrt(),
        min: lo,
        max: hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Exponential, Pareto, Uniform};
    use crate::rng::Rng;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs).unwrap(), 2.5);
        assert_eq!(variance(&xs).unwrap(), 1.25);
        assert!((std_dev(&xs).unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 12.5);
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mse(&[], &[]).is_err());
    }

    #[test]
    fn autocorrelation_of_iid_is_small() {
        let mut rng = Rng::seed_from_u64(99);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.next_f64()).collect();
        let r1 = autocorrelation(&xs, 1).unwrap();
        assert!(r1.abs() < 0.03, "iid lag-1 autocorr {r1}");
        assert_eq!(autocorrelation(&xs, 0).unwrap(), 1.0);
    }

    #[test]
    fn autocorrelation_of_persistent_series_is_high() {
        // AR(1) with phi = 0.95.
        let mut rng = Rng::seed_from_u64(7);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| {
                x = 0.95 * x + rng.normal();
                x
            })
            .collect();
        let r1 = autocorrelation(&xs, 1).unwrap();
        assert!(r1 > 0.9, "AR(1) lag-1 autocorr {r1}");
    }

    #[test]
    fn autocorrelation_constant_series() {
        assert_eq!(autocorrelation(&[2.0; 10], 1).unwrap(), 0.0);
        assert!(autocorrelation(&[1.0, 2.0], 5).is_err());
    }

    #[test]
    fn ks_same_distribution_high_p() {
        let d = Exponential::new(1.0).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        let a = d.sample_n(&mut rng, 2000);
        let b = d.sample_n(&mut rng, 2000);
        let t = ks_two_sample(&a, &b).unwrap();
        assert!(
            t.p_value > 0.01,
            "same-distribution samples rejected: p = {}",
            t.p_value
        );
    }

    #[test]
    fn ks_different_distributions_low_p() {
        let mut rng = Rng::seed_from_u64(2);
        let a = Uniform::new(0.0, 1.0).unwrap().sample_n(&mut rng, 2000);
        let b = Pareto::new(0.5, 3.0).unwrap().sample_n(&mut rng, 2000);
        let t = ks_two_sample(&a, &b).unwrap();
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
        assert!(t.statistic > 0.2);
    }

    #[test]
    fn ks_identical_samples_statistic_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let t = ks_two_sample(&xs, &xs).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
        assert!(ks_two_sample(&[], &xs).is_err());
    }

    #[test]
    fn ks_one_sample_accepts_own_distribution() {
        let d = Exponential::new(2.0).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        let xs = d.sample_n(&mut rng, 3000);
        let t = ks_one_sample(&xs, |x| d.cdf(x)).unwrap();
        assert!(t.p_value > 0.01, "p = {}", t.p_value);
    }

    #[test]
    fn ks_one_sample_rejects_wrong_distribution() {
        let d = Exponential::new(2.0).unwrap();
        let wrong = Uniform::new(0.0, 4.0).unwrap();
        let mut rng = Rng::seed_from_u64(6);
        let xs = wrong.sample_n(&mut rng, 3000);
        let t = ks_one_sample(&xs, |x| d.cdf(x)).unwrap();
        assert!(t.p_value < 1e-6, "p = {}", t.p_value);
        assert!(ks_one_sample(&[], |x| x).is_err());
    }

    #[test]
    fn kolmogorov_sf_known_point() {
        // Q(1.36) ≈ 0.049 — the classic 5% critical value.
        let q = kolmogorov_sf(1.36);
        assert!((q - 0.049).abs() < 0.002, "{q}");
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 0.5).unwrap(), 3.0);
        assert_eq!(percentile(&xs, 0.9).unwrap(), 5.0);
        assert_eq!(percentile(&xs, 1.0).unwrap(), 5.0);
        assert!(percentile(&xs, 1.1).is_err());
        assert!(percentile(&[], 0.5).is_err());
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let mut rng = Rng::seed_from_u64(77);
        let d = Exponential::new(2.0).unwrap();
        let xs = d.sample_n(&mut rng, 40);
        let m = mean(&xs).unwrap();
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 2000, &mut rng).unwrap();
        assert!(lo <= m && m <= hi, "CI [{lo}, {hi}] misses mean {m}");
        assert!(hi - lo > 0.0);
        // Wider confidence → wider interval.
        let (lo99, hi99) = bootstrap_mean_ci(&xs, 0.99, 2000, &mut rng).unwrap();
        assert!(hi99 - lo99 >= hi - lo - 1e-9);
        // Coverage sanity over repeated experiments: the 95% CI contains
        // the true mean (2.0) most of the time.
        let mut covered = 0;
        for _ in 0..60 {
            let ys = d.sample_n(&mut rng, 30);
            let (l, h) = bootstrap_mean_ci(&ys, 0.95, 400, &mut rng).unwrap();
            if (l..=h).contains(&2.0) {
                covered += 1;
            }
        }
        assert!(covered >= 45, "coverage {covered}/60 too low");
    }

    #[test]
    fn bootstrap_validation() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(bootstrap_mean_ci(&[], 0.95, 100, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 1.5, 100, &mut rng).is_err());
        // Degenerate one-point sample: zero-width interval at the value.
        let (lo, hi) = bootstrap_mean_ci(&[3.0], 0.95, 50, &mut rng).unwrap();
        assert_eq!((lo, hi), (3.0, 3.0));
    }

    #[test]
    fn summarize_trials() {
        let s = summarize(&[10.0, 12.0, 8.0, 10.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 10.0).abs() < 1e-12);
        assert_eq!(s.min, 8.0);
        assert_eq!(s.max, 12.0);
        assert!(s.ci95 > 0.0);
        let single = summarize(&[5.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci95, 0.0);
    }
}
