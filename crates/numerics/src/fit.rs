//! Distribution fitting.
//!
//! Figure 3 of the paper fits the model-derived spot-price PDF (Eqs. 6–7
//! under Pareto or exponential arrivals) to the empirical price histogram by
//! least squares over the parameters `(β, θ, α)` or `(β, θ, η)`, reporting
//! mean-squared errors below `1e-6`. This module provides the generic
//! histogram least-squares fitter used there plus closed-form maximum-
//! likelihood estimators for the two arrival families.

use crate::dist::{Exponential, Pareto};
use crate::optimize::nelder_mead;
use crate::{NumericsError, Result};

/// Outcome of a parametric fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// Fitted parameter vector, in the caller's ordering.
    pub params: Vec<f64>,
    /// Mean squared error between the fitted PDF and the target histogram
    /// densities.
    pub mse: f64,
}

/// Least-squares fit of a parametric PDF to histogram data.
///
/// `model(params, x)` must return the model density at `x`, or `None` when
/// `params` is out of its valid domain (the fitter treats that as infinite
/// error, steering the search back inside). `starts` provides one or more
/// initial parameter vectors; the best converged fit across starts wins —
/// cheap insurance against Nelder–Mead stalling in a poor basin.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] if the histogram is empty, lengths
/// mismatch, or `starts` is empty.
pub fn fit_pdf_least_squares<M>(
    model: M,
    centers: &[f64],
    densities: &[f64],
    starts: &[Vec<f64>],
    steps: &[f64],
) -> Result<FitResult>
where
    M: Fn(&[f64], f64) -> Option<f64>,
{
    if centers.is_empty() || centers.len() != densities.len() || starts.is_empty() {
        return Err(NumericsError::EmptyInput {
            routine: "fit_pdf_least_squares",
        });
    }
    let objective = |params: &[f64]| -> f64 {
        let mut acc = 0.0;
        for (&x, &d) in centers.iter().zip(densities) {
            match model(params, x) {
                Some(y) if y.is_finite() => acc += (y - d).powi(2),
                _ => return f64::INFINITY,
            }
        }
        acc / centers.len() as f64
    };
    let mut best: Option<FitResult> = None;
    for x0 in starts {
        if x0.len() != steps.len() {
            return Err(NumericsError::EmptyInput {
                routine: "fit_pdf_least_squares (starts/steps length mismatch)",
            });
        }
        let (params, err) = nelder_mead(objective, x0, steps, 1e-14, 4000)?;
        if best.as_ref().is_none_or(|b| err < b.mse) {
            best = Some(FitResult { params, mse: err });
        }
    }
    Ok(best.expect("at least one start"))
}

/// Maximum-likelihood exponential fit: the MLE of the mean is the sample
/// mean.
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty slice, or parameter errors if
/// the sample mean is not positive.
pub fn mle_exponential(samples: &[f64]) -> Result<Exponential> {
    let m = crate::stats::mean(samples)?;
    Exponential::new(m)
}

/// Maximum-likelihood Pareto fit.
///
/// With `x_min` fixed (e.g. the paper's `Λ_min = h⁻¹(π_min)`), the MLE of
/// the shape is `α̂ = n / Σ ln(x_i / x_min)`. When `x_min` is `None` the
/// sample minimum is used (its own MLE).
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] on an empty slice;
/// [`NumericsError::InvalidParameter`] if any sample lies below `x_min` or
/// all samples equal `x_min` (degenerate likelihood).
pub fn mle_pareto(samples: &[f64], x_min: Option<f64>) -> Result<Pareto> {
    if samples.is_empty() {
        return Err(NumericsError::EmptyInput {
            routine: "mle_pareto",
        });
    }
    let xm = match x_min {
        Some(v) => v,
        None => samples.iter().cloned().fold(f64::INFINITY, f64::min),
    };
    if !(xm > 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "x_min",
            value: xm,
            requirement: "must be > 0",
        });
    }
    let mut log_sum = 0.0;
    for &x in samples {
        if x < xm {
            return Err(NumericsError::InvalidParameter {
                name: "samples",
                value: x,
                requirement: "all samples must be >= x_min",
            });
        }
        log_sum += (x / xm).ln();
    }
    if log_sum <= 0.0 {
        return Err(NumericsError::InvalidParameter {
            name: "samples",
            value: xm,
            requirement: "samples must not all equal x_min",
        });
    }
    Pareto::new(xm, samples.len() as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ContinuousDist;
    use crate::empirical::Empirical;
    use crate::rng::Rng;

    #[test]
    fn mle_exponential_recovers_mean() {
        let d = Exponential::new(2.5).unwrap();
        let mut rng = Rng::seed_from_u64(4);
        let xs = d.sample_n(&mut rng, 50_000);
        let fitted = mle_exponential(&xs).unwrap();
        assert!((fitted.eta() - 2.5).abs() < 0.05, "{}", fitted.eta());
    }

    #[test]
    fn mle_pareto_recovers_shape() {
        let d = Pareto::new(1.0, 5.0).unwrap();
        let mut rng = Rng::seed_from_u64(5);
        let xs = d.sample_n(&mut rng, 50_000);
        let fitted = mle_pareto(&xs, Some(1.0)).unwrap();
        assert!((fitted.alpha() - 5.0).abs() < 0.1, "{}", fitted.alpha());
        // Free x_min: close to the true scale.
        let free = mle_pareto(&xs, None).unwrap();
        assert!((free.x_min() - 1.0).abs() < 0.01);
    }

    #[test]
    fn mle_pareto_rejects_bad_inputs() {
        assert!(mle_pareto(&[], None).is_err());
        assert!(mle_pareto(&[1.0, 2.0], Some(1.5)).is_err()); // sample below x_min
        assert!(mle_pareto(&[1.0, 1.0], Some(1.0)).is_err()); // degenerate
        assert!(mle_pareto(&[-1.0, 2.0], None).is_err()); // non-positive x_min
    }

    #[test]
    fn least_squares_recovers_exponential_pdf() {
        // Histogram of exponential samples, fit f(x) = (1/eta) e^(-x/eta).
        let d = Exponential::new(0.7).unwrap();
        let mut rng = Rng::seed_from_u64(6);
        let emp = Empirical::from_samples(&d.sample_n(&mut rng, 100_000)).unwrap();
        let (centers, dens) = emp.histogram(60).unwrap();
        let model = |p: &[f64], x: f64| {
            let eta = p[0];
            if eta <= 1e-9 {
                None
            } else {
                Some((-x / eta).exp() / eta)
            }
        };
        let fit =
            fit_pdf_least_squares(model, &centers, &dens, &[vec![1.0], vec![0.2]], &[0.2]).unwrap();
        assert!((fit.params[0] - 0.7).abs() < 0.05, "{:?}", fit.params);
        assert!(fit.mse < 0.05, "mse {}", fit.mse);
    }

    #[test]
    fn least_squares_recovers_pareto_pdf() {
        let d = Pareto::new(0.5, 4.0).unwrap();
        let mut rng = Rng::seed_from_u64(8);
        // Truncate the tail so histogram bins are well-populated.
        let xs: Vec<f64> = d
            .sample_n(&mut rng, 200_000)
            .into_iter()
            .filter(|&x| x < 3.0)
            .collect();
        let emp = Empirical::from_samples(&xs).unwrap();
        let (centers, dens) = emp.histogram(80).unwrap();
        // Fit shape with known x_min, renormalized over the truncation.
        let model = |p: &[f64], x: f64| {
            let alpha = p[0];
            if alpha <= 0.1 {
                return None;
            }
            let raw = alpha * 0.5f64.powf(alpha) / x.powf(alpha + 1.0);
            let trunc_mass = 1.0 - (0.5f64 / 3.0).powf(alpha);
            Some(raw / trunc_mass)
        };
        let fit =
            fit_pdf_least_squares(model, &centers, &dens, &[vec![2.0], vec![6.0]], &[0.5]).unwrap();
        assert!((fit.params[0] - 4.0).abs() < 0.3, "{:?}", fit.params);
    }

    #[test]
    fn least_squares_multi_start_picks_best() {
        // Objective with a false basin: model density must be positive, so a
        // negative-parameter start must be escaped or out-scored.
        let centers = [0.5, 1.0, 1.5];
        let dens = [1.0, 0.5, 0.25];
        let model = |p: &[f64], x: f64| {
            if p[0] <= 0.0 {
                None
            } else {
                Some((-x / p[0]).exp() / p[0])
            }
        };
        let fit = fit_pdf_least_squares(model, &centers, &dens, &[vec![-1.0], vec![1.0]], &[0.3])
            .unwrap();
        assert!(fit.mse.is_finite());
        assert!(fit.params[0] > 0.0);
    }

    #[test]
    fn least_squares_validation() {
        let model = |_: &[f64], _: f64| Some(0.0);
        assert!(fit_pdf_least_squares(model, &[], &[], &[vec![1.0]], &[0.1]).is_err());
        assert!(fit_pdf_least_squares(model, &[1.0], &[1.0], &[], &[0.1]).is_err());
        assert!(fit_pdf_least_squares(model, &[1.0], &[1.0, 2.0], &[vec![1.0]], &[0.1]).is_err());
    }
}
