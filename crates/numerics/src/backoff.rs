//! Seeded bounded-exponential-backoff with jitter.
//!
//! Every retry loop in the workspace that waits between attempts — the
//! serve crate's feed reconnects, the client runtime's feed-outage budget —
//! derives its schedule from this one implementation so the two layers can
//! never drift apart. The schedule is *deterministic*: delays are a pure
//! function of the config, the `u64` seed, and the number of draws made so
//! far, which is what lets the chaos harness replay a reconnect storm
//! bit-for-bit from a seed.
//!
//! The shape is classic capped exponential backoff with multiplicative
//! jitter: attempt `k` sleeps `min(base·2ᵏ, cap) · (1 − jitter·u_k)` where
//! `u_k ∈ [0, 1)` comes from a seeded [`Rng`]. After `max_retries` draws the
//! schedule is exhausted and [`Backoff::next_delay`] returns `None` — the
//! caller's signal to give up (the client runtime declares the feed lost;
//! the serve crate flips into degraded advisory mode).

use std::time::Duration;

use crate::rng::Rng;
use crate::{NumericsError, Result};

/// Parameters of a bounded-exponential-backoff schedule.
///
/// `jitter` is the *fraction* of each delay that may be shaved off by the
/// seeded uniform draw (0 = pure exponential, 1 = full jitter down to zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay of the first retry (before jitter).
    pub base: Duration,
    /// Upper bound on any single delay (before jitter).
    pub cap: Duration,
    /// Number of retries before the schedule is exhausted.
    pub max_retries: u32,
    /// Fraction of each delay subject to jitter, in `[0, 1]`.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    /// The workspace-wide feed-reconnect schedule: 100 ms doubling to a 2 s
    /// cap, half-jittered, three retries. `max_retries = 3` is what the
    /// client runtime's default [`RecoveryPolicy`] feed-outage budget is
    /// derived from (see `spotbid-engine`'s `single` module).
    ///
    /// [`RecoveryPolicy`]: https://docs.rs/spotbid-engine
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            max_retries: 3,
            jitter: 0.5,
        }
    }
}

impl BackoffConfig {
    /// Validates the config: `jitter ∈ [0, 1]` and `base <= cap`.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidParameter`] on violation (NaN jitter fails
    /// the range check).
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(NumericsError::InvalidParameter {
                name: "jitter",
                value: self.jitter,
                requirement: "jitter fraction must be in [0, 1]",
            });
        }
        if self.base > self.cap {
            return Err(NumericsError::InvalidParameter {
                name: "base",
                value: self.base.as_secs_f64(),
                requirement: "base delay must not exceed cap",
            });
        }
        Ok(())
    }
}

/// A deterministic, seeded backoff schedule in progress.
///
/// # Example
///
/// ```
/// use spotbid_numerics::backoff::{Backoff, BackoffConfig};
///
/// let mut b = Backoff::new(BackoffConfig::default(), 7).unwrap();
/// let mut delays = Vec::new();
/// while let Some(d) = b.next_delay() {
///     delays.push(d);
/// }
/// assert_eq!(delays.len(), 3);
/// // Same seed → bit-identical schedule.
/// let mut b2 = Backoff::new(BackoffConfig::default(), 7).unwrap();
/// assert_eq!(b2.next_delay(), Some(delays[0]));
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    rng: Rng,
    attempt: u32,
}

impl Backoff {
    /// Starts a schedule from a validated config and a seed.
    ///
    /// # Errors
    ///
    /// Propagates [`BackoffConfig::validate`].
    pub fn new(cfg: BackoffConfig, seed: u64) -> Result<Self> {
        cfg.validate()?;
        Ok(Backoff {
            cfg,
            rng: Rng::seed_from_u64(seed),
            attempt: 0,
        })
    }

    /// The delay before the next retry, or `None` once `max_retries` draws
    /// have been made — the signal to stop retrying.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.cfg.max_retries {
            return None;
        }
        // min(base·2^k, cap): shifting past the cap saturates rather than
        // overflowing, so huge retry counts stay well-defined.
        let raw = self
            .cfg
            .base
            .checked_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .map_or(self.cfg.cap, |d| d.min(self.cfg.cap));
        let u = self.rng.next_f64();
        self.attempt += 1;
        Some(raw.mul_f64(1.0 - self.cfg.jitter * u))
    }

    /// Number of delays drawn since construction or the last [`reset`].
    ///
    /// [`reset`]: Self::reset
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// True once the schedule has no delays left.
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.cfg.max_retries
    }

    /// Rewinds the attempt counter after a success, restarting the
    /// exponential ramp. The RNG is *not* rewound: later retry rounds keep
    /// drawing fresh jitter, so the full delay stream stays a deterministic
    /// function of the seed and the call sequence.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The config this schedule was built from.
    pub fn config(&self) -> &BackoffConfig {
        &self.cfg
    }
}

/// Collects one full schedule (all `max_retries` delays) for a config and
/// seed. Convenience for tests and for budget derivation.
///
/// # Errors
///
/// Propagates [`BackoffConfig::validate`].
pub fn schedule(cfg: BackoffConfig, seed: u64) -> Result<Vec<Duration>> {
    let mut b = Backoff::new(cfg, seed)?;
    let mut out = Vec::with_capacity(cfg.max_retries as usize);
    while let Some(d) = b.next_delay() {
        out.push(d);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(base_ms: u64, cap_ms: u64, retries: u32, jitter: f64) -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            max_retries: retries,
            jitter,
        }
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Backoff::new(cfg(100, 50, 3, 0.5), 1).is_err());
        assert!(Backoff::new(cfg(10, 100, 3, 1.5), 1).is_err());
        assert!(Backoff::new(cfg(10, 100, 3, -0.1), 1).is_err());
        assert!(Backoff::new(cfg(10, 100, 3, f64::NAN), 1).is_err());
        assert!(Backoff::new(cfg(10, 100, 3, 0.0), 1).is_ok());
    }

    #[test]
    fn zero_jitter_is_pure_capped_exponential() {
        let ds = schedule(cfg(100, 450, 5, 0.0), 9).unwrap();
        let ms: Vec<u128> = ds.iter().map(Duration::as_millis).collect();
        assert_eq!(ms, vec![100, 200, 400, 450, 450]);
    }

    #[test]
    fn exhaustion_and_reset() {
        let mut b = Backoff::new(cfg(1, 8, 2, 0.5), 3).unwrap();
        assert!(!b.exhausted());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert_eq!(b.attempts(), 2);
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert!(!b.exhausted());
        assert!(b.next_delay().is_some());
    }

    /// The delay sequence is a deterministic function of (config, seed):
    /// pinned here both against a from-first-principles recomputation and
    /// against literal nanosecond values, so any change to the formula or
    /// to the RNG consumption order is caught.
    #[test]
    fn pinned_deterministic_delay_sequence() {
        let c = cfg(100, 2000, 4, 0.5);
        let ds = schedule(c, 0xC1A05).unwrap();

        // First principles: min(base·2^k, cap) · (1 − jitter·u_k).
        let mut rng = Rng::seed_from_u64(0xC1A05);
        for (k, d) in ds.iter().enumerate() {
            let raw = Duration::from_millis(100 * (1 << k)).min(c.cap);
            let expect = raw.mul_f64(1.0 - 0.5 * rng.next_f64());
            assert_eq!(*d, expect, "attempt {k}");
        }

        // Literal snapshot: regressions in `Rng` itself would silently pass
        // the recomputation above, but not this.
        let nanos: Vec<u128> = ds.iter().map(Duration::as_nanos).collect();
        assert_eq!(
            nanos,
            vec![65_466_137, 105_093_759, 371_405_760, 593_681_512]
        );
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let c = cfg(50, 1000, 6, 0.9);
        let a = schedule(c, 42).unwrap();
        let b = schedule(c, 42).unwrap();
        assert_eq!(a, b);
        let other = schedule(c, 43).unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn delays_respect_bounds() {
        for seed in 0..32u64 {
            let c = cfg(10, 160, 8, 1.0);
            for (k, d) in schedule(c, seed).unwrap().iter().enumerate() {
                let raw = Duration::from_millis(10 * (1u64 << k.min(4))).min(c.cap);
                assert!(*d <= raw, "seed {seed} attempt {k}: {d:?} > {raw:?}");
            }
        }
    }

    #[test]
    fn huge_attempt_counts_saturate_at_cap() {
        let mut b = Backoff::new(cfg(100, 500, 64, 0.0), 1).unwrap();
        let mut last = Duration::ZERO;
        for _ in 0..64 {
            last = b.next_delay().unwrap();
        }
        assert_eq!(last, Duration::from_millis(500));
    }
}
