//! Scalar and low-dimensional minimization.
//!
//! Used in two places:
//!
//! - the user's cost functions `Φ_so`, `Φ_sp`, `Φ_mp` (Eqs. 10, 15, 19) are
//!   minimized over the bid price — unimodal on smooth price models
//!   (Proposition 5 proves first-decreasing-then-increasing), so
//!   golden-section search applies; on empirical models the refining grid
//!   search is the robust fallback;
//! - Figure 3's least-squares fit of the model PDF to the empirical price
//!   histogram over `(β, θ, α)` / `(β, θ, η)` uses Nelder–Mead.

use crate::{NumericsError, Result};

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// Returns `(x_min, f(x_min))` with `x` resolved to `tol`.
///
/// # Errors
///
/// [`NumericsError::InvalidInterval`] if the interval is malformed.
pub fn golden_section_min<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<(f64, f64)> {
    if !(a < b) || !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::InvalidInterval { a, b });
    }
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0; // 1/φ ≈ 0.618
    let mut lo = a;
    let mut hi = b;
    let mut x1 = hi - inv_phi * (hi - lo);
    let mut x2 = lo + inv_phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    while (hi - lo) > tol {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - inv_phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + inv_phi * (hi - lo);
            f2 = f(x2);
        }
    }
    let x = 0.5 * (lo + hi);
    Ok((x, f(x)))
}

/// Refining grid search: evaluates `f` on `n`-point grids over `[a, b]`,
/// zooming into the neighbourhood of the best point for `rounds` rounds.
///
/// Unlike golden-section this does not assume unimodality, so it is the
/// safe choice for the piecewise-constant cost curves induced by empirical
/// price distributions. Returns `(x_min, f(x_min))`.
///
/// # Errors
///
/// [`NumericsError::InvalidInterval`] if the interval is malformed, or
/// [`NumericsError::EmptyInput`] if `n < 2`.
pub fn grid_min_refine<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    n: usize,
    rounds: usize,
) -> Result<(f64, f64)> {
    if !(a <= b) || !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::InvalidInterval { a, b });
    }
    if n < 2 {
        return Err(NumericsError::EmptyInput {
            routine: "grid_min_refine",
        });
    }
    let mut lo = a;
    let mut hi = b;
    let mut best_x = a;
    let mut best_f = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let h = (hi - lo) / (n - 1) as f64;
        let mut round_best_i = 0;
        for i in 0..n {
            let x = lo + i as f64 * h;
            let v = f(x);
            if v < best_f {
                best_f = v;
                best_x = x;
                round_best_i = i;
            }
        }
        // Zoom into one grid cell either side of the best point.
        let new_lo = lo + round_best_i.saturating_sub(1) as f64 * h;
        let new_hi = (lo + (round_best_i + 1) as f64 * h).min(hi);
        if new_hi - new_lo < f64::EPSILON * (1.0 + hi.abs()) {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    Ok((best_x, best_f))
}

/// Nelder–Mead downhill-simplex minimization in `dim` dimensions.
///
/// `x0` is the initial point; `step` the initial simplex edge lengths.
/// Stops after `max_iter` iterations or when the simplex's function-value
/// spread falls below `ftol`. Returns `(x_min, f_min)`.
///
/// Standard coefficients (reflection 1, expansion 2, contraction ½,
/// shrink ½). Restart-free; callers wanting robustness against local
/// minima should multi-start with different `x0` (the fitting code does).
///
/// # Errors
///
/// [`NumericsError::EmptyInput`] if `x0` is empty or lengths mismatch.
pub fn nelder_mead<F: Fn(&[f64]) -> f64>(
    f: F,
    x0: &[f64],
    step: &[f64],
    ftol: f64,
    max_iter: usize,
) -> Result<(Vec<f64>, f64)> {
    let dim = x0.len();
    if dim == 0 || step.len() != dim {
        return Err(NumericsError::EmptyInput {
            routine: "nelder_mead",
        });
    }
    // Build initial simplex: x0 plus one vertex per coordinate offset.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(dim + 1);
    simplex.push(x0.to_vec());
    for i in 0..dim {
        let mut v = x0.to_vec();
        v[i] += if step[i] != 0.0 { step[i] } else { 1e-3 };
        simplex.push(v);
    }
    let mut fv: Vec<f64> = simplex.iter().map(|v| f(v)).collect();

    for _ in 0..max_iter {
        // Order vertices by function value.
        let mut idx: Vec<usize> = (0..=dim).collect();
        idx.sort_by(|&i, &j| {
            fv[i]
                .partial_cmp(&fv[j])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let best = idx[0];
        let worst = idx[dim];
        let second_worst = idx[dim - 1];
        if (fv[worst] - fv[best]).abs() <= ftol * (1.0 + fv[best].abs()) {
            return Ok((simplex[best].clone(), fv[best]));
        }
        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; dim];
        for (i, v) in simplex.iter().enumerate() {
            if i != worst {
                for d in 0..dim {
                    centroid[d] += v[d] / dim as f64;
                }
            }
        }
        let lerp = |t: f64| -> Vec<f64> {
            (0..dim)
                .map(|d| centroid[d] + t * (centroid[d] - simplex[worst][d]))
                .collect()
        };
        let xr = lerp(1.0);
        let fr = f(&xr);
        if fr < fv[best] {
            let xe = lerp(2.0);
            let fe = f(&xe);
            if fe < fr {
                simplex[worst] = xe;
                fv[worst] = fe;
            } else {
                simplex[worst] = xr;
                fv[worst] = fr;
            }
        } else if fr < fv[second_worst] {
            simplex[worst] = xr;
            fv[worst] = fr;
        } else {
            let xc = lerp(-0.5);
            let fc = f(&xc);
            if fc < fv[worst] {
                simplex[worst] = xc;
                fv[worst] = fc;
            } else {
                // Shrink towards the best vertex.
                let best_v = simplex[best].clone();
                for (i, v) in simplex.iter_mut().enumerate() {
                    if i != best {
                        for d in 0..dim {
                            v[d] = best_v[d] + 0.5 * (v[d] - best_v[d]);
                        }
                        fv[i] = f(v);
                    }
                }
            }
        }
    }
    let (i, _) = fv
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("simplex non-empty");
    Ok((simplex[i].clone(), fv[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let (x, v) = golden_section_min(|x| (x - 1.7).powi(2) + 3.0, -10.0, 10.0, 1e-10).unwrap();
        // Comparison-based minimization resolves x only to ~sqrt(eps) scale
        // near a flat quadratic minimum, even with a tighter interval tol.
        assert!((x - 1.7).abs() < 1e-6);
        assert!((v - 3.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        let (x, _) = golden_section_min(|x| x, 2.0, 5.0, 1e-10).unwrap();
        assert!((x - 2.0).abs() < 1e-8);
    }

    #[test]
    fn golden_section_bad_interval() {
        assert!(golden_section_min(|x| x, 5.0, 2.0, 1e-8).is_err());
    }

    #[test]
    fn grid_refine_multimodal_global() {
        // Two minima; the global one at x ≈ 4.5 is the answer.
        let f = |x: f64| (x - 1.0).powi(2).min((x - 4.5).powi(2) - 0.5);
        let (x, _) = grid_min_refine(f, 0.0, 6.0, 101, 6).unwrap();
        assert!((x - 4.5).abs() < 1e-3, "{x}");
    }

    #[test]
    fn grid_refine_step_function() {
        // Piecewise constant with the minimum plateau on [2, 3).
        let f = |x: f64| if (2.0..3.0).contains(&x) { -1.0 } else { 0.0 };
        let (x, v) = grid_min_refine(f, 0.0, 5.0, 51, 4).unwrap();
        assert_eq!(v, -1.0);
        assert!((2.0..3.0).contains(&x));
    }

    #[test]
    fn grid_refine_validation() {
        assert!(grid_min_refine(|x| x, 1.0, 0.0, 10, 2).is_err());
        assert!(grid_min_refine(|x| x, 0.0, 1.0, 1, 2).is_err());
        // Degenerate zero-width interval is allowed.
        let (x, _) = grid_min_refine(|x| x, 2.0, 2.0, 5, 2).unwrap();
        assert_eq!(x, 2.0);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let rosen = |v: &[f64]| (1.0 - v[0]).powi(2) + 100.0 * (v[1] - v[0] * v[0]).powi(2);
        let (x, fval) = nelder_mead(rosen, &[-1.2, 1.0], &[0.5, 0.5], 1e-14, 5000).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-4, "{x:?}");
        assert!((x[1] - 1.0).abs() < 1e-4, "{x:?}");
        assert!(fval < 1e-8);
    }

    #[test]
    fn nelder_mead_3d_sphere() {
        let f = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        let (x, fval) = nelder_mead(f, &[3.0, -2.0, 1.0], &[1.0, 1.0, 1.0], 1e-14, 5000).unwrap();
        assert!(x.iter().all(|c| c.abs() < 1e-5), "{x:?}");
        assert!(fval < 1e-9);
    }

    #[test]
    fn nelder_mead_validation() {
        assert!(nelder_mead(|_| 0.0, &[], &[], 1e-8, 10).is_err());
        assert!(nelder_mead(|_| 0.0, &[1.0], &[], 1e-8, 10).is_err());
    }
}
