//! Scalar root finding.
//!
//! Proposition 5's optimal persistent bid is `p* = ψ⁻¹(t_k/t_r − 1)`; the
//! inversion of `ψ` (and of `h` in the provider model) is done with the
//! bracketing methods here. Both methods require a sign change on the input
//! interval and return [`crate::NumericsError::NoBracket`] otherwise, which
//! callers in `spotbid-core` surface as "no feasible bid".

use crate::{NumericsError, Result};

/// Bisection on `[a, b]` to absolute tolerance `tol` on `x`.
///
/// Robust and simple; ~50 iterations for full `f64` resolution. Exact
/// endpoint roots are returned immediately.
///
/// # Errors
///
/// [`NumericsError::InvalidInterval`] if the interval is malformed, or
/// [`NumericsError::NoBracket`] if `f(a)` and `f(b)` have the same sign.
pub fn bisect<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !(a < b) || !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::InvalidInterval { a, b });
    }
    let mut lo = a;
    let mut hi = b;
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::NoBracket { a, b });
    }
    // 200 iterations is more than enough to reach any tol >= f64 epsilon
    // scale on a finite interval.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Brent's method on `[a, b]`: bisection safety with inverse-quadratic /
/// secant acceleration. Converges superlinearly on smooth functions.
///
/// # Errors
///
/// Same contract as [`bisect`].
pub fn brent<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !(a < b) || !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::InvalidInterval { a, b });
    }
    let mut xa = a;
    let mut xb = b;
    let mut fa = f(xa);
    let mut fb = f(xb);
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::NoBracket { a, b });
    }
    // Ensure |f(xb)| <= |f(xa)|: xb is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut xa, &mut xb);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut mflag = true;
    let mut xd = xa; // previous xc; only read after first iteration
    for _ in 0..200 {
        if fb == 0.0 || (xb - xa).abs() < tol {
            return Ok(xb);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            xa * fb * fc / ((fa - fb) * (fa - fc))
                + xb * fa * fc / ((fb - fa) * (fb - fc))
                + xc * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            xb - fb * (xb - xa) / (fb - fa)
        };
        let lo = 0.25 * (3.0 * xa + xb);
        let between = if lo < xb {
            (lo..=xb).contains(&s)
        } else {
            (xb..=lo).contains(&s)
        };
        let cond = !between
            || (mflag && (s - xb).abs() >= 0.5 * (xb - xc).abs())
            || (!mflag && (s - xb).abs() >= 0.5 * (xc - xd).abs())
            || (mflag && (xb - xc).abs() < tol)
            || (!mflag && (xc - xd).abs() < tol);
        if cond {
            s = 0.5 * (xa + xb);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        xd = xc;
        xc = xb;
        fc = fb;
        if fa.signum() != fs.signum() {
            xb = s;
            fb = fs;
        } else {
            xa = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut xa, &mut xb);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Ok(xb)
}

/// Finds a sign-change bracket for `f` by scanning `n` equal subintervals of
/// `[a, b]`, returning the first `(lo, hi)` with `f(lo)·f(hi) <= 0`.
///
/// The `ψ` function of Proposition 5 is only piecewise-smooth on empirical
/// price models, so the core crate scans for a bracket before refining with
/// [`brent`].
pub fn scan_bracket<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> Option<(f64, f64)> {
    if !(a < b) || n == 0 {
        return None;
    }
    let h = (b - a) / n as f64;
    let mut x0 = a;
    let mut f0 = f(x0);
    for i in 1..=n {
        let x1 = a + i as f64 * h;
        let f1 = f(x1);
        if f0 == 0.0 || f0.signum() != f1.signum() {
            return Some((x0, x1));
        }
        x0 = x1;
        f0 = f1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_simple() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_no_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(NumericsError::NoBracket { .. })
        ));
    }

    #[test]
    fn bisect_bad_interval() {
        assert!(matches!(
            bisect(|x| x, 1.0, 0.0, 1e-9),
            Err(NumericsError::InvalidInterval { .. })
        ));
        assert!(bisect(|x| x, f64::NAN, 1.0, 1e-9).is_err());
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.cos() - x;
        let rb = bisect(f, 0.0, 1.0, 1e-13).unwrap();
        let rr = brent(f, 0.0, 1.0, 1e-13).unwrap();
        assert!((rb - rr).abs() < 1e-10);
        assert!((rr - 0.739_085_133_215_160_6).abs() < 1e-10);
    }

    #[test]
    fn brent_hard_function() {
        // Nearly flat then steep: stress the safeguard logic.
        let f = |x: f64| (x - 3.0).powi(3) + 1e-6 * (x - 3.0);
        let r = brent(f, 0.0, 10.0, 1e-13).unwrap();
        assert!((r - 3.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn brent_no_bracket() {
        assert!(brent(|_| 1.0, 0.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn scan_bracket_finds_interior_root() {
        let (lo, hi) = scan_bracket(|x| (x - 0.37).sin(), 0.0, 1.0, 50).unwrap();
        assert!(lo <= 0.37 && 0.37 <= hi);
    }

    #[test]
    fn scan_bracket_none_when_no_root() {
        assert!(scan_bracket(|x| x * x + 1.0, -1.0, 1.0, 100).is_none());
        assert!(scan_bracket(|x| x, 1.0, 0.0, 10).is_none());
    }
}
