//! Numerical integration.
//!
//! The bidding strategies evaluate `E[π | π ≤ p] = ∫ x f(x) dx / F(p)`
//! (Eq. 9) for analytic price models, and the fitting code normalizes
//! model PDFs over the observed price range. Both need reliable
//! one-dimensional quadrature.

/// Composite trapezoid rule with `n` panels.
///
/// Exact for affine integrands; `O(h^2)` otherwise. Used as a cheap
/// cross-check against [`adaptive_simpson`] in tests and for integrands with
/// step discontinuities where adaptivity offers no benefit.
///
/// # Panics
///
/// Panics if `n == 0` (internal misuse).
pub fn trapezoid<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "trapezoid needs at least one panel");
    if a == b {
        return 0.0;
    }
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + i as f64 * h);
    }
    acc * h
}

/// Adaptive Simpson quadrature on `[a, b]` with absolute tolerance `tol`.
///
/// `max_depth` bounds recursion; 20–24 is ample for the smooth PDFs used in
/// this workspace. When the depth limit is hit the best local estimate is
/// returned rather than erroring: integrands here are probability densities
/// whose worst case is a sharp but integrable peak, where the local estimate
/// is still accurate to far better than simulation noise.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64, max_depth: u32) -> f64 {
    if a == b {
        return 0.0;
    }
    if a > b {
        return -adaptive_simpson(f, b, a, tol, max_depth);
    }
    let m = 0.5 * (a + b);
    let fa = f(a);
    let fm = f(m);
    let fb = f(b);
    let whole = simpson_panel(a, b, fa, fm, fb);
    simpson_recurse(&f, a, b, fa, fm, fb, whole, tol, max_depth)
}

fn simpson_panel(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_panel(a, m, fa, flm, fm);
    let right = simpson_panel(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation of the two half-panel estimates.
        left + right + delta / 15.0
    } else {
        simpson_recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + simpson_recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

/// Cumulative trapezoid: returns the running integral of `f` sampled at the
/// given sorted abscissae. `out[i]` approximates `∫_{xs[0]}^{xs[i]} f`.
///
/// Used to precompute `∫ x f(x) dx` tables for analytic price models so the
/// per-bid-evaluation cost is a lookup, not a quadrature.
pub fn cumulative_trapezoid(xs: &[f64], ys: &[f64]) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0;
    for i in 0..xs.len() {
        if i > 0 {
            acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_exact_for_linear() {
        let v = trapezoid(|x| 2.0 * x + 1.0, 0.0, 4.0, 3);
        assert!((v - 20.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_zero_width() {
        assert_eq!(trapezoid(|x| x * x, 2.0, 2.0, 10), 0.0);
    }

    #[test]
    fn simpson_polynomials_exact() {
        // Simpson is exact for cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x, -1.0, 3.0, 1e-12, 20);
        let exact = (3.0f64.powi(4) / 4.0 - 9.0) - (0.25 - 1.0);
        assert!((v - exact).abs() < 1e-10, "{v} vs {exact}");
    }

    #[test]
    fn simpson_transcendental() {
        let v = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12, 24);
        assert!((v - 2.0).abs() < 1e-10);
        let v = adaptive_simpson(f64::exp, 0.0, 1.0, 1e-12, 24);
        assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-10);
    }

    #[test]
    fn simpson_reversed_interval_negates() {
        let a = adaptive_simpson(|x| x * x, 0.0, 2.0, 1e-10, 20);
        let b = adaptive_simpson(|x| x * x, 2.0, 0.0, 1e-10, 20);
        assert!((a + b).abs() < 1e-12);
    }

    #[test]
    fn simpson_sharp_peak() {
        // A narrow Gaussian bump: total mass 1.
        let s = 1e-3;
        let f =
            |x: f64| (-0.5 * ((x - 0.5) / s).powi(2)).exp() / (s * (std::f64::consts::TAU).sqrt());
        let v = adaptive_simpson(f, 0.0, 1.0, 1e-10, 40);
        assert!((v - 1.0).abs() < 1e-6, "mass {v}");
    }

    #[test]
    fn simpson_agrees_with_trapezoid() {
        let f = |x: f64| (1.0 + x * x).ln();
        let s = adaptive_simpson(f, 0.0, 2.0, 1e-10, 20);
        let t = trapezoid(f, 0.0, 2.0, 200_000);
        assert!((s - t).abs() < 1e-6);
    }

    #[test]
    fn cumulative_trapezoid_matches_analytic() {
        let xs: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        let cum = cumulative_trapezoid(&xs, &ys);
        assert_eq!(cum[0], 0.0);
        // ∫_0^1 x^2 = 1/3.
        assert!((cum[1000] - 1.0 / 3.0).abs() < 1e-6);
        // Monotone for non-negative integrand.
        assert!(cum.windows(2).all(|w| w[1] >= w[0]));
    }
}
