//! Continuous uniform distribution.

use super::ContinuousDist;
use crate::{NumericsError, Result};

/// Uniform distribution on `[lo, hi]`.
///
/// §4.1 of the paper models the distribution of user bid prices received by
/// the provider as uniform on `[π_min, π̄]` (`f_p(x) = 1/(π̄ − π_min)`),
/// which is what makes the accepted-bid count
/// `N(t) = L(t)·(π̄ − π(t))/(π̄ − π_min)` linear in the spot price and the
/// provider optimum (Eq. 3) closed-form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInterval`] unless `lo < hi` and both
    /// are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(NumericsError::InvalidInterval { a: lo, b: hi });
        }
        Ok(Uniform { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        self.lo + q * (self.hi - self.lo)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        (self.hi - self.lo).powi(2) / 12.0
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::test_support::check_coherence;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn coherence() {
        check_coherence(&Uniform::new(0.0, 1.0).unwrap(), 10);
        check_coherence(&Uniform::new(-3.0, 7.5).unwrap(), 11);
        // Price-like range: [pi_min, pi_bar] for r3.xlarge.
        check_coherence(&Uniform::new(0.035, 0.35).unwrap(), 12);
    }

    #[test]
    fn known_values() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        assert!((d.pdf(3.0) - 0.25).abs() < 1e-12);
        assert_eq!(d.pdf(1.0), 0.0);
        assert_eq!(d.pdf(7.0), 0.0);
        assert!((d.cdf(4.0) - 0.5).abs() < 1e-12);
        assert!((d.quantile(0.25) - 3.0).abs() < 1e-12);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
    }
}
