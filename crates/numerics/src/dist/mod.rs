//! Analytic continuous probability distributions.
//!
//! The paper models bid arrivals `Λ(t)` with Pareto and exponential
//! distributions (§4.3) and user valuations with a uniform distribution
//! (§4.1). Log-normal and Weibull are provided as well: they are the other
//! two shapes commonly fitted to cloud workload inter-arrival data (see the
//! paper's reference \[18\], "Beyond Poisson"), and the ablation benches use
//! them as alternative arrival hypotheses.

mod exponential;
mod lognormal;
mod pareto;
mod uniform;
mod weibull;

pub use exponential::Exponential;
pub use lognormal::LogNormal;
pub use pareto::Pareto;
pub use uniform::Uniform;
pub use weibull::Weibull;

use crate::rng::Rng;

/// A continuous probability distribution on (a subset of) the real line.
///
/// Implementations must satisfy the usual coherence properties, which the
/// workspace's property tests check for every implementation:
///
/// - `cdf` is non-decreasing, 0 at/below the lower support bound and → 1 at
///   the upper bound;
/// - `quantile(cdf(x)) ≈ x` on the interior of the support;
/// - `pdf` integrates to 1 over the support;
/// - `sample` draws match `cdf` (Kolmogorov–Smirnov).
pub trait ContinuousDist {
    /// Probability density at `x` (0 outside the support).
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Inverse CDF. `q` is clamped to `[0, 1]`; `quantile(0)` is the lower
    /// support bound and `quantile(1)` the upper (possibly `+inf`).
    fn quantile(&self, q: f64) -> f64;

    /// Expected value, or `f64::INFINITY` when it does not exist (e.g.
    /// Pareto with `alpha <= 1`).
    fn mean(&self) -> f64;

    /// Variance, or `f64::INFINITY` when it does not exist.
    fn variance(&self) -> f64;

    /// Support `(lo, hi)`; `hi` may be `f64::INFINITY`.
    fn support(&self) -> (f64, f64);

    /// Draws one sample. The default implementation inverts the CDF on a
    /// uniform open-(0,1) variate, which is exact for every distribution in
    /// this module.
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.quantile(rng.next_f64_open())
    }

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A dynamically-dispatched distribution, for heterogeneous collections
/// (e.g. the fitting harness trying several arrival hypotheses).
pub type DynDist = Box<dyn ContinuousDist + Send + Sync>;

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared coherence checks run against every distribution.
    use super::*;
    use crate::integrate::adaptive_simpson;

    /// Checks CDF/quantile/PDF/sampling coherence for a distribution.
    pub fn check_coherence<D: ContinuousDist>(d: &D, seed: u64) {
        let (lo, hi) = d.support();
        // CDF boundary behaviour.
        assert!(d.cdf(lo - 1.0) == 0.0, "cdf below support must be 0");
        if hi.is_finite() {
            assert!((d.cdf(hi) - 1.0).abs() < 1e-12, "cdf at hi must be 1");
        } else {
            assert!(d.cdf(1e12) > 0.999, "cdf must approach 1");
        }
        // Quantile inverts CDF.
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = d.quantile(q);
            assert!(
                (d.cdf(x) - q).abs() < 1e-9,
                "quantile/cdf mismatch at q={q}: x={x}, cdf={}",
                d.cdf(x)
            );
        }
        // CDF is non-decreasing across the bulk of the support.
        let upper = if hi.is_finite() {
            hi
        } else {
            d.quantile(0.999)
        };
        let mut prev = 0.0;
        for i in 0..=200 {
            let x = lo + (upper - lo) * i as f64 / 200.0;
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12, "cdf decreasing at {x}");
            assert!(d.pdf(x) >= 0.0, "negative pdf at {x}");
            prev = c;
        }
        // PDF integrates to ~1 over the bulk of the support. Distributions
        // with an infinite density at the boundary (e.g. Weibull k < 1)
        // are integrated from a low quantile instead of the exact endpoint.
        let q_hi = d.quantile(0.9999);
        let (q_lo, expected_mass) = if d.pdf(lo).is_finite() {
            (lo, 0.9999)
        } else {
            (d.quantile(1e-4), 0.9998)
        };
        let mass = adaptive_simpson(|x| d.pdf(x), q_lo, q_hi, 1e-9, 24);
        assert!(
            (mass - expected_mass).abs() < 1e-3,
            "pdf mass over [{q_lo}, q(0.9999)] = {mass}"
        );
        // Samples match the CDF (one-sample KS at n = 4000).
        let mut rng = Rng::seed_from_u64(seed);
        let xs = d.sample_n(&mut rng, 4000);
        let ks = crate::stats::ks_one_sample(&xs, |x| d.cdf(x)).expect("non-empty");
        assert!(
            ks.p_value > 1e-4,
            "sampler rejected by KS: D = {}, p = {}",
            ks.statistic,
            ks.p_value
        );
        // Sample mean matches analytic mean when the latter is finite and
        // the variance is finite (so the CLT applies cleanly).
        if d.mean().is_finite() && d.variance().is_finite() {
            let n = xs.len() as f64;
            let m = xs.iter().sum::<f64>() / n;
            let tol = 5.0 * (d.variance() / n).sqrt() + 1e-9;
            assert!(
                (m - d.mean()).abs() < tol,
                "sample mean {m} vs analytic {}",
                d.mean()
            );
        }
    }
}
