//! Log-normal distribution.

use super::ContinuousDist;
use crate::roots::bisect;
use crate::{NumericsError, Result};

/// Complementary error function, after the rational approximation in
/// Numerical Recipes (fractional error below `1.2e-7` everywhere).
pub(crate) fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF.
pub(crate) fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Log-normal distribution: `ln X ~ Normal(mu, sigma^2)`.
///
/// Included as an alternative arrival-process hypothesis for the fitting
/// ablations — log-normal is one of the shapes found to describe datacenter
/// request inter-arrivals in the paper's reference \[18\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-mean `mu` and log-std
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidParameter`] if `sigma <= 0` or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "mu",
                value: mu,
                requirement: "must be finite",
            });
        }
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                requirement: "must be finite and > 0",
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Log-scale mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-scale standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (std::f64::consts::TAU).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return 0.0;
        }
        if q >= 1.0 {
            return f64::INFINITY;
        }
        // Invert our own CDF numerically so that quantile(cdf(x)) == x to
        // bisection tolerance regardless of erfc's absolute accuracy. The
        // bracket expands geometrically around the median.
        let median = self.mu.exp();
        let mut lo = median;
        let mut hi = median;
        while self.cdf(lo) > q && lo > f64::MIN_POSITIVE {
            lo /= 4.0;
        }
        while self.cdf(hi) < q && hi < f64::MAX / 4.0 {
            hi *= 4.0;
        }
        bisect(|x| self.cdf(x) - q, lo, hi, 1e-13).unwrap_or(median)
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::test_support::check_coherence;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn coherence() {
        check_coherence(&LogNormal::new(0.0, 0.5).unwrap(), 20);
        check_coherence(&LogNormal::new(-1.0, 1.0).unwrap(), 21);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_792_949_715).abs() < 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(0.7, 0.9).unwrap();
        assert!((d.cdf(0.7f64.exp()) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn moments() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert!((d.mean() - 0.5f64.exp()).abs() < 1e-12);
        let expected_var = (1.0f64.exp() - 1.0) * 1.0f64.exp();
        assert!((d.variance() - expected_var).abs() < 1e-12);
    }
}
