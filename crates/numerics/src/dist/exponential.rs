//! Exponential distribution, parameterized by its mean.

use super::ContinuousDist;
use crate::{NumericsError, Result};

/// Exponential distribution with mean `eta > 0`:
///
/// ```text
/// f(x) = (1/eta) * exp(-x/eta),   x >= 0
/// ```
///
/// The paper writes the arrival PDF exactly this way in §4.3 (mean `η`
/// rather than rate `λ`), so we keep that parameterization. Figure 3's
/// fitted means are on the order of `1e-4`, reflecting how sharply the
/// empirical spot-price PDFs are concentrated near the price floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    eta: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidParameter`] if `eta <= 0` or is
    /// non-finite.
    pub fn new(eta: f64) -> Result<Self> {
        if !(eta > 0.0) || !eta.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "eta",
                value: eta,
                requirement: "must be finite and > 0",
            });
        }
        Ok(Exponential { eta })
    }

    /// The mean parameter `eta`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The rate parameter `1/eta`.
    pub fn rate(&self) -> f64 {
        1.0 / self.eta
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            (-x / self.eta).exp() / self.eta
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-x / self.eta).exp()
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            f64::INFINITY
        } else {
            -self.eta * (1.0 - q).ln()
        }
    }

    fn mean(&self) -> f64 {
        self.eta
    }

    fn variance(&self) -> f64 {
        self.eta * self.eta
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::test_support::check_coherence;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn coherence() {
        check_coherence(&Exponential::new(1.0).unwrap(), 1);
        check_coherence(&Exponential::new(0.25).unwrap(), 2);
        // A paper-scale tiny mean still behaves.
        check_coherence(&Exponential::new(1.3e-4).unwrap(), 3);
    }

    #[test]
    fn known_values() {
        let d = Exponential::new(2.0).unwrap();
        assert!((d.pdf(0.0) - 0.5).abs() < 1e-12);
        assert!((d.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!((d.quantile(0.5) - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.variance(), 4.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn memorylessness() {
        // P(X > s + t | X > s) = P(X > t).
        let d = Exponential::new(1.7).unwrap();
        let s = 0.9;
        let t = 1.3;
        let lhs = (1.0 - d.cdf(s + t)) / (1.0 - d.cdf(s));
        let rhs = 1.0 - d.cdf(t);
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
