//! Pareto (power-law) distribution.

use super::ContinuousDist;
use crate::{NumericsError, Result};

/// Pareto distribution with scale `x_min > 0` and shape `alpha > 0`:
///
/// ```text
/// f(x) = alpha * x_min^alpha / x^(alpha+1),   x >= x_min
/// ```
///
/// The paper fits Pareto arrivals `Λ(t)` to the spot-price history with
/// `Λ_min = h⁻¹(π_min)` (§4.3); the fitted shapes in Figure 3's caption are
/// `alpha ∈ {5, 8, 9.5, 5.2}` — all with finite mean and variance, which is
/// what Proposition 1's stability condition requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidParameter`] if `x_min <= 0` or
    /// `alpha <= 0` (or either is non-finite).
    pub fn new(x_min: f64, alpha: f64) -> Result<Self> {
        if !(x_min > 0.0) || !x_min.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "x_min",
                value: x_min,
                requirement: "must be finite and > 0",
            });
        }
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "alpha",
                value: alpha,
                requirement: "must be finite and > 0",
            });
        }
        Ok(Pareto { x_min, alpha })
    }

    /// The scale (minimum value) parameter.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// The shape (tail index) parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ContinuousDist for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            self.alpha * self.x_min.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            1.0 - (self.x_min / x).powf(self.alpha)
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            f64::INFINITY
        } else {
            self.x_min / (1.0 - q).powf(1.0 / self.alpha)
        }
    }

    fn mean(&self) -> f64 {
        if self.alpha > 1.0 {
            self.alpha * self.x_min / (self.alpha - 1.0)
        } else {
            f64::INFINITY
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha > 2.0 {
            self.x_min * self.x_min * self.alpha / ((self.alpha - 1.0).powi(2) * (self.alpha - 2.0))
        } else {
            f64::INFINITY
        }
    }

    fn support(&self) -> (f64, f64) {
        (self.x_min, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::test_support::check_coherence;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(-1.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(1.0, -2.0).is_err());
        assert!(Pareto::new(f64::NAN, 1.0).is_err());
        assert!(Pareto::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn coherence_paper_shapes() {
        // The four fitted shapes from Figure 3's caption.
        for (i, &alpha) in [5.0, 8.0, 9.5, 5.2].iter().enumerate() {
            let d = Pareto::new(0.01, alpha).unwrap();
            check_coherence(&d, 100 + i as u64);
        }
    }

    #[test]
    fn known_values() {
        let d = Pareto::new(1.0, 2.0).unwrap();
        assert_eq!(d.pdf(0.5), 0.0);
        assert!((d.pdf(1.0) - 2.0).abs() < 1e-12);
        assert!((d.cdf(2.0) - 0.75).abs() < 1e-12);
        assert!((d.quantile(0.75) - 2.0).abs() < 1e-12);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!(d.variance().is_infinite());
    }

    #[test]
    fn heavy_tail_has_infinite_mean() {
        let d = Pareto::new(1.0, 0.9).unwrap();
        assert!(d.mean().is_infinite());
        assert!(d.variance().is_infinite());
    }

    #[test]
    fn finite_variance_above_two() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        // Var = x_min^2 * a / ((a-1)^2 (a-2)) = 4*3/(4*1) = 3.
        assert!((d.variance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_edges() {
        let d = Pareto::new(1.5, 4.0).unwrap();
        assert_eq!(d.quantile(0.0), 1.5);
        assert!(d.quantile(1.0).is_infinite());
        assert_eq!(d.quantile(-3.0), 1.5); // clamped
    }
}
