//! Weibull distribution.

use super::ContinuousDist;
use crate::{NumericsError, Result};

/// Natural log of the gamma function, via the Lanczos approximation
/// (absolute error below `1e-10` for positive arguments).
pub(crate) fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma function `Γ(x)`.
pub(crate) fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Weibull distribution with shape `k > 0` and scale `lambda > 0`:
///
/// ```text
/// f(x) = (k/lambda) * (x/lambda)^(k-1) * exp(-(x/lambda)^k),  x >= 0
/// ```
///
/// Included as an alternative arrival-process hypothesis for the fitting
/// ablations (`k < 1` gives the bursty, heavy-tailed inter-arrival shape
/// reported for datacenter request traces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    k: f64,
    lambda: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidParameter`] if either parameter is
    /// non-positive or non-finite.
    pub fn new(k: f64, lambda: f64) -> Result<Self> {
        if !(k > 0.0) || !k.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "k",
                value: k,
                requirement: "must be finite and > 0",
            });
        }
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "lambda",
                value: lambda,
                requirement: "must be finite and > 0",
            });
        }
        Ok(Weibull { k, lambda })
    }

    /// Shape parameter.
    pub fn shape(&self) -> f64 {
        self.k
    }

    /// Scale parameter.
    pub fn scale(&self) -> f64 {
        self.lambda
    }
}

impl ContinuousDist for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Limit depends on the shape; k < 1 diverges, k == 1 is 1/λ.
            return if self.k < 1.0 {
                f64::INFINITY
            } else if self.k == 1.0 {
                1.0 / self.lambda
            } else {
                0.0
            };
        }
        let z = x / self.lambda;
        (self.k / self.lambda) * z.powf(self.k - 1.0) * (-z.powf(self.k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.lambda).powf(self.k)).exp()
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            f64::INFINITY
        } else {
            self.lambda * (-(1.0 - q).ln()).powf(1.0 / self.k)
        }
    }

    fn mean(&self) -> f64 {
        self.lambda * gamma(1.0 + 1.0 / self.k)
    }

    fn variance(&self) -> f64 {
        let g1 = gamma(1.0 + 1.0 / self.k);
        let g2 = gamma(1.0 + 2.0 / self.k);
        self.lambda * self.lambda * (g2 - g1 * g1)
    }

    fn support(&self) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::test_support::check_coherence;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(-1.0, 1.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(3.0) - 2.0f64.ln()).abs() < 1e-10);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        assert!((gamma(5.0) - 24.0).abs() < 1e-7);
    }

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 3.0).unwrap();
        let e = crate::dist::Exponential::new(3.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
        assert!((w.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn coherence() {
        check_coherence(&Weibull::new(2.0, 1.5).unwrap(), 30);
        check_coherence(&Weibull::new(0.7, 1.0).unwrap(), 31);
    }
}
