//! Sliding-window incremental empirical distribution.
//!
//! A long-running bid-advisory server keeps "the last N spot prices" current
//! under a streaming feed. Rebuilding [`Empirical`] from scratch on every
//! record is an O(n log n) sort per update (the `price_model/build/10k`
//! bench row, ~157 µs); this module maintains the same distribution
//! incrementally: each insert/evict is an O(log k) atom-multiset update
//! (`k` = distinct values), and a queryable snapshot is materialized lazily
//! in a single *sort-free* O(n) pass.
//!
//! ## Bit-equivalence contract
//!
//! For any sequence of pushes, [`SlidingEmpirical::snapshot`] is
//! **bit-identical** to `Empirical::from_vec` over the current window
//! contents — full structural equality, including the `atom_prefix` sums,
//! which both paths record during one left-to-right accumulation over the
//! sorted samples. The one normalization making this possible: `-0.0` is
//! canonicalized to `+0.0` on push (IEEE `==` already treats them as a
//! single atom, but their bit patterns differ, and the multiset is keyed by
//! bits). The window as observed through [`values`](SlidingEmpirical::values)
//! therefore never contains `-0.0`.

use std::collections::{BTreeMap, VecDeque};

use crate::empirical::Empirical;
use crate::{NumericsError, Result};

/// Maps a finite `f64` to a `u64` whose unsigned order matches the float
/// order (sign-flip trick): positives get the sign bit set, negatives are
/// bitwise-complemented.
fn key(x: f64) -> u64 {
    let b = x.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Exact inverse of [`key`].
fn unkey(k: u64) -> f64 {
    if k & (1 << 63) != 0 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

/// A bounded sliding window of samples with an incrementally-maintained
/// empirical distribution.
///
/// # Example
///
/// ```
/// use spotbid_numerics::sliding::SlidingEmpirical;
/// use spotbid_numerics::empirical::Empirical;
///
/// let mut w = SlidingEmpirical::new(3).unwrap();
/// for x in [5.0, 1.0, 2.0, 2.0] {
///     w.push(x).unwrap(); // capacity 3: the 5.0 is evicted by the last push
/// }
/// let direct = Empirical::from_samples(&[1.0, 2.0, 2.0]).unwrap();
/// assert_eq!(*w.snapshot().unwrap(), direct);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingEmpirical {
    capacity: usize,
    /// Window contents in arrival order (front = oldest).
    window: VecDeque<f64>,
    /// Atom multiset: monotone bit-key → occurrence count.
    counts: BTreeMap<u64, usize>,
    /// Lazily rebuilt snapshot, invalidated by any push/evict.
    cache: Option<Empirical>,
}

impl SlidingEmpirical {
    /// Creates an empty window holding at most `capacity` samples.
    ///
    /// # Errors
    ///
    /// [`NumericsError::EmptyInput`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(NumericsError::EmptyInput {
                routine: "SlidingEmpirical::new",
            });
        }
        Ok(SlidingEmpirical {
            capacity,
            window: VecDeque::with_capacity(capacity),
            counts: BTreeMap::new(),
            cache: None,
        })
    }

    /// Appends a sample, evicting the oldest one first when the window is
    /// full. Returns the evicted sample, if any. O(log k).
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidParameter`] for non-finite samples (the
    /// window is left untouched).
    pub fn push(&mut self, x: f64) -> Result<Option<f64>> {
        if !x.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "sample",
                value: x,
                requirement: "samples must be finite",
            });
        }
        // Canonicalize -0.0 → +0.0 (exact for every other finite value) so
        // the bit-keyed multiset dedups exactly like `from_vec`'s `!=`.
        let x = x + 0.0;
        let evicted = if self.window.len() == self.capacity {
            self.evict_oldest()
        } else {
            None
        };
        self.window.push_back(x);
        *self.counts.entry(key(x)).or_insert(0) += 1;
        self.cache = None;
        Ok(evicted)
    }

    /// Removes and returns the oldest sample, or `None` if empty. O(log k).
    pub fn evict_oldest(&mut self) -> Option<f64> {
        let old = self.window.pop_front()?;
        let k = key(old);
        let c = self
            .counts
            .get_mut(&k)
            .expect("window and multiset stay in sync");
        *c -= 1;
        if *c == 0 {
            self.counts.remove(&k);
        }
        self.cache = None;
        Some(old)
    }

    /// Empties the window.
    pub fn clear(&mut self) {
        self.window.clear();
        self.counts.clear();
        self.cache = None;
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Maximum number of samples the window retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct sample values currently in the window.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Window contents in arrival order (oldest first), `-0.0` already
    /// canonicalized.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.window.iter().copied()
    }

    /// The empirical distribution over the current window, bit-identical to
    /// `Empirical::from_vec(self.values().collect())`.
    ///
    /// Rebuilt lazily after mutations in one sort-free O(n) pass over the
    /// ordered atom multiset (the expensive O(n log n) sort is what the
    /// incremental multiset replaces); repeated calls between mutations
    /// return the cached value.
    ///
    /// # Errors
    ///
    /// [`NumericsError::EmptyInput`] when the window is empty.
    pub fn snapshot(&mut self) -> Result<&Empirical> {
        if self.window.is_empty() {
            return Err(NumericsError::EmptyInput {
                routine: "SlidingEmpirical::snapshot",
            });
        }
        if self.cache.is_none() {
            let n = self.window.len();
            let mut sorted = Vec::with_capacity(n);
            let mut atoms = Vec::with_capacity(self.counts.len());
            let mut atom_cum = Vec::with_capacity(self.counts.len() + 1);
            let mut atom_prefix = Vec::with_capacity(self.counts.len() + 1);
            atom_cum.push(0);
            atom_prefix.push(0.0);
            let mut acc = 0.0;
            // Replaying each atom `count` times reproduces `from_vec`'s
            // left-to-right accumulation addition-for-addition, so every
            // prefix sum lands on the same bits.
            for (&k, &c) in &self.counts {
                let v = unkey(k);
                for _ in 0..c {
                    sorted.push(v);
                    acc += v;
                }
                atoms.push(v);
                atom_cum.push(sorted.len());
                atom_prefix.push(acc);
            }
            self.cache = Some(Empirical::from_parts(sorted, atoms, atom_cum, atom_prefix));
        }
        Ok(self.cache.as_ref().expect("cache just filled"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rebuild(w: &SlidingEmpirical) -> Empirical {
        Empirical::from_vec(w.values().collect()).unwrap()
    }

    /// Structural equality plus explicit bit-level comparison of the prefix
    /// sums (`PartialEq` on `f64` would let `-0.0 == +0.0` slip through).
    fn assert_bit_equal(a: &Empirical, b: &Empirical) {
        assert_eq!(a, b);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a.sorted()), bits(b.sorted()));
        assert_eq!(bits(&a.atoms()), bits(&b.atoms()));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(SlidingEmpirical::new(0).is_err());
        let mut w = SlidingEmpirical::new(4).unwrap();
        assert!(w.push(f64::NAN).is_err());
        assert!(w.push(f64::INFINITY).is_err());
        assert!(w.is_empty());
        assert!(w.snapshot().is_err());
    }

    #[test]
    fn key_is_monotone_and_invertible() {
        let xs = [
            f64::MIN,
            -1e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            0.0,
            f64::MIN_POSITIVE,
            0.031,
            1.0,
            1e300,
            f64::MAX,
        ];
        for pair in xs.windows(2) {
            assert!(key(pair[0]) < key(pair[1]), "{} vs {}", pair[0], pair[1]);
        }
        for &x in &xs {
            assert_eq!(unkey(key(x)).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut w = SlidingEmpirical::new(3).unwrap();
        assert_eq!(w.push(1.0).unwrap(), None);
        assert_eq!(w.push(2.0).unwrap(), None);
        assert_eq!(w.push(3.0).unwrap(), None);
        assert_eq!(w.push(4.0).unwrap(), Some(1.0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.values().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0]);
        assert_eq!(w.evict_oldest(), Some(2.0));
        assert_eq!(w.distinct_len(), 2);
        w.clear();
        assert!(w.evict_oldest().is_none());
    }

    #[test]
    fn snapshot_matches_rebuild_on_duplicates() {
        let mut w = SlidingEmpirical::new(8).unwrap();
        for x in [0.031, 0.02, 0.031, 0.031, 0.05, 0.02] {
            w.push(x).unwrap();
        }
        let direct = rebuild(&w);
        assert_bit_equal(w.snapshot().unwrap(), &direct);
        assert_eq!(w.snapshot().unwrap().distinct().len(), 3);
    }

    #[test]
    fn negative_zero_is_canonicalized() {
        let mut w = SlidingEmpirical::new(4).unwrap();
        w.push(-0.0).unwrap();
        w.push(0.0).unwrap();
        w.push(-1.5).unwrap();
        assert!(w.values().all(|v| v.to_bits() != (-0.0f64).to_bits()));
        assert_eq!(w.distinct_len(), 2);
        let direct = rebuild(&w);
        assert_bit_equal(w.snapshot().unwrap(), &direct);
    }

    #[test]
    fn snapshot_is_cached_between_mutations() {
        let mut w = SlidingEmpirical::new(4).unwrap();
        w.push(1.0).unwrap();
        let first = w.snapshot().unwrap() as *const Empirical;
        let second = w.snapshot().unwrap() as *const Empirical;
        assert_eq!(first, second);
        w.push(2.0).unwrap();
        assert_eq!(w.snapshot().unwrap().len(), 2);
    }

    /// The acceptance criterion: across randomized insert/evict sequences
    /// (quantized values so duplicates are common, mixed signs, interleaved
    /// explicit evictions), every snapshot is bit-equivalent to a full
    /// rebuild from the window contents.
    #[test]
    fn randomized_insert_evict_bit_equivalent_to_rebuild() {
        use crate::rng::Rng;
        let mut rng = Rng::seed_from_u64(0x511D);
        for round in 0..50 {
            let capacity = 1 + rng.range_usize(40);
            let mut w = SlidingEmpirical::new(capacity).unwrap();
            for step in 0..200 {
                if !w.is_empty() && rng.chance(0.25) {
                    w.evict_oldest();
                } else {
                    // Coarse grid in [-0.5, 0.5] → heavy atom repetition,
                    // and the grid straddles zero so ±0.0 shows up.
                    let x = (rng.range_f64(-0.5, 0.5) * 40.0).round() / 40.0;
                    w.push(x).unwrap();
                }
                if w.is_empty() {
                    assert!(w.snapshot().is_err());
                } else if step % 7 == 0 || step == 199 {
                    let direct = rebuild(&w);
                    assert_bit_equal(w.snapshot().unwrap(), &direct);
                    assert!(w.len() <= capacity, "round {round}");
                }
            }
        }
    }

    /// Steady-state streaming (window at capacity, every push evicts) — the
    /// serve crate's hot path.
    #[test]
    fn streaming_at_capacity_stays_equivalent() {
        use crate::rng::Rng;
        let mut rng = Rng::seed_from_u64(0x511E);
        let mut w = SlidingEmpirical::new(64).unwrap();
        for i in 0..512 {
            let x = (rng.range_f64(0.01, 0.2) * 1000.0).floor() / 1000.0;
            let evicted = w.push(x).unwrap();
            assert_eq!(evicted.is_some(), i >= 64);
            if i % 37 == 0 {
                let direct = rebuild(&w);
                assert_bit_equal(w.snapshot().unwrap(), &direct);
            }
        }
        assert_eq!(w.len(), 64);
    }
}
