//! Empirical distributions built from observed samples.
//!
//! The paper's client computes bids from the *empirical* distribution of the
//! last two months of spot prices (Figure 1's "price monitor"). Everything
//! the strategies need — `F(p)`, quantiles, `E[π | π ≤ p]` (Eq. 9), and the
//! set of distinct prices at which those quantities change — is computed
//! exactly over the sample atoms: construction dedups the sorted samples
//! into atoms once and records cumulative counts and prefix sums at the
//! atom boundaries, so each query is a binary search over the (usually much
//! smaller) atom set, not a pass over the data. The [`brute`] module keeps
//! O(n) rescan reference implementations for validation and benchmarking.

use crate::{NumericsError, Result};

/// An empirical distribution over a fixed set of `f64` samples.
///
/// Construction sorts the samples once, dedups them into atoms, and
/// precomputes cumulative counts plus prefix sums at the atom boundaries;
/// queries are `O(log k)` for `k` distinct values. All query results are
/// bit-identical to a left-to-right prefix sum over the full sorted sample
/// vector (the boundary sums are recorded *during* that accumulation, not
/// recomputed per atom), so swapping in the atom index cannot perturb any
/// downstream f64.
///
/// # Example
///
/// ```
/// use spotbid_numerics::empirical::Empirical;
/// let e = Empirical::from_samples(&[3.0, 1.0, 2.0, 2.0]).unwrap();
/// assert_eq!(e.cdf(2.0), 0.75);            // 3 of 4 samples ≤ 2
/// assert_eq!(e.mean_below(2.0), Some(5.0 / 3.0)); // E[X | X ≤ 2]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Sorted samples.
    sorted: Vec<f64>,
    /// Distinct sample values, ascending (the distribution's atoms).
    atoms: Vec<f64>,
    /// `atom_cum[i]` = number of samples `<= atoms[i - 1]` (`atom_cum[0] = 0`).
    atom_cum: Vec<usize>,
    /// `atom_prefix[i]` = sum of the first `atom_cum[i]` sorted samples,
    /// accumulated left-to-right over the full sorted vector.
    atom_prefix: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from samples (any order; values must
    /// be finite).
    ///
    /// # Errors
    ///
    /// [`NumericsError::EmptyInput`] for an empty slice, or
    /// [`NumericsError::InvalidParameter`] if any sample is non-finite.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        Self::from_vec(samples.to_vec())
    }

    /// As [`from_samples`](Self::from_samples), but takes ownership of the
    /// vector and sorts it in place, avoiding one O(n) copy — the model
    /// rebuild in replay loops constructs an `Empirical` per trial, so the
    /// copy is on a hot path.
    ///
    /// # Errors
    ///
    /// Same contract as [`from_samples`](Self::from_samples).
    pub fn from_vec(mut sorted: Vec<f64>) -> Result<Self> {
        if sorted.is_empty() {
            return Err(NumericsError::EmptyInput {
                routine: "Empirical::from_samples",
            });
        }
        if let Some(&bad) = sorted.iter().find(|x| !x.is_finite()) {
            return Err(NumericsError::InvalidParameter {
                name: "samples",
                value: bad,
                requirement: "all samples must be finite",
            });
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let mut atoms = Vec::new();
        let mut atom_cum = vec![0usize];
        let mut atom_prefix = vec![0.0f64];
        let mut acc = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            acc += x;
            if i + 1 == sorted.len() || sorted[i + 1] != x {
                atoms.push(x);
                atom_cum.push(i + 1);
                atom_prefix.push(acc);
            }
        }
        Ok(Empirical {
            sorted,
            atoms,
            atom_cum,
            atom_prefix,
        })
    }

    /// Crate-internal: assembles an `Empirical` directly from precomputed
    /// parts. The sliding-window builder ([`crate::sliding`]) materializes
    /// exactly the post-sort state [`from_vec`](Self::from_vec) would have
    /// produced — sorted vector, dedup'd atoms, and boundary arrays recorded
    /// during one left-to-right accumulation — without paying for the sort.
    /// Upholding those invariants is the caller's responsibility.
    pub(crate) fn from_parts(
        sorted: Vec<f64>,
        atoms: Vec<f64>,
        atom_cum: Vec<usize>,
        atom_prefix: Vec<f64>,
    ) -> Self {
        Empirical {
            sorted,
            atoms,
            atom_cum,
            atom_prefix,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty inputs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Number of samples `<= x` (rank), via binary search over the atoms.
    pub fn count_le(&self, x: f64) -> usize {
        self.atom_cum[self.atom_rank(x)]
    }

    /// Number of atoms `<= x` — the index into the boundary arrays.
    fn atom_rank(&self, x: f64) -> usize {
        self.atoms.partition_point(|&a| a <= x)
    }

    /// Empirical CDF: fraction of samples `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.len() as f64
    }

    /// Empirical quantile (inverse CDF, lower semantics): the smallest
    /// sample `v` with `cdf(v) >= q`. `q` outside `[0,1]` is an error.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidProbability`] if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(NumericsError::InvalidProbability { value: q });
        }
        if q <= 0.0 {
            return Ok(self.min());
        }
        let k = ((q * self.len() as f64).ceil() as usize).clamp(1, self.len());
        Ok(self.sorted[k - 1])
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.atom_prefix[self.atoms.len()] / self.len() as f64
    }

    /// Sample variance (population form, divisor `n`).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.len() as f64
    }

    /// Conditional mean `E[X | X <= x]`, or `None` when no sample is `<= x`.
    ///
    /// This is Eq. 9's expected charged price for a bid `x`, computed
    /// exactly over the sample atoms.
    pub fn mean_below(&self, x: f64) -> Option<f64> {
        let r = self.atom_rank(x);
        let k = self.atom_cum[r];
        if k == 0 {
            None
        } else {
            Some(self.atom_prefix[r] / k as f64)
        }
    }

    /// Partial sum `Σ_{s <= x} s` — the empirical analogue of
    /// `∫_{lo}^{x} t f(t) dt` scaled by `n`.
    pub fn sum_below(&self, x: f64) -> f64 {
        self.atom_prefix[self.atom_rank(x)]
    }

    /// The distinct sample values, ascending. The strategies' cost curves
    /// only change at these atoms, so exact minimization scans this set.
    ///
    /// Allocates a fresh vector; use [`distinct`](Self::distinct) to borrow
    /// the cached atom set instead.
    pub fn atoms(&self) -> Vec<f64> {
        self.atoms.clone()
    }

    /// The distinct sample values, ascending, borrowed from the atom index
    /// built at construction.
    pub fn distinct(&self) -> &[f64] {
        &self.atoms
    }

    /// Equal-width histogram over `[min, max]` with `bins` bins.
    ///
    /// Returns `(bin_centers, densities)` normalized so the histogram
    /// integrates to 1 (i.e., a density estimate, matching how Figure 3
    /// plots the PDF of spot prices). The final bin is closed on the right.
    ///
    /// # Errors
    ///
    /// [`NumericsError::EmptyInput`] if `bins == 0`.
    pub fn histogram(&self, bins: usize) -> Result<(Vec<f64>, Vec<f64>)> {
        if bins == 0 {
            return Err(NumericsError::EmptyInput {
                routine: "Empirical::histogram",
            });
        }
        let lo = self.min();
        let hi = self.max();
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let mut counts = vec![0usize; bins];
        for &x in &self.sorted {
            let i = (((x - lo) / width) as usize).min(bins - 1);
            counts[i] += 1;
        }
        let n = self.len() as f64;
        let centers = (0..bins).map(|i| lo + (i as f64 + 0.5) * width).collect();
        let densities = counts.into_iter().map(|c| c as f64 / (n * width)).collect();
        Ok((centers, densities))
    }
}

/// Brute-force O(n) rescan reference implementations of the [`Empirical`]
/// queries.
///
/// These exist to (a) pin the optimized binary-search/prefix-sum paths to an
/// obviously-correct definition in randomized equality tests, and (b) give
/// the benchmark suite an honest "what the naive kernel costs" baseline.
/// All functions take the *sorted* sample slice and accumulate left-to-right
/// so floating-point results are bit-identical to the optimized paths.
pub mod brute {
    /// Rank by linear scan: number of samples `<= x`.
    pub fn count_le(sorted: &[f64], x: f64) -> usize {
        sorted.iter().filter(|&&s| s <= x).count()
    }

    /// Empirical CDF by full rescan.
    pub fn cdf(sorted: &[f64], x: f64) -> f64 {
        count_le(sorted, x) as f64 / sorted.len() as f64
    }

    /// Partial sum `Σ_{s <= x} s` by left-to-right rescan.
    pub fn sum_below(sorted: &[f64], x: f64) -> f64 {
        let mut acc = 0.0;
        for &s in sorted {
            if s > x {
                break;
            }
            acc += s;
        }
        acc
    }

    /// Conditional mean `E[X | X <= x]` by rescan, `None` if no sample
    /// qualifies.
    pub fn mean_below(sorted: &[f64], x: f64) -> Option<f64> {
        let k = count_le(sorted, x);
        if k == 0 {
            None
        } else {
            Some(sum_below(sorted, x) / k as f64)
        }
    }

    /// Quantile (lower semantics) by linear scan for the k-th order
    /// statistic; `q` must already be validated to `[0, 1]`.
    pub fn quantile(sorted: &[f64], q: f64) -> f64 {
        if q <= 0.0 {
            return sorted[0];
        }
        let n = sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[k - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: &[f64]) -> Empirical {
        Empirical::from_samples(v).unwrap()
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Empirical::from_samples(&[]).is_err());
        assert!(Empirical::from_samples(&[1.0, f64::NAN]).is_err());
        assert!(Empirical::from_samples(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn cdf_step_semantics() {
        let d = e(&[1.0, 2.0, 2.0, 5.0]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.25);
        assert_eq!(d.cdf(1.5), 0.25);
        assert_eq!(d.cdf(2.0), 0.75);
        assert_eq!(d.cdf(5.0), 1.0);
        assert_eq!(d.cdf(100.0), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = e(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.quantile(0.0).unwrap(), 10.0);
        assert_eq!(d.quantile(0.25).unwrap(), 10.0);
        assert_eq!(d.quantile(0.26).unwrap(), 20.0);
        assert_eq!(d.quantile(0.75).unwrap(), 30.0);
        assert_eq!(d.quantile(1.0).unwrap(), 40.0);
        assert!(d.quantile(1.5).is_err());
        assert!(d.quantile(-0.1).is_err());
    }

    #[test]
    fn quantile_cdf_roundtrip_property() {
        let d = e(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        for i in 1..=100 {
            let q = i as f64 / 100.0;
            let x = d.quantile(q).unwrap();
            assert!(d.cdf(x) >= q - 1e-12, "q={q} x={x} cdf={}", d.cdf(x));
        }
    }

    #[test]
    fn mean_and_variance() {
        let d = e(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        assert!((d.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_below_exact() {
        let d = e(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(d.mean_below(0.5), None);
        assert_eq!(d.mean_below(1.0), Some(1.0));
        assert_eq!(d.mean_below(2.5), Some(1.5));
        assert_eq!(d.mean_below(100.0), Some(4.0));
    }

    #[test]
    fn mean_below_is_monotone() {
        let d = e(&[0.03, 0.031, 0.032, 0.04, 0.05, 0.08, 0.2]);
        let mut prev = f64::NEG_INFINITY;
        for a in d.atoms() {
            let m = d.mean_below(a).unwrap();
            assert!(m >= prev, "conditional mean must not decrease");
            prev = m;
        }
    }

    #[test]
    fn sum_below_matches_prefix() {
        let d = e(&[1.0, 2.0, 3.0]);
        assert_eq!(d.sum_below(0.0), 0.0);
        assert_eq!(d.sum_below(2.0), 3.0);
        assert_eq!(d.sum_below(9.0), 6.0);
    }

    #[test]
    fn atoms_dedup() {
        let d = e(&[2.0, 1.0, 2.0, 2.0, 3.0, 1.0]);
        assert_eq!(d.atoms(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn histogram_is_a_density() {
        let d = e(&(0..1000).map(|i| i as f64 / 1000.0).collect::<Vec<_>>());
        let (centers, dens) = d.histogram(20).unwrap();
        assert_eq!(centers.len(), 20);
        let width = centers[1] - centers[0];
        let mass: f64 = dens.iter().map(|d| d * width).sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        // Uniform data → flat density ≈ 1/(max-min).
        for &dv in &dens {
            assert!((dv - 1.0 / 0.999).abs() < 0.1, "{dv}");
        }
    }

    #[test]
    fn histogram_degenerate_single_value() {
        let d = e(&[5.0, 5.0, 5.0]);
        let (_, dens) = d.histogram(4).unwrap();
        assert!(dens.iter().sum::<f64>() > 0.0);
        assert!(d.histogram(0).is_err());
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::rng::Rng;

    fn samples(rng: &mut Rng, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let n = 1 + rng.range_usize(max_len);
        (0..n).map(|_| rng.range_f64(lo, hi)).collect()
    }

    #[test]
    fn cdf_monotone() {
        let mut rng = Rng::seed_from_u64(0xE4B1);
        for _ in 0..200 {
            let mut xs = samples(&mut rng, 200, -1e6, 1e6);
            let probe = rng.range_f64(-1e6, 1e6);
            let d = Empirical::from_samples(&xs).unwrap();
            assert!(d.cdf(probe) >= 0.0 && d.cdf(probe) <= 1.0);
            assert!(d.cdf(probe) <= d.cdf(probe + 1.0));
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(d.sorted(), &xs[..]);
        }
    }

    #[test]
    fn mean_below_max_is_mean() {
        let mut rng = Rng::seed_from_u64(0xE4B2);
        for _ in 0..100 {
            let xs = samples(&mut rng, 100, -1e3, 1e3);
            let d = Empirical::from_samples(&xs).unwrap();
            let m = d.mean_below(d.max()).unwrap();
            assert!((m - d.mean()).abs() < 1e-9);
        }
    }

    #[test]
    fn quantile_in_sample_set() {
        let mut rng = Rng::seed_from_u64(0xE4B3);
        for _ in 0..100 {
            let xs = samples(&mut rng, 100, -1e3, 1e3);
            let q = rng.next_f64();
            let d = Empirical::from_samples(&xs).unwrap();
            let v = d.quantile(q).unwrap();
            assert!(xs.contains(&v));
        }
    }

    /// Histories with heavy atom repetition (quantized prices, like real spot
    /// traces) exercise the dedup'd boundary arrays: every query must equal
    /// the brute-force rescan *bit for bit*, not just approximately.
    #[test]
    fn atom_index_matches_brute_force_exactly() {
        let mut rng = Rng::seed_from_u64(0xE4B4);
        for round in 0..200 {
            // Quantize to a coarse grid so duplicates are common.
            let xs: Vec<f64> = samples(&mut rng, 300, 0.0, 1.0)
                .into_iter()
                .map(|x| (x * 50.0).floor() / 50.0)
                .collect();
            let d = Empirical::from_samples(&xs).unwrap();
            for _ in 0..20 {
                let probe = rng.range_f64(-0.1, 1.1);
                assert_eq!(
                    d.count_le(probe),
                    brute::count_le(d.sorted(), probe),
                    "round {round} probe {probe}"
                );
                assert_eq!(
                    d.cdf(probe).to_bits(),
                    brute::cdf(d.sorted(), probe).to_bits()
                );
                assert_eq!(
                    d.sum_below(probe).to_bits(),
                    brute::sum_below(d.sorted(), probe).to_bits()
                );
                assert_eq!(
                    d.mean_below(probe).map(f64::to_bits),
                    brute::mean_below(d.sorted(), probe).map(f64::to_bits)
                );
                let q = rng.next_f64();
                assert_eq!(
                    d.quantile(q).unwrap().to_bits(),
                    brute::quantile(d.sorted(), q).to_bits()
                );
            }
            assert_eq!(
                d.mean().to_bits(),
                brute::mean_below(d.sorted(), d.max()).unwrap().to_bits()
            );
            assert_eq!(d.atoms(), d.distinct());
        }
    }

    #[test]
    fn from_vec_matches_from_samples() {
        let mut rng = Rng::seed_from_u64(0xE4B5);
        for _ in 0..50 {
            let xs = samples(&mut rng, 150, -10.0, 10.0);
            let a = Empirical::from_samples(&xs).unwrap();
            let b = Empirical::from_vec(xs).unwrap();
            assert_eq!(a, b);
        }
    }
}
